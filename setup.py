"""Setup shim.

The project is fully described by ``pyproject.toml``. This file exists so
environments without the ``wheel`` package (whose setuptools cannot build
PEP 660 editable wheels) can still do ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
