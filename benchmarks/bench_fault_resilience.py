"""Fault resilience: clean vs faulty mediation under the default fault plan.

Not a paper figure - this benchmark records what the robustness layer costs
and what it buys. The same mix runs twice under App+Res-Aware at the paper's
80 W cap: once clean, once under :func:`~repro.faults.plan.default_fault_plan`
(an app hang, a RAPL actuation blackout, a telemetry blackout, telemetry
noise, a battery outage, and an app crash). The cap must hold through all of
it - at most one isolated breach tick per incident, never two in a row - and
the utility lost to the faults is reported next to the resilience counters
(retries, degraded-telemetry ticks, MTTR).
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.metrics import summarize_resilience
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import run_dynamic_experiment, run_mix_experiment
from repro.faults import default_fault_plan
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import ArrivalEvent, ArrivalSchedule
from repro.workloads.mixes import get_mix

CAP_W = 80.0
DURATION_S = pick(50.0, 6.0)
WARMUP_S = pick(5.0, 0.5)


def _fault_plan(seed=1):
    """The default plan, or the same fault classes squeezed into the tiny
    run so every incident still opens *and recovers* before the end."""
    if not tiny():
        return default_fault_plan(seed=seed)
    from repro.faults import FaultPlan, FaultSpec

    return FaultPlan(
        specs=(
            FaultSpec(kind="app", mode="hang", start_s=1.0, duration_s=0.5),
            FaultSpec(kind="rapl", mode="drop", start_s=1.8, duration_s=0.5),
            FaultSpec(kind="telemetry", mode="drop", start_s=2.5, duration_s=0.4),
            FaultSpec(
                kind="telemetry", mode="noise", start_s=3.1, duration_s=0.4,
                magnitude=0.8,
            ),
            FaultSpec(kind="battery", mode="outage", start_s=3.7, duration_s=0.6),
            FaultSpec(kind="app", mode="crash", start_s=4.5),
        ),
        seed=seed,
    )


def _run(faults, sink=None):
    result = run_mix_experiment(
        list(get_mix(10).profiles()),
        "app+res-aware",
        CAP_W,
        mix_id=10,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        seed=1,
        faults=faults,
    )
    if sink is not None:
        sink.record(result.metrics)
    return result


def test_clean_vs_faulty_utility(benchmark, emit, bench_metrics):
    clean = _run(None, sink=bench_metrics)
    faulty = benchmark.pedantic(
        lambda: _run(_fault_plan(seed=1), sink=bench_metrics),
        rounds=1,
        iterations=1,
    )

    stats = faulty.fault_stats
    summary = summarize_resilience(stats, total_ticks=int(DURATION_S / 0.1))
    emit("\n" + banner(f"FAULT RESILIENCE: mix-10 @ {CAP_W:.0f} W, default fault plan"))
    rows = [
        [
            name,
            clean.normalized_throughput[name],
            faulty.normalized_throughput.get(name, 0.0),
        ]
        for name in sorted(clean.normalized_throughput)
    ]
    rows.append(["server", clean.server_throughput, faulty.server_throughput])
    emit(format_table(["app", "clean Perf/Perf_nocap", "faulty"], rows))
    mttr = "-" if summary.mttr_s is None else f"{summary.mttr_s:.2f} s"
    emit(
        f"counters: {summary.fault_count} faults ({summary.recovered_count} "
        f"recovered, MTTR {mttr}), breach ticks {summary.breach_ticks}, "
        f"emergency throttles {summary.emergency_throttles}, retries "
        f"{summary.actuation_retries}, degraded telemetry "
        f"{summary.degraded_fraction:.0%} of run, crashes {summary.crashes}"
    )
    retained = faulty.server_throughput / clean.server_throughput
    emit(
        f"utility retained under faults: {retained:.0%} "
        f"(mean wall {clean.mean_wall_power_w:.1f} -> "
        f"{faulty.mean_wall_power_w:.1f} W)"
    )

    # The cap held: run_mix_experiment's verify_cap_invariant would have
    # raised on two consecutive breach ticks; the counter bounds isolated ones.
    assert stats.breach_ticks <= len(stats.episodes)
    # Every injected incident recovered by the end of the plan.
    assert all(not ep.open for ep in stats.episodes)
    # Faults cost utility but the mediator keeps the server productive.
    assert 0.0 < faulty.server_throughput <= clean.server_throughput + 1e-9
    assert retained > 0.5


def test_faulty_dynamic_completion(benchmark, emit, bench_metrics):
    work = pick(1.0, 1.0 / 12.5)
    horizon_s = pick(120.0, 12.0)
    late_arrival_s = pick(50.0, 5.0)

    def run():
        events = [
            ArrivalEvent(0.0, CATALOG["kmeans"].with_total_work(25.0 * work)),
            ArrivalEvent(2.0, CATALOG["x264"].with_total_work(25.0 * work)),
            ArrivalEvent(
                late_arrival_s, CATALOG["stream"].with_total_work(20.0 * work)
            ),
        ]
        return run_dynamic_experiment(
            ArrivalSchedule(events),
            "app+res-aware",
            CAP_W,
            horizon_s=horizon_s,
            seed=1,
            faults=_fault_plan(seed=1),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_metrics.record(result.metrics)
    summary = summarize_resilience(
        result.fault_stats, total_ticks=int(horizon_s / 0.1)
    )
    emit("\n" + banner("FAULTY DYNAMIC RUN: all non-crashed arrivals complete"))
    emit(
        f"admitted {len(result.admitted)}, completed {len(result.completed)}, "
        f"crashed {len(result.crashed)}, breach ticks {summary.breach_ticks}"
    )
    assert not result.rejected
    assert set(result.completed) | set(result.crashed) == set(result.admitted)
    assert summary.crashes == len(result.crashed)
