"""Ablation: what the online learning pipeline costs and buys.

Compares end-to-end policy quality (App+Res-Aware over a mix subset at
100 W) across estimate sources: the true response surfaces (oracle), and
collaborative filtering at several sampling fractions. The gap between
oracle and 10% sampling is the total price of online estimation - including
the RAPL-guard trims that absorb its errors.
"""

import numpy as np
import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import run_mix_experiment
from repro.learning.sampling import StratifiedSampler
from repro.workloads.mixes import get_mix

MIX_IDS = pick((1, 10, 14), (1,))
CAP_W = 100.0
DURATION_S = pick(15.0, 2.0)
WARMUP_S = pick(6.0, 0.5)
LEARN_RUN_S = pick(21.0, 2.5)


def mean_throughput(config, *, oracle, fraction=0.10, seed=0, sink=None):
    totals = []
    for mix_id in MIX_IDS:
        result = run_mix_experiment(
            list(get_mix(mix_id).profiles()),
            "app+res-aware",
            CAP_W,
            mix_id=mix_id,
            config=config,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            use_oracle_estimates=oracle,
            seed=seed,
        )
        if sink is not None:
            sink.record(result.metrics)
        totals.append(result.server_throughput)
    return float(np.mean(totals))


@pytest.fixture(scope="module")
def sweep(config, bench_metrics):
    rows = [("oracle", mean_throughput(config, oracle=True, sink=bench_metrics))]
    for fraction in (0.02, 0.05, 0.10, 0.25):
        # The sampler fraction is threaded through the mediator; reuse the
        # run_mix_experiment seed parameter to vary noise realizations.
        from repro.core.mediator import PowerMediator  # noqa: F401  (doc pointer)
        from repro.core.policies import make_policy
        from repro.server.server import SimulatedServer

        totals = []
        for mix_id in MIX_IDS:
            server = SimulatedServer(config)
            mediator_policy = make_policy("app+res-aware")
            from repro.core.mediator import PowerMediator

            mediator = PowerMediator(
                server,
                mediator_policy,
                CAP_W,
                sampler=StratifiedSampler(fraction, seed=mix_id),
                seed=mix_id,
            )
            for profile in get_mix(mix_id).profiles():
                mediator.add_application(
                    profile.with_total_work(float("inf")), skip_overhead=True
                )
            mediator.run_for(LEARN_RUN_S)
            bench_metrics.record(mediator.export_metrics())
            totals.append(mediator.server_objective(since_s=WARMUP_S))
        rows.append((f"learned @ {fraction:.0%}", float(np.mean(totals))))
    return rows


def test_ablation_learning_value(benchmark, config, sweep, emit):
    benchmark.pedantic(
        mean_throughput, kwargs=dict(config=config, oracle=True), rounds=1, iterations=1
    )
    emit("\n" + banner("ABLATION: estimate source vs policy quality (App+Res-Aware)"))
    emit(format_table(["estimates", "mean server throughput"], [list(r) for r in sweep]))
    values = dict(sweep)
    oracle = values["oracle"]
    ten = values["learned @ 10%"]
    emit(
        f"online learning at the paper's 10% operating point retains "
        f"{ten / oracle:.1%} of oracle-quality allocation"
    )
    if not tiny():
        assert ten / oracle > 0.9
        # Starving the sampler must not break anything (the RAPL guard
        # absorbs the estimation error), merely degrade quality.
        assert values["learned @ 2%"] > 0.5 * oracle
