"""Extension benchmark: hardware power zones vs software mediation.

The paper's future-work item (ii) asks for hardware mechanisms for
fine-grained power isolation. This benchmark builds them (closed-loop
per-application powercap zones) and measures the division of labour the
paper implies:

* **isolation** is a mechanism problem - zones hold each application to
  its limit with no software in the loop;
* **apportioning** is a policy problem - zones with naive (equal) limits
  leave performance on the table that the mediator's utility-aware limits
  recover, even when both are enforced by the same hardware.
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.allocator import PowerAllocator
from repro.core.utility import CandidateSet
from repro.server.powercap import HardwarePowercap
from repro.server.server import SimulatedServer
from repro.workloads.mixes import get_mix

CAP_W = 100.0
MIX_ID = 1  # stream + kmeans: resource preferences differ most
# The zone control loop needs ~11 s to settle under the cap, so even
# the tiny run must outlast that for the isolation asserts to hold.
RUN_S = pick(60.0, 14.0)
MEASURE_FROM_S = pick(20.0, 12.0)


def run_zoned(config, limits):
    """Run the mix under hardware zones with the given per-app limits."""
    server = SimulatedServer(config)
    mix = get_mix(MIX_ID)
    for profile in mix.profiles():
        server.admit(profile.with_total_work(float("inf")))
    powercap = HardwarePowercap(server)
    for name, limit in limits.items():
        powercap.set_zone(name, limit)
    peaks = {
        name: server.perf_model.peak_rate(profile)
        for name, profile in zip(mix.names(), mix.profiles())
    }
    work = {name: 0.0 for name in limits}
    measure_from = MEASURE_FROM_S
    measured = 0.0
    t = 0.0
    while t < RUN_S:
        result = server.tick(0.1)
        powercap.on_tick(result)
        t = result.time_s
        if t > measure_from:
            measured += 0.1
            for name in work:
                work[name] += result.progressed.get(name, 0.0)
    throughput = {
        name: (work[name] / measured) / peaks[name] for name in work
    }
    return throughput, result


def test_ext_hardware_zones(benchmark, config, emit):
    budget = config.dynamic_budget_w(CAP_W)
    mix = get_mix(MIX_ID)
    # Naive limits: the equal split a zone-only system would configure.
    equal = {name: budget / 2 for name in mix.names()}
    # Mediated limits: the knapsack's per-app budgets, enforced by hardware.
    csets = {
        p.name: CandidateSet.from_models(p, config) for p in mix.profiles()
    }
    allocation = PowerAllocator().allocate(csets, budget)
    mediated = {
        name: max(allocation.apps[name].power_w, 1.0) for name in mix.names()
    }

    equal_tp, equal_result = benchmark.pedantic(
        run_zoned, args=(config, equal), rounds=1, iterations=1
    )
    mediated_tp, mediated_result = run_zoned(config, mediated)

    emit("\n" + banner("EXTENSION: hardware powercap zones (mix-1 @ 100 W)"))
    rows = []
    for name in sorted(equal_tp):
        rows.append(
            [
                name,
                f"{equal[name]:.1f}",
                equal_tp[name],
                f"{mediated[name]:.1f}",
                mediated_tp[name],
            ]
        )
    emit(
        format_table(
            ["app", "equal limit [W]", "perf", "mediated limit [W]", "perf"], rows
        )
    )
    equal_total = sum(equal_tp.values())
    mediated_total = sum(mediated_tp.values())
    emit(
        f"server throughput: equal zones {equal_total:.3f} vs mediated zones "
        f"{mediated_total:.3f} ({mediated_total / equal_total - 1:+.1%}) - "
        "hardware provides isolation; the mediator still has to choose the "
        "limits."
    )
    # Isolation: both configurations keep the wall under the cap.
    assert equal_result.breakdown.wall_w <= CAP_W + 1e-6
    assert mediated_result.breakdown.wall_w <= CAP_W + 1e-6
    if not tiny():
        # Apportioning: utility-aware limits beat naive equal limits.
        assert mediated_total > equal_total * 1.02
