"""Ablation: the RAPL tracking margin (guard band) vs the baseline gap.

EXPERIMENTS.md documents ``rapl_guard_band = 0.06`` as a fitted calibration
constant: hardware RAPL tracks an average limit conservatively, while
direct knob placement does not. This ablation sweeps the band and reports
the App+Res-Aware-over-Util-Unaware gain at 100 W - showing how much of the
reproduction's headline gap is policy quality (the band-0 row) and how much
is enforcement asymmetry.
"""

import dataclasses

import numpy as np
import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import run_policy_comparison
from repro.server.config import ServerConfig
from repro.workloads.mixes import get_mix

MIX_IDS = pick((1, 10, 14), (1,))
DURATION_S = pick(15.0, 2.0)
WARMUP_S = pick(6.0, 0.5)


def gain_at_band(band: float, sink=None) -> float:
    config = ServerConfig(rapl_guard_band=band)
    results = run_policy_comparison(
        [get_mix(i) for i in MIX_IDS],
        ["util-unaware", "app+res-aware"],
        100.0,
        config=config,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        use_oracle_estimates=True,
    )
    if sink is not None:
        for per_policy in results.values():
            for result in per_policy.values():
                sink.record(result.metrics)
    means = {
        p: float(np.mean([results[m][p].server_throughput for m in results]))
        for p in ("util-unaware", "app+res-aware")
    }
    return means["app+res-aware"] / means["util-unaware"]


def test_ablation_guard_band(benchmark, emit, bench_metrics):
    benchmark.pedantic(gain_at_band, args=(0.06,), rounds=1, iterations=1)
    rows = []
    gains = {}
    for band in (0.0, 0.03, 0.06, 0.10):
        gains[band] = gain_at_band(band, sink=bench_metrics)
        rows.append([f"{band:.0%}", gains[band]])
    emit("\n" + banner("ABLATION: RAPL guard band vs App+Res-Aware gain (100 W)"))
    emit(format_table(["guard band", "gain over util-unaware"], rows))
    emit(
        f"with no band the pure policy-quality gain is {gains[0.0] - 1:+.1%}; "
        f"the default 6% band adds the enforcement asymmetry, reaching "
        f"{gains[0.06] - 1:+.1%} (the paper's ~+20% regime)"
    )
    if not tiny():
        # The aware policy wins even with no enforcement asymmetry at all.
        assert gains[0.0] > 1.02
        # And the gap grows with the band (the baseline pays it, we don't).
        ordered = [gains[b] for b in (0.0, 0.03, 0.06, 0.10)]
        assert all(b >= a - 0.01 for a, b in zip(ordered, ordered[1:]))
