"""Engine throughput: the vectorized batch fast path vs the scalar loop.

Not a paper figure - this benchmark prices the engine switch (the
``engine="vector"`` fast path). The same fleet - Table II mixes cycled
across N servers, every app with unbounded work so the steady state never
drains - advances the same number of ticks two ways:

* **scalar** - one :class:`~repro.server.server.SimulatedServer` per mix,
  ticked in a Python loop: the golden reference the vector path is pinned
  to bit-for-bit;
* **vector** - one :class:`~repro.engine.BatchFleet` advancing the whole
  fleet's engine phase with a handful of array ops per tick.

Because the batch path's per-tick cost is dominated by numpy's fixed
per-op overhead, the speedup *grows* with fleet size - the trajectory
(10/100/1000 servers) is the point, and the acceptance bar is >= 10x at
100 servers. Each sizing row re-checks the equivalence contract (identical
wall-power vector and energy counters after the run) so the speedup is
never quoted for a path that drifted.

The rows land in ``BENCH_engine.json`` (override with
``$REPRO_BENCH_ENGINE``) so the committed numbers ride with the code; CI
compares a fresh run against the committed baseline and fails on a >20%
vector-throughput regression.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.engine import BatchFleet
from repro.server.config import DEFAULT_SERVER_CONFIG
from repro.server.server import SimulatedServer
from repro.workloads.mixes import get_mix

SIZES = pick((10, 100, 1000), (2,))
TICKS = pick(200, 20)
BENCH_SIZE = pick(100, 2)
SOAK_SERVERS = pick(1000, 2)
SOAK_TICKS = pick(3000, 20)
DT_S = 0.1


def _mixes(n_servers: int) -> list[list]:
    return [
        [p.with_total_work(float("inf")) for p in get_mix(1 + (i % 15)).profiles()]
        for i in range(n_servers)
    ]


def _scalar_run(n_servers: int, n_ticks: int) -> tuple[float, np.ndarray, np.ndarray]:
    servers = []
    for mix in _mixes(n_servers):
        server = SimulatedServer(DEFAULT_SERVER_CONFIG, seed=0)
        for profile in sorted(mix, key=lambda p: p.name):
            server.admit(profile)
        servers.append(server)
    started = time.perf_counter()
    results = None
    for _ in range(n_ticks):
        results = [server.tick(DT_S) for server in servers]
    elapsed = time.perf_counter() - started
    wall = np.array([r.breakdown.wall_w for r in results])
    energy = np.array([s.rapl.read_energy_j("psys") for s in servers])
    return elapsed, wall, energy


def _vector_run(n_servers: int, n_ticks: int) -> tuple[float, np.ndarray, np.ndarray]:
    fleet = BatchFleet(DEFAULT_SERVER_CONFIG, mixes=_mixes(n_servers), dt_s=DT_S)
    started = time.perf_counter()
    fleet.advance(n_ticks)
    elapsed = time.perf_counter() - started
    return elapsed, fleet.wall_power_w(), fleet.energy_j()


def test_engine_throughput_trajectory(benchmark, emit):
    rows = []
    for n_servers in SIZES:
        scalar_s, s_wall, s_energy = _scalar_run(n_servers, TICKS)
        if n_servers == BENCH_SIZE:
            vector_s, v_wall, v_energy = benchmark.pedantic(
                _vector_run, args=(n_servers, TICKS), rounds=1, iterations=1
            )
        else:
            vector_s, v_wall, v_energy = _vector_run(n_servers, TICKS)
        # The speedup is only worth quoting while the contract holds.
        assert np.array_equal(s_wall, v_wall)
        assert np.array_equal(s_energy, v_energy)
        rows.append(
            {
                "n_servers": n_servers,
                "ticks": TICKS,
                "scalar_s": scalar_s,
                "vector_s": vector_s,
                "scalar_ticks_per_s": TICKS / scalar_s,
                "vector_ticks_per_s": TICKS / vector_s,
                "speedup": scalar_s / vector_s,
            }
        )

    soak_s, _, _ = _vector_run(SOAK_SERVERS, SOAK_TICKS)
    soak = {
        "n_servers": SOAK_SERVERS,
        "ticks": SOAK_TICKS,
        "sim_s": SOAK_TICKS * DT_S,
        "wall_clock_s": soak_s,
        "ticks_per_s": SOAK_TICKS / soak_s,
    }

    emit("\n" + banner(f"ENGINE THROUGHPUT: scalar loop vs BatchFleet, {TICKS} ticks"))
    emit(
        format_table(
            ["servers", "scalar ticks/s", "vector ticks/s", "speedup"],
            [
                [
                    row["n_servers"],
                    f"{row['scalar_ticks_per_s']:.0f}",
                    f"{row['vector_ticks_per_s']:.0f}",
                    f"{row['speedup']:.1f}x",
                ]
                for row in rows
            ],
        )
    )
    emit(
        f"soak: {soak['n_servers']} servers x {soak['ticks']} ticks "
        f"({soak['sim_s']:.0f} s simulated) in {soak['wall_clock_s']:.2f} s "
        f"wall-clock ({soak['ticks_per_s']:.0f} ticks/s)"
    )

    path = os.environ.get("REPRO_BENCH_ENGINE", "BENCH_engine.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "bench_engine_throughput",
                "dt_s": DT_S,
                "rows": rows,
                "soak": soak,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    emit(f"engine throughput trajectory -> {path}")

    if not tiny():
        by_size = {row["n_servers"]: row for row in rows}
        # The acceptance bar: >= 10x at 100 servers, growing with scale.
        assert by_size[100]["speedup"] >= 10.0
        speedups = [row["speedup"] for row in rows]
        assert speedups == sorted(speedups)
