"""Fig. 3: resource-level power utilities differ per application.

For each catalog application, the marginal performance per watt of the next
core, the next DVFS step, and the next DRAM watt - the quantities that make
R2 (apportioning power *within* an application) matter.
"""

from repro.analysis.reporting import banner, format_table
from repro.core.utility import resource_marginal_utilities
from repro.workloads.catalog import CATALOG


def test_fig3_resource_level_utilities(benchmark, config, emit):
    def compute():
        return {
            name: resource_marginal_utilities(profile, config)
            for name, profile in sorted(CATALOG.items())
        }

    utilities = benchmark(compute)
    rows = [
        [name, u["core"], u["frequency"], u["memory"]]
        for name, u in utilities.items()
    ]
    emit("\n" + banner("FIG 3: Resource-level utility (delta rel-perf per watt)"))
    emit(format_table(["app", "core", "frequency", "memory"], rows, float_format="{:.4f}"))
    # The paper's point: the best resource differs per application.
    best = {name: max(u, key=u.get) for name, u in utilities.items()}
    emit(f"preferred resource per app: {best}")
    assert best["stream"] == "memory"
    assert best["sssp"] == "frequency"
    assert len(set(best.values())) >= 2
