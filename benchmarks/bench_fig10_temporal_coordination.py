"""Fig. 10: power management at P_cap = 80 W (temporal coordination).

At 80 W the 10 W dynamic budget cannot host both applications at once (each
needs ~10 W minimum), so every policy duty-cycles; the consolidation-aware
schemes win big, and the ESD scheme - which banks during collective OFF
periods and runs everyone at full power during ON - roughly doubles the
best non-ESD result. Headline factors from the paper: App+Res-Aware ~+70%
over Util-Unaware; ESD ~2x.
"""

import numpy as np
import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.metrics import summarize_policies
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import run_mix_experiment, run_policy_comparison
from repro.workloads.mixes import all_mixes, get_mix

POLICIES = [
    "util-unaware",
    "server+res-aware",
    "app+res-aware",
    "app+res+esd-aware",
]
CAP_W = 80.0
DURATION_S = pick(60.0, 2.0)
WARMUP_S = pick(20.0, 0.5)


@pytest.fixture(scope="module")
def comparison(config, bench_metrics):
    results = run_policy_comparison(
        pick(all_mixes(), [get_mix(1), get_mix(10)]),
        POLICIES,
        CAP_W,
        config=config,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
    )
    for per_policy in results.values():
        for result in per_policy.values():
            bench_metrics.record(result.metrics)
    return results


def test_fig10_temporal_coordination(benchmark, comparison, config, emit):
    benchmark.pedantic(
        run_mix_experiment,
        args=(list(get_mix(10).profiles()), "app+res+esd-aware", CAP_W),
        kwargs=dict(
            config=config, duration_s=pick(20.0, 2.0), warmup_s=pick(10.0, 0.5)
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for mix_id in sorted(comparison):
        per = comparison[mix_id]
        rows.append([mix_id] + [per[p].server_throughput for p in POLICIES])
    summaries = summarize_policies(comparison)
    rows.append(["avg"] + [summaries[p].mean_server_throughput for p in POLICIES])
    emit("\n" + banner("FIG 10: Server throughput at P_cap = 80 W"))
    emit(format_table(["mix"] + POLICIES, rows))

    gains = {p: summaries[p].speedup_vs_baseline for p in POLICIES}
    esd_vs_best_non_esd = (
        summaries["app+res+esd-aware"].mean_server_throughput
        / summaries["app+res-aware"].mean_server_throughput
    )
    emit(
        "speedup over util-unaware: "
        + ", ".join(f"{p}: {g:.2f}" for p, g in gains.items())
    )
    emit(
        f"ESD over best non-ESD: {esd_vs_best_non_esd:.2f}x "
        "(paper: App+Res ~1.7x over baseline; ESD ~2x)"
    )
    if not tiny():
        assert gains["app+res-aware"] > 1.25
        assert gains["app+res+esd-aware"] > gains["app+res-aware"]
        assert 1.4 <= esd_vs_best_non_esd <= 4.0


def test_fig10_gains_grow_with_stringency(benchmark, comparison, config, emit):
    """Paper: "the more stringent the cap, the more important it is to do
    co-location aware power management"."""

    def loose_gain():
        subset = [get_mix(i) for i in pick((1, 10, 14), (1,))]
        loose = run_policy_comparison(
            subset,
            ["util-unaware", "app+res-aware"],
            100.0,
            config=config,
            duration_s=pick(15.0, 2.0),
            warmup_s=pick(6.0, 0.5),
        )
        means = {
            p: float(np.mean([loose[m][p].server_throughput for m in loose]))
            for p in ("util-unaware", "app+res-aware")
        }
        return means["app+res-aware"] / means["util-unaware"]

    gain_100 = benchmark.pedantic(loose_gain, rounds=1, iterations=1)
    summaries = summarize_policies(comparison)
    gain_80 = summaries["app+res-aware"].speedup_vs_baseline
    emit(
        f"\nApp+Res-Aware gain: {gain_100:.3f}x at 100 W vs {gain_80:.3f}x at 80 W "
        "(paper: ~1.2x vs ~1.7x)"
    )
    if not tiny():
        assert gain_80 > gain_100
