"""Cap-stringency sweep: the paper's cross-cutting claim as one curve.

"We show that the importance of rationing out power to individual
applications, and to each of its physical resources, grows with the
stringency of the power cap" - Section VI. Figs. 8 and 10 sample this claim
at two caps; this benchmark traces the whole curve: the App+Res-Aware (and
ESD) gain over Util-Unaware from a loose 115 W down to a stringent 75 W.
"""

import numpy as np
import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_series, format_table
from repro.core.simulation import run_mix_experiment
from repro.workloads.mixes import get_mix

MIX_IDS = pick((1, 10, 14), (1,))
CAPS = pick((115.0, 105.0, 95.0, 90.0, 85.0, 80.0, 75.0), (95.0, 80.0))
DURATION_S = pick(30.0, 2.0)
WARMUP_S = pick(12.0, 0.5)


def mean_throughput(config, policy, cap, sink=None):
    totals = []
    for mix_id in MIX_IDS:
        result = run_mix_experiment(
            list(get_mix(mix_id).profiles()),
            policy,
            cap,
            mix_id=mix_id,
            config=config,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            use_oracle_estimates=True,
        )
        if sink is not None:
            sink.record(result.metrics)
        totals.append(result.server_throughput)
    return float(np.mean(totals))


@pytest.fixture(scope="module")
def sweep(config, bench_metrics):
    data = {}
    for cap in CAPS:
        data[cap] = {
            policy: mean_throughput(config, policy, cap, sink=bench_metrics)
            for policy in ("util-unaware", "app+res-aware", "app+res+esd-aware")
        }
    return data


def test_cap_sweep_gains_grow_with_stringency(benchmark, config, sweep, emit):
    benchmark.pedantic(
        mean_throughput, args=(config, "util-unaware", 95.0), rounds=1, iterations=1
    )
    rows = []
    gains = {}
    esd_gains = {}
    for cap in CAPS:
        base = sweep[cap]["util-unaware"]
        ours = sweep[cap]["app+res-aware"]
        esd = sweep[cap]["app+res+esd-aware"]
        gains[cap] = ours / base if base > 0 else float("inf")
        esd_gains[cap] = esd / base if base > 0 else float("inf")
        rows.append(
            [
                f"{cap:.0f}",
                base,
                ours,
                f"{gains[cap]:.2f}x" if base > 0 else "inf",
                esd,
                f"{esd_gains[cap]:.2f}x" if base > 0 else "inf",
            ]
        )
    emit("\n" + banner("CAP SWEEP: gains vs stringency (mixes 1, 10, 14)"))
    emit(
        format_table(
            ["cap [W]", "util-unaware", "app+res", "gain", "+esd", "gain"], rows
        )
    )
    finite = [c for c in CAPS if np.isfinite(gains[c])]
    emit(
        format_series(
            "app+res gain",
            [f"{c:.0f}" for c in finite],
            [gains[c] for c in finite],
            x_label="cap W",
            y_label="x over baseline",
        )
    )
    if not tiny():
        # The claim: the gain at the tightest finite-baseline cap exceeds
        # the gain at the loosest, and the trend is broadly monotone.
        loose, tight = finite[0], finite[-1]
        assert gains[tight] > gains[loose]
        assert esd_gains[tight] >= gains[tight]
        # At very loose caps nobody is constrained: gains approach 1.
        assert gains[loose] < 1.15
