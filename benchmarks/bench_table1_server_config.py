"""Table I: the server configuration.

Regenerates the paper's platform table from :class:`ServerConfig` and
benchmarks knob-space enumeration (the operation every allocation epoch
implicitly iterates).
"""

from repro.analysis.reporting import banner, format_table


def test_table1_server_configuration(benchmark, config, emit):
    space = benchmark(config.knob_space)
    rows = [
        ["Processor", "Xeon-2620 (simulated)"],
        ["Cores", config.total_cores],
        ["Freq.", f"{config.freq_min_ghz}-{config.freq_max_ghz} GHz"],
        ["Freq. steps", len(config.frequencies_ghz)],
        ["LLC", f"{config.llc_mb_per_socket:.0f} MB / socket"],
        ["Memory", f"{config.memory_gb:.0f} GB DDR3"],
        ["NUMA", f"{config.sockets} nodes"],
        ["P_idle", f"{config.p_idle_w:.0f} W"],
        ["P_cm", f"{config.p_cm_w:.0f} W"],
        ["P_dynamic", f"{config.p_dynamic_max_w:.0f} W"],
        ["Knob space", f"{len(space)} (f, n, m) settings"],
    ]
    emit("\n" + banner("TABLE I: Server Configuration"))
    emit(format_table(["Parameter", "Value"], rows))
    assert len(space) == 432
