"""Fig. 8: power management at P_cap = 100 W (spatial coordination).

Regenerates all three panels over the full Table II:

* 8a - overall server throughput (normalized to uncapped) per mix for the
  four policies; headline: App-Aware ~+10% over both baselines, App+Res
  -Aware ~+10% more (~+20% total);
* 8b - the per-application power splits of App+Res-Aware (the paper's
  average 46%-54% split; mix-10's 55-45);
* 8c - per-application speedups of App+Res-Aware over Util-Unaware.
"""

import numpy as np
import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.metrics import summarize_policies
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import run_mix_experiment, run_policy_comparison
from repro.workloads.mixes import all_mixes, get_mix

POLICIES = ["util-unaware", "server+res-aware", "app-aware", "app+res-aware"]
CAP_W = 100.0


@pytest.fixture(scope="module")
def comparison(config, bench_metrics):
    results = run_policy_comparison(
        pick(all_mixes(), [get_mix(1), get_mix(10)]),
        POLICIES,
        CAP_W,
        config=config,
        duration_s=pick(25.0, 2.0),
        warmup_s=pick(8.0, 0.5),
    )
    for per_policy in results.values():
        for result in per_policy.values():
            bench_metrics.record(result.metrics)
    return results


def test_fig8a_server_throughput(benchmark, comparison, config, emit):
    benchmark.pedantic(
        run_mix_experiment,
        args=(list(get_mix(10).profiles()), "app+res-aware", CAP_W),
        kwargs=dict(
            config=config, duration_s=pick(10.0, 2.0), warmup_s=pick(4.0, 0.5)
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for mix_id in sorted(comparison):
        per = comparison[mix_id]
        rows.append([mix_id] + [per[p].server_throughput for p in POLICIES])
    summaries = summarize_policies(comparison)
    rows.append(
        ["avg"] + [summaries[p].mean_server_throughput for p in POLICIES]
    )
    emit("\n" + banner("FIG 8a: Server throughput at P_cap = 100 W"))
    emit(format_table(["mix"] + POLICIES, rows))
    gains = {p: summaries[p].speedup_vs_baseline for p in POLICIES}
    emit(
        "speedup over util-unaware: "
        + ", ".join(f"{p}: {g:.3f}" for p, g in gains.items())
        + "  (paper: server+res ~1.0, app-aware ~1.10, app+res ~1.20)"
    )
    if not tiny():
        assert gains["app-aware"] > 1.05
        assert gains["app+res-aware"] > gains["app-aware"]
        assert gains["app+res-aware"] > 1.12


def test_fig8b_power_splits(benchmark, comparison, emit):
    def split_rows():
        rows = []
        for mix_id in sorted(comparison):
            result = comparison[mix_id]["app+res-aware"]
            a, b = sorted(result.power_share)
            rows.append([mix_id, a, result.power_share[a], b, result.power_share[b]])
        return rows

    rows = benchmark(split_rows)
    emit("\n" + banner("FIG 8b: App+Res-Aware power splits at 100 W"))
    emit(format_table(["mix", "app1", "share1", "app2", "share2"], rows))
    summaries = summarize_policies(comparison)
    low, high = summaries["app+res-aware"].mean_power_split
    emit(f"average split: {low:.0%}-{high:.0%} (paper: 46%-54%)")
    if not tiny():
        assert low < 0.5 < high
    # Mix-10: the paper's 55-45 in PageRank's favour.
    mix10 = comparison[10]["app+res-aware"].power_share
    if not tiny():
        assert mix10["pagerank"] > mix10["kmeans"]


def test_fig8c_per_app_speedups(benchmark, comparison, emit):
    def speedup_rows():
        rows = []
        for mix_id in sorted(comparison):
            ours = comparison[mix_id]["app+res-aware"].normalized_throughput
            base = comparison[mix_id]["util-unaware"].normalized_throughput
            for app in sorted(ours):
                if base[app] > 0:
                    rows.append([mix_id, app, ours[app] / base[app]])
        return rows

    rows = benchmark(speedup_rows)
    emit("\n" + banner("FIG 8c: Per-app speedup of App+Res-Aware over Util-Unaware"))
    emit(format_table(["mix", "app", "speedup"], rows))
    speedups = [r[2] for r in rows]
    emit(
        f"mean per-app speedup {np.mean(speedups):.3f}; "
        f"{sum(1 for s in speedups if s >= 0.98)}/{len(speedups)} apps at or above baseline"
    )
    if not tiny():
        assert np.mean(speedups) > 1.05
