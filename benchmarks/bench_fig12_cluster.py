"""Fig. 12: cluster-level peak shaving on a 10-server prototype.

Regenerates both panels:

* 12a - the dynamic cluster caps at 15/30/45% peak shaving derived from the
  diurnal demand trace;
* 12b - aggregate cluster performance for Equal(RAPL), Equal(Ours), and
  Consolidation+Migration, plus the power-efficiency comparison behind the
  paper's "+4% vs consolidation, +12% vs RAPL" claim.

Known divergence (documented in EXPERIMENTS.md): with fully feasible
migration our consolidation baseline overtakes per-server capping at deep
shaving levels, where the physics of the 50 W idle floor favours powering
servers off; the paper's ordering (Ours >= consolidation by 3-5%) holds
here at the mild shaving level.
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_series, format_table
from repro.cluster.cluster import ClusterSimulator
from repro.workloads.traces import ClusterPowerTrace

SHAVES = pick((0.15, 0.30, 0.45), (0.15,))


@pytest.fixture(scope="module")
def experiment(config):
    simulator = ClusterSimulator(config)
    trace = ClusterPowerTrace.synthetic_diurnal(
        peak_w=simulator.uncapped_cluster_power_w(), step_s=120.0, seed=1
    )
    return simulator.run(
        trace=trace,
        shave_fractions=SHAVES,
        duration_s=pick(30.0, 3.0),
        warmup_s=pick(12.0, 0.5),
    )


def test_fig12a_dynamic_power_caps(benchmark, config, experiment, emit):
    trace = benchmark(
        lambda: ClusterPowerTrace.synthetic_diurnal(peak_w=1000.0, seed=1)
    )
    emit("\n" + banner("FIG 12a: Dynamic cluster power caps (diurnal trace)"))
    for shave in SHAVES:
        caps = experiment.cap_traces[shave]
        hours = [0, 3, 6, 9, 12, 15, 18, 21]
        values = [caps.at(h * 3600.0) for h in hours]
        emit(
            format_series(
                f"shave {shave:.0%}", hours, values, x_label="hour", y_label="cap W"
            )
        )
    assert trace.peak_w <= 1000.0


def test_fig12b_aggregate_performance(benchmark, experiment, emit):
    def tabulate():
        rows = []
        for shave in SHAVES:
            per = experiment.results[shave]
            for policy in ("equal-rapl", "consolidation-migration", "equal-ours"):
                r = per[policy]
                rows.append(
                    [
                        f"{shave:.0%}",
                        policy,
                        r.aggregate_performance,
                        r.mean_power_w,
                        r.budget_efficiency,
                        r.migrations,
                    ]
                )
        return rows

    rows = benchmark(tabulate)
    emit("\n" + banner("FIG 12b: Aggregate cluster performance under peak shaving"))
    emit(
        format_table(
            ["shave", "policy", "agg perf", "mean power [W]", "perf/avail-W", "migrations"],
            rows,
        )
    )
    results = experiment.results
    ours = [results[s]["equal-ours"].aggregate_performance for s in SHAVES]
    rapl = [results[s]["equal-rapl"].aggregate_performance for s in SHAVES]
    cons = [
        results[s]["consolidation-migration"].aggregate_performance for s in SHAVES
    ]
    emit(
        f"ours {ours[0]:.2f}-{ours[-1]:.2f} vs RAPL {rapl[0]:.2f}-{rapl[-1]:.2f} "
        "(paper: 63-99% vs 47-89%)"
    )
    mild = results[0.15]
    eff_gain_rapl = (
        mild["equal-ours"].budget_efficiency / mild["equal-rapl"].budget_efficiency - 1
    )
    eff_gain_cons = (
        mild["equal-ours"].budget_efficiency
        / mild["consolidation-migration"].budget_efficiency
        - 1
    )
    emit(
        f"budget-efficiency gain at 15% shaving: {eff_gain_rapl:+.1%} vs RAPL, "
        f"{eff_gain_cons:+.1%} vs consolidation (paper: +12%, +4%)"
    )
    if not tiny():
        # Orderings: ours beats RAPL everywhere; beats consolidation at the
        # mild level; everyone degrades with stringency.
        for o, r in zip(ours, rapl):
            assert o > r
        assert ours[0] >= cons[0] - 0.02
        assert ours == sorted(ours, reverse=True)
        assert eff_gain_rapl > 0.03
