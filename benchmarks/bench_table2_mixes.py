"""Table II: the fifteen application mixes, with calibrated demand data.

Regenerates the paper's mix table, augmented with each application's
uncapped power demand and minimum runnable power from the calibrated
substrate (the quantities the Section II-A worked example quotes).
"""

from repro.analysis.reporting import banner, format_table
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import all_mixes


def test_table2_application_mixes(benchmark, power_model, emit):
    def build_rows():
        rows = []
        for mix in all_mixes():
            a, b = mix.profiles()
            rows.append(
                [
                    mix.mix_id,
                    f"{a.name} ({a.wclass})",
                    f"{power_model.max_app_power_w(a):.1f}",
                    f"{b.name} ({b.wclass})",
                    f"{power_model.max_app_power_w(b):.1f}",
                ]
            )
        return rows

    rows = benchmark(build_rows)
    emit("\n" + banner("TABLE II: Application Mixes"))
    emit(
        format_table(
            ["Mix", "App1 (type)", "P_max [W]", "App2 (type)", "P_max [W]"], rows
        )
    )
    demands = [power_model.max_app_power_w(p) for p in CATALOG.values()]
    minimums = [power_model.min_app_power_w(p) for p in CATALOG.values()]
    emit(
        f"demand range {min(demands):.1f}-{max(demands):.1f} W "
        f"(paper: ~20 W); minimum {min(minimums):.1f}-{max(minimums):.1f} W "
        f"(paper: ~10 W)"
    )
    assert len(rows) == 15
