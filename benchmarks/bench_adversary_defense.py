"""Adversary defense: what catching a strategic tenant costs the honest ones.

Not a paper figure - this benchmark prices the PR 7 defense layer. For each
attack kind the byzantine harness runs its three arms (all-honest control,
adversarial defended, adversarial undefended) on mix 1, and each row
reports:

* **detection ticks** - quarantine latency from the attack window opening;
* **honest retention** - the honest tenant's defended throughput as a
  fraction of its all-honest baseline (the harness's enforced floor);
* **defense delta** - defended minus undefended honest throughput: positive
  when quarantining the attacker wins budget back, bounded below by the
  harness's ``UNDEFENDED_SLACK`` when the guard band costs more than the
  attack did.

The rows land in ``BENCH_adversary.json`` (override the path with
``$REPRO_BENCH_ADVERSARY``) so the numbers are committed alongside the
defenses they price; the pytest-benchmark measurement covers the inflate
comparison as the representative unit.
"""

from __future__ import annotations

import json
import os

from benchmarks._tiny import pick
from repro.adversary.plan import ADVERSARY_KINDS
from repro.analysis.reporting import banner, format_table
from repro.chaos import run_adversary_mix

BENCH_KIND = "inflate"
KINDS = pick(ADVERSARY_KINDS, (BENCH_KIND,))


def _run(kind: str) -> dict:
    result = run_adversary_mix(kind, seed=0)
    honest = sorted(result.honest_retention)
    scenario = result.scenario
    defended = result.defended
    undefended = result.undefended
    return {
        "kind": kind,
        "policy": scenario.policy,
        "p_cap_w": scenario.p_cap_w,
        "attackers": list(result.attackers),
        "detection_latency_ticks": dict(result.detection_latency_ticks),
        "detection_bound_ticks": scenario.detection_bound_ticks,
        "honest_retention": {
            app: result.honest_retention[app] for app in honest
        },
        "retention_floor": scenario.retention_floor,
        "honest_throughput": {
            "baseline": {
                app: result.baseline.normalized_throughput[app] for app in honest
            },
            "defended": {
                app: defended.normalized_throughput[app] for app in honest
            },
            "undefended": {
                app: undefended.normalized_throughput[app] for app in honest
            },
        },
        "defense_delta": {
            app: defended.normalized_throughput[app]
            - undefended.normalized_throughput[app]
            for app in honest
        },
        "false_positives": result.false_positives,
    }


def test_adversary_defense_costs(benchmark, emit):
    rows = []
    for kind in KINDS:
        if kind == BENCH_KIND:
            row = benchmark.pedantic(
                lambda: _run(BENCH_KIND), rounds=1, iterations=1
            )
        else:
            row = _run(kind)
        rows.append(row)
        # run_adversary_mix already enforced detection, retention, and the
        # false-positive invariants; re-assert the headline ones so a
        # harness regression cannot hide behind a stale JSON artifact.
        assert row["false_positives"] == 0
        assert all(
            lat <= row["detection_bound_ticks"]
            for lat in row["detection_latency_ticks"].values()
        )

    emit(banner("adversary defense costs, mix 1, seed 0"))
    emit(
        format_table(
            ["kind", "cap W", "detect ticks", "retention", "defense delta"],
            [
                [
                    row["kind"],
                    row["p_cap_w"],
                    max(row["detection_latency_ticks"].values()),
                    f"{min(row['honest_retention'].values()):.3f}",
                    f"{min(row['defense_delta'].values()):+.4f}",
                ]
                for row in rows
            ],
        )
    )

    path = os.environ.get("REPRO_BENCH_ADVERSARY", "BENCH_adversary.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "bench_adversary_defense",
                "mix_id": 1,
                "seed": 0,
                "rows": rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    emit(f"adversary defense sweep -> {path}")
