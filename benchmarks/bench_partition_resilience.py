"""Partition resilience: what lossy cap distribution costs, and what it holds.

Two views of the lease/epoch control plane:

* a severity matrix (loss x partition length) on a small cluster, reporting
  the aggregate performance each equal-split strategy retains relative to
  the oracle (instant, lossless, omniscient) cap distribution;
* a chaos severity sweep on the control plane alone, reporting the budget
  headroom and message accounting across seeded loss/partition/kill
  schedules.

The invariant the whole subsystem exists for - the sum of effective node
caps never exceeds the cluster budget - is enforced inside every run; these
benchmarks record how much performance that guarantee costs under
increasingly hostile networks.  The oracle path is the upper bound by
construction: the control plane pays for safety with guard-banded safe
caps on silent nodes and lease latency on reclamation.
"""

import pytest

from repro.analysis.reporting import banner, format_table
from repro.chaos import run_partition_chaos
from repro.cluster.cluster import ClusterSimulator
from repro.netsim import NetConfig, PartitionWindow
from repro.observability.metrics import MetricsRegistry
from repro.workloads.mixes import all_mixes
from repro.workloads.traces import ClusterPowerTrace

SHAVE = 0.30

# (label, loss, partition windows) - none / short cut / long double cut.
SEVERITIES = (
    ("clean", 0.0, ()),
    ("lossy", 0.10, ()),
    ("short cut", 0.10, (PartitionWindow(3, 6, (1,)),)),
    ("long cut", 0.30, (PartitionWindow(2, 10, (0, 1)),)),
)


@pytest.fixture(scope="module")
def small_cluster():
    simulator = ClusterSimulator(mixes=all_mixes()[:3], cap_grid_w=6.0)
    trace = ClusterPowerTrace.synthetic_diurnal(
        peak_w=simulator.uncapped_cluster_power_w(), days=0.15, step_s=600.0, seed=3
    )
    return simulator, trace


def _run(simulator, trace, *, netsim=None, metrics=None):
    return simulator.run(
        trace=trace,
        shave_fractions=(SHAVE,),
        duration_s=6.0,
        warmup_s=2.0,
        seed=1,
        netsim=netsim,
        metrics=metrics,
    )


def test_severity_matrix_perf_retention(benchmark, small_cluster, emit, bench_metrics):
    simulator, trace = small_cluster
    oracle = _run(simulator, trace).results[SHAVE]
    metrics = MetricsRegistry()
    rows = []
    retained = {}
    for label, loss, partitions in SEVERITIES:
        net = NetConfig(
            loss=loss, duplicate=loss / 2.0, jitter_steps=1,
            partitions=partitions, seed=7,
        )
        lossy = _run(simulator, trace, netsim=net, metrics=metrics).results[SHAVE]
        for policy in ("equal-rapl", "equal-ours"):
            base = oracle[policy].aggregate_performance
            got = lossy[policy].aggregate_performance
            retained[(label, policy)] = got / base if base > 0 else 1.0
            rows.append(
                [label, f"{loss:.0%}", policy, base, got,
                 f"{retained[(label, policy)]:.0%}"]
            )
    bench_metrics.record(metrics.to_json())
    result = benchmark(lambda: run_partition_chaos(seed=1, n_steps=80))
    emit("\n" + banner("Partition resilience: perf retained vs oracle distribution"))
    emit(
        format_table(
            ["network", "loss", "policy", "oracle perf", "lossy perf", "retained"],
            rows,
        )
    )
    assert result.headroom_w >= 0.0
    # Safety is never traded away: the lossy path can only lose performance
    # relative to the omniscient oracle, and never goes dark entirely.
    for (label, policy), ratio in retained.items():
        assert 0.0 < ratio <= 1.0 + 1e-9, (label, policy)
    # Consolidation keeps its oracle placement at every severity (it is a
    # baseline, not the system under test).
    assert metrics.counter("controlplane.commands").value > 0


def test_chaos_severity_sweep_headroom(benchmark, emit, bench_metrics):
    metrics = MetricsRegistry()
    runs = [
        run_partition_chaos(
            seed=seed, n_steps=100, loss=loss, metrics=metrics
        )
        for seed, loss in ((0, 0.0), (1, 0.1), (2, 0.2), (3, 0.3))
    ]
    bench_metrics.record(metrics.to_json())
    benchmark(lambda: run_partition_chaos(seed=5, n_steps=60, loss=0.2))
    emit("\n" + banner("Partition chaos sweep: budget headroom under escalation"))
    rows = [
        [
            run.seed,
            f"{run.loss:.0%}",
            run.partition_steps,
            run.killed_node_steps,
            run.headroom_w,
            run.outcome.final_epoch,
            run.outcome.net_stats["dropped_loss"]
            + run.outcome.net_stats["dropped_partition"],
        ]
        for run in runs
    ]
    emit(
        format_table(
            ["seed", "loss", "cut node-steps", "dead node-steps",
             "headroom [W]", "epochs", "drops"],
            rows,
        )
    )
    # Every schedule survived with the invariant intact and converged clean.
    assert all(run.headroom_w >= 0.0 for run in runs)
    assert all(run.outcome.zombie_free for run in runs)
    # Escalating loss costs real messages - the sweep is not a no-op.
    assert runs[-1].outcome.net_stats["dropped_loss"] > 0
    assert metrics.counter("controlplane.retries").value > 0
