"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark both *measures* a representative unit of its pipeline (the
pytest-benchmark part) and *prints* the same rows/series the paper's table
or figure reports, so ``pytest benchmarks/ --benchmark-only`` leaves a
directly comparable record in its output. Absolute numbers come from our
simulated substrate; the shapes are what reproduce (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.utility import CandidateSet
from repro.observability.metrics import MetricsRegistry
from repro.server.config import ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="session")
def config() -> ServerConfig:
    return ServerConfig()


@pytest.fixture(scope="session")
def perf_model(config) -> PerformanceModel:
    return PerformanceModel(config)


@pytest.fixture(scope="session")
def power_model(config, perf_model) -> PowerModel:
    return PowerModel(config, perf_model)


@pytest.fixture(scope="session")
def oracle_sets(config, power_model) -> dict[str, CandidateSet]:
    return {
        name: CandidateSet.from_models(profile, config, power_model=power_model)
        for name, profile in CATALOG.items()
    }


class MetricsSink:
    """Accumulates ``MixExperimentResult.metrics`` documents across benchmark
    runs and writes one merged JSON report (counters/gauges/histograms plus
    the aggregated per-phase profile) at session end."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.profile: dict[str, dict[str, float]] = {}
        self.runs = 0

    def record(self, metrics_doc: dict | None) -> None:
        if not metrics_doc:
            return
        doc = dict(metrics_doc)
        profile = doc.pop("profile", {})
        self.registry = self.registry.merge(MetricsRegistry.from_json(doc))
        for phase, stats in profile.items():
            agg = self.profile.setdefault(
                phase, {"calls": 0, "total_s": 0.0, "max_s": 0.0}
            )
            agg["calls"] += stats["calls"]
            agg["total_s"] += stats["total_s"]
            agg["max_s"] = max(agg["max_s"], stats["max_s"])
        self.runs += 1

    def to_json(self) -> dict:
        doc = self.registry.to_json()
        doc["profile"] = {
            phase: {
                **stats,
                "mean_s": stats["total_s"] / stats["calls"] if stats["calls"] else 0.0,
            }
            for phase, stats in sorted(self.profile.items())
        }
        doc["runs_recorded"] = self.runs
        return doc


@pytest.fixture(scope="session")
def bench_metrics(emit):
    """Session-wide sink for per-run metrics documents.

    Benchmarks that drive the mediator call ``bench_metrics.record(
    result.metrics)``; the merged report - including the per-phase
    profiling section - lands in ``$REPRO_BENCH_METRICS`` (default
    ``bench-metrics.json`` in the invocation directory)."""
    sink = MetricsSink()
    yield sink
    if sink.runs == 0:
        return
    path = os.environ.get("REPRO_BENCH_METRICS", "bench-metrics.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(sink.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    emit(f"benchmark metrics ({sink.runs} mediator runs) -> {path}")


@pytest.fixture(scope="session")
def emit(request):
    """Print straight to the terminal, bypassing pytest capture."""
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print(text)
        else:
            print(text)

    return _emit
