"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark both *measures* a representative unit of its pipeline (the
pytest-benchmark part) and *prints* the same rows/series the paper's table
or figure reports, so ``pytest benchmarks/ --benchmark-only`` leaves a
directly comparable record in its output. Absolute numbers come from our
simulated substrate; the shapes are what reproduce (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core.utility import CandidateSet
from repro.server.config import ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="session")
def config() -> ServerConfig:
    return ServerConfig()


@pytest.fixture(scope="session")
def perf_model(config) -> PerformanceModel:
    return PerformanceModel(config)


@pytest.fixture(scope="session")
def power_model(config, perf_model) -> PowerModel:
    return PowerModel(config, perf_model)


@pytest.fixture(scope="session")
def oracle_sets(config, power_model) -> dict[str, CandidateSet]:
    return {
        name: CandidateSet.from_models(profile, config, power_model=power_model)
        for name, profile in CATALOG.items()
    }


@pytest.fixture(scope="session")
def emit(request):
    """Print straight to the terminal, bypassing pytest capture."""
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print(text)
        else:
            print(text)

    return _emit
