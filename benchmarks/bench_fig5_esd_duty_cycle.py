"""Fig. 5: consolidated vs. alternate duty cycling with energy storage.

The paper's Fig. 5 argument: at a 70 W cap (below idle + P_cm + one app's
minimum), the battery can sustain execution - and running *both* apps
together during the ON phase amortizes P_cm, so consolidated duty cycling
(5b) sustains ~30% more execution per wall-clock second than alternating
one app at a time (5a).

We regenerate the comparison two ways: an analytic sustainable-cycle
computation from Eq. (5)'s energy balance, and a full engine simulation of
the consolidated scheme (the App+Res+ESD-Aware policy) that must agree with
the analytic rate.
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import default_battery, run_mix_experiment
from repro.workloads.mixes import get_mix

CAP_W = 70.0
DURATION_S = pick(60.0, 2.0)
WARMUP_S = pick(20.0, 0.5)


def sustainable_on_fraction(overshoot_w, headroom_w, efficiency):
    """ON fraction of a sustainable bank/boost cycle (Eq. 5 rearranged)."""
    banked_per_off_s = efficiency * headroom_w
    return banked_per_off_s / (banked_per_off_s + overshoot_w)


def test_fig5_consolidated_vs_alternate_duty_cycling(
    benchmark, config, power_model, emit, bench_metrics
):
    mix = get_mix(10)
    a, b = mix.profiles()
    p_a = power_model.max_app_power_w(a)
    p_b = power_model.max_app_power_w(b)
    headroom = CAP_W - config.p_idle_w
    eta = 0.70

    # (a) Alternate: one app ON at a time; P_cm is paid for every ON second
    # of *each* app separately.
    overshoot_alt_a = config.p_idle_w + config.p_cm_w + p_a - CAP_W
    overshoot_alt_b = config.p_idle_w + config.p_cm_w + p_b - CAP_W
    on_alt = sustainable_on_fraction(
        (overshoot_alt_a + overshoot_alt_b) / 2.0, headroom, eta
    )
    per_app_alternate = on_alt / 2.0  # the apps split the ON time

    # (b) Consolidated: both ON together; P_cm is paid once.
    overshoot_con = config.p_idle_w + config.p_cm_w + p_a + p_b - CAP_W
    per_app_consolidated = sustainable_on_fraction(overshoot_con, headroom, eta)

    gain = per_app_consolidated / per_app_alternate

    # Engine validation: the real policy must achieve the analytic rate.
    result = benchmark.pedantic(
        run_mix_experiment,
        args=(list(mix.profiles()), "app+res+esd-aware", CAP_W),
        kwargs=dict(
            mix_id=mix.mix_id,
            config=config,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            use_oracle_estimates=True,
        ),
        rounds=1,
        iterations=1,
    )
    bench_metrics.record(result.metrics)
    measured_per_app = result.server_throughput / 2.0

    emit("\n" + banner("FIG 5: ESD duty cycling at P_cap = 70 W (mix-10)"))
    emit(
        format_table(
            ["scheme", "per-app ON fraction", "source"],
            [
                ["(a) alternate", per_app_alternate, "analytic (Eq. 5 balance)"],
                ["(b) consolidated", per_app_consolidated, "analytic (Eq. 5 balance)"],
                ["(b) consolidated", measured_per_app, "engine simulation"],
            ],
        )
    )
    emit(
        f"consolidation gain: {gain:.2f}x "
        "(paper: ~1.3x - 6.5 s vs 5 s of execution)"
    )
    assert 1.1 <= gain <= 1.6
    if not tiny():
        # Needs several full duty cycles of averaging to converge.
        assert measured_per_app == pytest.approx(per_app_consolidated, rel=0.25)
