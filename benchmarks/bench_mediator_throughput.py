"""Mediator-in-the-loop throughput: the horizon-segmented fleet vs the loop.

Not a paper figure - this benchmark prices the *end-to-end* fast path.
``bench_engine_throughput`` showed the raw engine phase ~270x faster in
batch, but a mediated tick also walks telemetry, heartbeats, learning,
allocation, coordination, events and defense; this benchmark measures how
much of that planning stack :class:`~repro.engine.planner.MediatedFleet`
recovers. The same fleet - Table II mixes cycled across N servers, every
app with unbounded work - advances the same simulated span two ways:

* **scalar** - one :class:`~repro.core.mediator.PowerMediator` per server
  on the scalar engine, each ``run_for`` in a Python loop: the golden
  reference;
* **vector** - the same mediators on the vector engine, advanced by a
  :class:`~repro.engine.planner.MediatedFleet`, which replays steady
  stretches in closed-form horizon segments and drops to ``step()``
  whenever any entry gate fails.

Both arms first run an untimed warmup so the measured window is the steady
state the fast path targets (cold-start allocation epochs are scalar by
design; including them would benchmark the demotion policy, not the
kernels). Each row re-checks the equivalence contract - identical mediator
``state_dict()`` and metrics (minus wall-clock profiling) across arms - so
the speedup is never quoted for a path that drifted.

Beyond the scalar-vs-vector trajectory (10/100/1000 servers), two variant
arms at the 100-server point price the planning phases individually:
defense off (no trust scoring to replay) and the ESD duty-cycle policy
(battery flows + sleep-state residency in the flush).

The rows land in ``BENCH_mediator.json`` (override with
``$REPRO_BENCH_MEDIATOR``); CI compares a fresh run against the committed
baseline and fails on a >20% vector-throughput regression.
"""

from __future__ import annotations

import contextlib
import gc
import hashlib
import json
import os
import time

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.core.simulation import default_battery
from repro.core.trust import DefenseConfig
from repro.engine import MediatedFleet
from repro.learning.crossval import build_exhaustive_corpus
from repro.server.config import DEFAULT_SERVER_CONFIG
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import get_mix

SIZES = pick((10, 100, 1000), (2,))
TICKS = pick(200, 12)
WARMUP_TICKS = pick(80, 6)
BENCH_SIZE = pick(100, 2)
DT_S = 0.1
CAP_W = 95.0

# One profiling corpus for every mediator in every arm: it is read-only
# under oracle estimates and its construction would otherwise dominate
# fleet build time at 1000 servers.
_CORPUS = build_exhaustive_corpus(DEFAULT_SERVER_CONFIG, list(CATALOG.values()))


def _build_mediators(
    n_servers: int,
    *,
    engine: str,
    policy: str = "app+res-aware",
    defense: DefenseConfig | None = None,
) -> list[PowerMediator]:
    policy_obj = make_policy(policy)
    # Per-arm cache: CandidateSets are pure, so every server running the
    # same mix shares one set instead of rebuilding it per allocation epoch.
    oracle_cache: dict = {}
    mediators = []
    for i in range(n_servers):
        server = SimulatedServer(DEFAULT_SERVER_CONFIG, seed=0, engine=engine)
        mediator = PowerMediator(
            server,
            policy_obj,
            CAP_W,
            battery=default_battery() if policy_obj.uses_esd else None,
            corpus=_CORPUS,
            use_oracle_estimates=True,
            dt_s=DT_S,
            seed=i,
            defense=defense,
            oracle_cache=oracle_cache,
        )
        for profile in get_mix(1 + (i % 15)).profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediators.append(mediator)
    return mediators


@contextlib.contextmanager
def _quiesced_gc():
    """Freeze the warmup heap and pause collection for the timed window.

    Both arms retain every TickRecord of every mediator, so by 1000 servers
    the live heap is millions of objects and generational collections - not
    mediation - dominate wall clock, punishing whichever arm is faster.
    Freezing before the measurement times the work instead of the collector;
    both arms get the identical treatment.
    """
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.unfreeze()


def _scalar_arm(mediators: list[PowerMediator]) -> float:
    for m in mediators:
        m.run_for(WARMUP_TICKS * DT_S)
    with _quiesced_gc():
        started = time.perf_counter()
        for m in mediators:
            m.run_for(TICKS * DT_S)
        return time.perf_counter() - started


def _vector_arm(mediators: list[PowerMediator]) -> tuple[float, MediatedFleet]:
    fleet = MediatedFleet(mediators)
    fleet.run_for(WARMUP_TICKS * DT_S)
    with _quiesced_gc():
        started = time.perf_counter()
        fleet.run_for(TICKS * DT_S)
        return time.perf_counter() - started, fleet


def _comparable_metrics(mediator: PowerMediator) -> dict:
    doc = mediator.export_metrics()
    doc.pop("profile", None)  # wall-clock timings, not simulation facts
    return doc


def _fingerprint(mediator: PowerMediator) -> str:
    """Canonical digest of everything the equivalence contract covers."""
    doc = {
        "state": mediator.state_dict(),
        "metrics": _comparable_metrics(mediator),
    }
    return hashlib.sha256(json.dumps(doc, sort_keys=True).encode()).hexdigest()


def _measure(n_servers: int, **kwargs) -> dict:
    # The arms run strictly one after the other, and the scalar fleet is
    # reduced to per-mediator digests before the vector fleet is even
    # built: keeping ~1e6 scalar TickRecords alive fragments the allocator
    # enough to slow the (allocation-heavy) vector flush ~17x at 1000
    # servers, which would price the harness, not the planner.
    scalar_meds = _build_mediators(n_servers, engine="scalar", **kwargs)
    scalar_s = _scalar_arm(scalar_meds)
    reference = [_fingerprint(m) for m in scalar_meds]
    del scalar_meds
    gc.collect()

    vector_meds = _build_mediators(n_servers, engine="vector", **kwargs)
    vector_s, fleet = _vector_arm(vector_meds)
    # The speedup is only worth quoting while the contract holds.
    for digest, v in zip(reference, vector_meds):
        assert _fingerprint(v) == digest
    fast_fraction = fleet.fast_fraction
    del vector_meds, fleet
    gc.collect()

    ticks = n_servers * TICKS
    return {
        "n_servers": n_servers,
        "ticks_per_server": TICKS,
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "scalar_ticks_per_s": ticks / scalar_s,
        "vector_ticks_per_s": ticks / vector_s,
        "speedup": scalar_s / vector_s,
        "fast_fraction": fast_fraction,
    }


def test_mediator_throughput_trajectory(benchmark, emit):
    rows = []
    for n_servers in SIZES:
        if n_servers == BENCH_SIZE:
            row = benchmark.pedantic(
                _measure, args=(n_servers,), rounds=1, iterations=1
            )
        else:
            row = _measure(n_servers)
        row["arm"] = "default"
        rows.append(row)

    variants = []
    for arm, kwargs in (
        ("no-defense", {"defense": DefenseConfig(enabled=False)}),
        ("esd", {"policy": "app+res+esd-aware"}),
    ):
        row = _measure(BENCH_SIZE, **kwargs)
        row["arm"] = arm
        variants.append(row)

    emit(
        "\n"
        + banner(
            f"MEDIATOR THROUGHPUT: scalar loop vs MediatedFleet, "
            f"{TICKS} ticks/server after {WARMUP_TICKS} warmup"
        )
    )
    emit(
        format_table(
            ["arm", "servers", "scalar ticks/s", "vector ticks/s", "speedup", "fast"],
            [
                [
                    row["arm"],
                    row["n_servers"],
                    f"{row['scalar_ticks_per_s']:.0f}",
                    f"{row['vector_ticks_per_s']:.0f}",
                    f"{row['speedup']:.1f}x",
                    f"{row['fast_fraction']:.1%}",
                ]
                for row in rows + variants
            ],
        )
    )

    path = os.environ.get("REPRO_BENCH_MEDIATOR", "BENCH_mediator.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "bench_mediator_throughput",
                "dt_s": DT_S,
                "cap_w": CAP_W,
                "warmup_ticks": WARMUP_TICKS,
                "rows": rows,
                "variants": variants,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    emit(f"mediator throughput trajectory -> {path}")

    if not tiny():
        by_size = {row["n_servers"]: row for row in rows}
        # The acceptance bar: >= 10x end-to-end at 100 servers.
        assert by_size[100]["speedup"] >= 10.0
        # The fast path must actually carry the steady state, or the
        # speedup came from somewhere else (and will not generalize).
        for row in rows + variants:
            assert row["fast_fraction"] >= 0.90
