"""Tiny-mode switch for the benchmark suite.

The tier-1 smoke test (``tests/test_benchmarks_smoke.py``) runs every
benchmark with ``REPRO_BENCH_TINY=1`` so bit-rot is caught by pytest at a
cost of seconds, not discovered at bench time. Under tiny mode each
benchmark shrinks its scale knobs (servers, ticks, sweep points) to the
smallest shape that still exercises the full code path; the *numbers* it
prints are then meaningless, which is fine - the smoke test only asserts
the benchmarks run.

Usage::

    from benchmarks._tiny import pick

    DURATION_S = pick(30.0, 2.0)   # full scale, tiny scale
"""

from __future__ import annotations

import os


def tiny() -> bool:
    """Whether tiny mode is on (checked at import time by each benchmark)."""
    return os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")


def pick(full, small):
    """``full`` normally; ``small`` under ``REPRO_BENCH_TINY=1``."""
    return small if tiny() else full
