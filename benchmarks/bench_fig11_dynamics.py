"""Fig. 11: power re-allocation on application arrival and departure.

Regenerates both timelines:

* 11a - SSSP runs alone under a 100 W cap; X264 arrives at t = 20 s. The
  mediator re-calibrates and re-allocates (~800 ms settling): SSSP's power
  drops (keeping frequency, shedding cores) and X264 receives the rest
  (keeping cores, shedding frequency).
* 11b - kmeans and PageRank share the cap; PageRank completes and departs;
  the Accountant's E3 triggers re-allocation and kmeans is uncapped.
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.events import DepartureEvent
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


ARRIVAL_S = pick(20.0, 3.0)
DEPART_RUN_S = pick(60.0, 10.0)
DEPART_WORK = pick(45.0, 3.0)


def timeline_samples(mediator, times):
    rows = []
    for t in times:
        record = min(mediator.timeline, key=lambda r: abs(r.time_s - t))
        apps = ", ".join(
            f"{n}={w:.1f}W{record.app_knobs[n]}" for n, w in sorted(record.app_power_w.items())
        )
        rows.append([f"{record.time_s:.1f}", f"{record.wall_w:.1f}", apps or "-"])
    return rows


def test_fig11a_arrival(benchmark, config, emit, bench_metrics):
    def run():
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, use_oracle_estimates=True
        )
        sssp = CATALOG["sssp"].with_total_work(float("inf"))
        x264 = CATALOG["x264"].with_total_work(float("inf"))
        mediator.add_application(sssp, skip_overhead=True)
        mediator.run_for(ARRIVAL_S)
        mediator.add_application(x264)  # the ~800 ms overhead is charged
        mediator.run_for(ARRIVAL_S)
        return mediator

    mediator = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_metrics.record(mediator.export_metrics())
    emit("\n" + banner(f"FIG 11a: X264 arrives at t = {ARRIVAL_S:.0f} s (P_cap = 100 W)"))
    emit(
        format_table(
            ["t [s]", "wall [W]", "apps (power, knob)"],
            timeline_samples(
                mediator,
                [
                    ARRIVAL_S * 0.25,
                    ARRIVAL_S - 0.5,
                    ARRIVAL_S + 2.0,
                    2.0 * ARRIVAL_S - 1.0,
                ],
            ),
        )
    )
    before = min(
        mediator.timeline, key=lambda r: abs(r.time_s - (ARRIVAL_S - 0.5))
    )
    after = mediator.timeline[-1]
    emit(
        f"sssp power {before.app_power_w['sssp']:.1f} -> "
        f"{after.app_power_w['sssp']:.1f} W (paper: 25 -> 12 W); "
        f"x264 gets {after.app_power_w['x264']:.1f} W (paper: 18 W)"
    )
    sssp_knob = after.app_knobs["sssp"]
    x264_knob = after.app_knobs["x264"]
    emit(
        f"sssp knob: {sssp_knob} (paper: keeps 2 GHz, 6 -> 3 cores); "
        f"x264 knob: {x264_knob} (paper: keeps cores, 2 -> 1.4 GHz)"
    )
    assert after.app_power_w["sssp"] < before.app_power_w["sssp"] - 4.0
    assert sssp_knob.freq_ghz >= 1.8 and sssp_knob.cores <= 4
    assert x264_knob.cores >= 5 and x264_knob.freq_ghz <= 1.7


def test_fig11b_departure(benchmark, config, emit, bench_metrics):
    def run():
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, use_oracle_estimates=True
        )
        kmeans = CATALOG["kmeans"].with_total_work(float("inf"))
        pagerank = CATALOG["pagerank"].with_total_work(DEPART_WORK)
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.add_application(pagerank, skip_overhead=True)
        mediator.run_for(DEPART_RUN_S)
        return mediator

    mediator = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_metrics.record(mediator.export_metrics())
    departure_t = next(
        e.time_s
        for e in mediator.accountant.event_log
        if isinstance(e, DepartureEvent)
    )
    emit("\n" + banner("FIG 11b: PageRank departs (P_cap = 100 W)"))
    emit(f"pagerank completed at t = {departure_t:.1f} s")
    emit(
        format_table(
            ["t [s]", "wall [W]", "apps (power, knob)"],
            timeline_samples(
                mediator,
                [
                    departure_t - 5.0,
                    departure_t - 0.5,
                    departure_t + 2.0,
                    DEPART_RUN_S - 1.0,
                ],
            ),
        )
    )
    before = min(mediator.timeline, key=lambda r: abs(r.time_s - (departure_t - 1.0)))
    after = mediator.timeline[-1]
    shares_before = before.app_power_w
    emit(
        f"pre-departure split: kmeans {shares_before.get('kmeans', 0):.1f} W, "
        f"pagerank {shares_before.get('pagerank', 0):.1f} W "
        "(paper: 45%-55% in PageRank's favour)"
    )
    emit(
        f"post-departure: kmeans {after.app_power_w['kmeans']:.1f} W at "
        f"{after.app_knobs['kmeans']} (uncapped)"
    )
    assert shares_before.get("pagerank", 0) > shares_before.get("kmeans", 0)
    assert after.app_knobs["kmeans"] == config.max_knob
    assert after.app_power_w["kmeans"] > shares_before.get("kmeans", 0) + 3.0
