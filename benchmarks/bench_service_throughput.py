"""Service throughput: what the streaming facade costs, and how it sheds.

Not a paper figure - this benchmark prices the service layer (PR 6). The
same open-loop configuration runs at a sweep of offered loads against a
fixed drain capacity, and each run reports:

* **ingest cmds/sec** - commands accepted through the bounded buffer per
  wall-clock second (the facade's end-to-end command throughput);
* **ticks/sec** - sim ticks executed per wall-clock second (how far the
  event loop is from the batch mediator's pace);
* **shed rate** - the fraction of accepted commands the ``shed-oldest``
  policy later evicted, the overload-graceful degradation curve: near
  zero while the drain keeps up, climbing smoothly as the offered load
  outruns it, never touching the cap-safety lane.

The swept rows land in ``BENCH_service.json`` (override the path with
``$REPRO_BENCH_SERVICE``) so the numbers are committed alongside the code
they price; the pytest-benchmark measurement covers the middle of the
sweep as the representative unit.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks._tiny import pick
from repro.analysis.reporting import banner, format_table
from repro.service import MediatorService, ServiceConfig

# The regular lane drains 2 commands/tick (20/s of sim time; 1/tick under
# overload), so the upper half of the sweep genuinely outruns the drain.
TICKS = pick(1200, 120)
RATES_PER_S = pick((0.5, 5.0, 25.0, 50.0), (0.5, 5.0, 50.0))
BENCH_RATE_PER_S = 5.0


def _config(rate_per_s: float) -> ServiceConfig:
    return ServiceConfig(
        rate_per_s=rate_per_s,
        clients=4,
        ingest_capacity=8,
        backpressure="shed-oldest",
        drain_per_tick=2,
        overload_drain_per_tick=1,
        work_scale=0.05,
        cap_levels=(90.0, 110.0),
        cap_change_every_s=30.0,
        checkpoint_every_ticks=400,
        telemetry_every_ticks=50,
    )


def _run(rate_per_s: float, workdir) -> dict:
    service = MediatorService(_config(rate_per_s), workdir)
    started = time.perf_counter()
    service.run_for_ticks(TICKS)
    elapsed_s = time.perf_counter() - started
    service.close()
    counters = dict(service.metrics.counters())
    accepted = counters.get("service.ingest.accepted", 0.0)
    accepted += counters.get("service.ingest.safety_accepted", 0.0)
    shed = counters.get("service.ingest.shed", 0.0)
    return {
        "rate_per_s": rate_per_s,
        "ticks": TICKS,
        "elapsed_s": elapsed_s,
        "accepted_cmds": accepted,
        "shed_cmds": shed,
        "safety_shed_cmds": counters.get("service.ingest.safety_shed", 0.0),
        "admitted_jobs": counters.get("service.admit.admitted", 0.0),
        "completed_jobs": counters.get("service.jobs.completed", 0.0),
        "ticks_per_s": TICKS / elapsed_s,
        "ingest_cmds_per_s": accepted / elapsed_s,
        "shed_rate": shed / accepted if accepted else 0.0,
    }


def test_service_throughput_vs_offered_load(benchmark, emit, tmp_path):
    rows = []
    for rate in RATES_PER_S:
        if rate == BENCH_RATE_PER_S:
            row = benchmark.pedantic(
                lambda: _run(BENCH_RATE_PER_S, tmp_path / "bench"),
                rounds=1,
                iterations=1,
            )
        else:
            row = _run(rate, tmp_path / f"rate-{rate}")
        rows.append(row)
        # The safety lane must stay untouched at every offered load.
        assert row["safety_shed_cmds"] == 0

    # The overload-graceful shape: shedding is monotone in offered load,
    # absent while the drain keeps up, and present once the load outruns it.
    assert rows[0]["shed_rate"] == 0.0
    assert rows[-1]["shed_rate"] > 0.0
    sheds = [row["shed_rate"] for row in rows]
    assert sheds == sorted(sheds)

    emit(banner(f"service throughput, {TICKS} ticks per offered load"))
    emit(
        format_table(
            ["rate/s", "cmds in", "shed", "shed rate", "ticks/s", "cmds/s"],
            [
                [
                    row["rate_per_s"],
                    int(row["accepted_cmds"]),
                    int(row["shed_cmds"]),
                    f"{row['shed_rate']:.1%}",
                    f"{row['ticks_per_s']:.0f}",
                    f"{row['ingest_cmds_per_s']:.1f}",
                ]
                for row in rows
            ],
        )
    )

    path = os.environ.get("REPRO_BENCH_SERVICE", "BENCH_service.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "bench_service_throughput",
                "ticks_per_run": TICKS,
                "drain_per_tick": 2,
                "ingest_capacity": 8,
                "backpressure": "shed-oldest",
                "rows": rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    emit(f"service throughput sweep -> {path}")
