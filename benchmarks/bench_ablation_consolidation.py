"""Ablation: migration feasibility vs the Fig. 12 consolidation baseline.

EXPERIMENTS.md documents the reproduction's one material divergence: with
fully feasible migration, consolidation overtakes per-server capping at
deep shaving levels. This ablation quantifies the feasibility knobs the
paper hints at ("large application states or network bottlenecks"):
migration downtime, packing density, and replanning agility - showing where
the paper's ordering (Ours >= consolidation) does and does not hold.
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.cluster.cluster import ClusterSimulator
from repro.cluster.migration import ConsolidationPlanner, ConsolidationWalker
from repro.workloads.traces import ClusterPowerTrace

SHAVE = 0.30
STEP_S = pick(120.0, 7200.0)


def consolidation_perf(
    config,
    *,
    migration_downtime_s: float = 90.0,
    replan_interval_s: float = 600.0,
    boot_latency_s: float = 180.0,
) -> float:
    simulator = ClusterSimulator(config)
    trace = ClusterPowerTrace.synthetic_diurnal(
        peak_w=simulator.uncapped_cluster_power_w(), step_s=STEP_S, seed=1
    )
    ceiling = (1.0 - SHAVE) * trace.peak_w
    planner = ConsolidationPlanner(
        config, migration_downtime_s=migration_downtime_s
    )
    walker = ConsolidationWalker(
        planner,
        simulator.n_servers,
        replan_interval_s=replan_interval_s,
        boot_latency_s=boot_latency_s,
    )
    rated = config.uncapped_power_w * simulator.n_servers
    perf_time = 0.0
    offered_time = 0.0
    for demand in trace.demand_w:
        k = simulator.offered_load(demand)
        offered_time += 2.0 * k * trace.step_s
        if k == 0:
            continue
        draw = sum(simulator.loaded_server_power_w(i) for i in range(k))
        cap = ceiling if draw > ceiling else rated
        perf, _ = walker.step(simulator.apps_for_load(k), cap, trace.step_s)
        perf_time += perf * trace.step_s
    return perf_time / offered_time


def test_ablation_migration_feasibility(benchmark, config, emit):
    benchmark.pedantic(
        consolidation_perf, args=(config,), rounds=1, iterations=1
    )
    rows = []
    results = {}
    scenarios = [
        ("frictionless (0 s downtime, replan every step)", dict(migration_downtime_s=0.0, replan_interval_s=0.0, boot_latency_s=0.0)),
        ("default (90 s downtime, 10 min replans, 3 min boots)", {}),
        ("heavy state (600 s downtime)", dict(migration_downtime_s=600.0)),
        ("sluggish manager (1 h replans)", dict(replan_interval_s=3600.0)),
    ]
    for label, kwargs in scenarios:
        results[label] = consolidation_perf(config, **kwargs)
        rows.append([label, results[label]])
    emit("\n" + banner(f"ABLATION: consolidation feasibility at {SHAVE:.0%} shaving"))
    emit(format_table(["scenario", "aggregate performance"], rows))
    emit(
        "our Equal(Ours) measures ~0.69 at this level (Fig. 12 bench): the "
        "paper's ordering (Ours above consolidation) emerges once migration "
        "friction approaches the heavy-state/sluggish regimes it warns about."
    )
    if not tiny():
        ordered = [results[label] for label, _ in scenarios]
        # Friction can only hurt consolidation.
        assert ordered[0] >= ordered[1] - 0.01
        assert ordered[1] >= min(ordered[2], ordered[3]) - 0.01
