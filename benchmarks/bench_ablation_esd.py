"""Ablation: energy-storage characteristics vs the Fig. 10 result.

The paper notes the consolidated duty cycle is "tuned based on the storage
characteristics (power/energy capacity, efficiency, etc.)". This ablation
sweeps the two characteristics that matter at the 80 W operating point -
round-trip efficiency (sets the OFF:ON ratio through Eq. 5) and the
discharge-power limit (caps how far above the wall the ON phase can burst).
"""

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.core.simulation import run_mix_experiment
from repro.esd.battery import LeadAcidBattery
from repro.esd.controller import compute_duty_cycle
from repro.workloads.mixes import get_mix

CAP_W = 80.0
MIX_ID = 10
DURATION_S = pick(60.0, 2.0)
WARMUP_S = pick(20.0, 0.5)


def run_with_battery(config, sink=None, **battery_kwargs):
    params = dict(
        capacity_j=300_000.0,
        efficiency=0.70,
        max_charge_w=50.0,
        max_discharge_w=60.0,
        initial_soc=0.0,
    )
    params.update(battery_kwargs)
    result = run_mix_experiment(
        list(get_mix(MIX_ID).profiles()),
        "app+res+esd-aware",
        CAP_W,
        mix_id=MIX_ID,
        config=config,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        battery=LeadAcidBattery(**params),
        use_oracle_estimates=True,
    )
    if sink is not None:
        sink.record(result.metrics)
    return result.server_throughput


def test_ablation_esd_efficiency(benchmark, config, emit, bench_metrics):
    benchmark.pedantic(
        run_with_battery, args=(config,), kwargs=dict(efficiency=0.70),
        rounds=1, iterations=1,
    )
    rows = []
    throughputs = {}
    for eta in (0.5, 0.7, 0.9, 1.0):
        cycle = compute_duty_cycle(
            p_idle_w=config.p_idle_w,
            p_cm_w=config.p_cm_w,
            sum_app_w=40.0,
            p_cap_w=CAP_W,
            efficiency=eta,
            period_s=config.duty_cycle_period_s,
        )
        throughput = run_with_battery(config, sink=bench_metrics, efficiency=eta)
        throughputs[eta] = throughput
        rows.append([f"{eta:.0%}", cycle.on_fraction, throughput])
    emit("\n" + banner("ABLATION: battery efficiency vs ESD scheme (80 W, mix-10)"))
    emit(format_table(["round-trip eff", "Eq.5 ON fraction", "server throughput"], rows))
    emit(
        "Lead-Acid (~70%) gives the paper's 60-40 OFF-ON split; better "
        "chemistries shift the split and the throughput accordingly."
    )
    if not tiny():
        # Throughput must be monotone in efficiency (Eq. 5).
        values = [throughputs[e] for e in (0.5, 0.7, 0.9, 1.0)]
        assert all(b >= a - 0.02 for a, b in zip(values, values[1:]))


def test_ablation_esd_discharge_limit(benchmark, config, emit, bench_metrics):
    benchmark.pedantic(
        run_with_battery, args=(config,), kwargs=dict(max_discharge_w=60.0),
        rounds=1, iterations=1,
    )
    rows = []
    throughputs = {}
    for limit in (20.0, 40.0, 60.0):
        throughput = run_with_battery(config, sink=bench_metrics, max_discharge_w=limit)
        throughputs[limit] = throughput
        rows.append([f"{limit:.0f} W", throughput])
    emit("\n" + banner("ABLATION: discharge-power limit vs ESD scheme (80 W, mix-10)"))
    emit(format_table(["max discharge", "server throughput"], rows))
    emit(
        "a weak battery cannot cover the consolidated ON-phase overshoot "
        "(~40 W at this cap), so the allocator must shrink the ON-phase "
        "knobs - or the scheme degenerates toward plain duty cycling."
    )
    if not tiny():
        assert throughputs[60.0] >= throughputs[20.0] - 0.02


def test_ablation_battery_chemistry(benchmark, config, emit, bench_metrics):
    """Chemistry presets vs the 80 W scheme (the paper's reference [31]
    compares exactly these device classes for datacenter duty)."""
    from repro.esd.presets import BATTERY_PRESETS, make_battery
    from repro.core.simulation import run_mix_experiment

    def run_preset(preset):
        result = run_mix_experiment(
            list(get_mix(MIX_ID).profiles()),
            "app+res+esd-aware",
            CAP_W,
            mix_id=MIX_ID,
            config=config,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            battery=make_battery(preset),
            use_oracle_estimates=True,
        )
        bench_metrics.record(result.metrics)
        return result.server_throughput

    benchmark.pedantic(run_preset, args=("lead-acid",), rounds=1, iterations=1)
    rows = []
    results = {}
    for preset in BATTERY_PRESETS:
        results[preset] = run_preset(preset)
        rows.append([preset, results[preset]])
    emit("\n" + banner("ABLATION: battery chemistry vs ESD scheme (80 W, mix-10)"))
    emit(format_table(["preset", "server throughput"], rows))
    emit(
        "round-trip efficiency dominates at this duty: every point of eta "
        "shortens the OFF phase (Eq. 5), so the near-lossless ultracap edges "
        "out li-ion and both beat Lead-Acid. A 10 s duty period needs only "
        "~200 J per burst, so even the ultracap's small store suffices - "
        "chemistry choice at server scale is about cost and lifetime, which "
        "the paper argues favour the Lead-Acid UPS already in the chassis. "
        "Reserving half the cell for outage backup costs nothing at this "
        "duty (the scheme cycles a few hundred joules of a 300 kJ store)."
    )
    if not tiny():
        assert results["li-ion"] > results["lead-acid"]
        assert results["ultracap"] >= results["li-ion"] - 0.05
        assert results["lead-acid-backup-reserve"] == pytest.approx(
            results["lead-acid"], abs=0.05
        )
