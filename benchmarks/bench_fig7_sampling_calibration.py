"""Fig. 7: calibrating the online sampling fraction by 5-fold CV.

Regenerates the paper's calibration sweep: power and performance of the
collaboratively estimated allocation, relative to exhaustive sampling, as a
function of the fraction of (f, n, m) settings measured online. The paper
fixes 10% from this curve; our acceptance criteria are the same trends -
estimation error (and with it the risk of cap overshoot) falls, and
achieved performance approaches the oracle, as the fraction grows.
"""

from repro.analysis.reporting import banner, format_table
from repro.learning.crossval import calibrate_sampling_fraction
from repro.workloads.catalog import CATALOG

FRACTIONS = [0.02, 0.05, 0.10, 0.20, 0.40]


def test_fig7_sampling_fraction_calibration(benchmark, config, emit):
    points = benchmark.pedantic(
        calibrate_sampling_fraction,
        args=(config, list(CATALOG.values()), FRACTIONS),
        kwargs=dict(folds=5, seed=7),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{p.fraction:.0%}",
            p.power_ratio,
            p.worst_power_ratio,
            p.perf_ratio,
            p.power_rmse_w,
            p.perf_rmse_rel,
        ]
        for p in points
    ]
    emit("\n" + banner("FIG 7: Calibration of online sampling (5-fold CV)"))
    emit(
        format_table(
            [
                "sampled",
                "power/budget",
                "worst power",
                "perf vs oracle",
                "power RMSE [W]",
                "perf RMSE",
            ],
            rows,
        )
    )
    ten = next(p for p in points if p.fraction == 0.10)
    emit(
        f"operating point (paper: 10%): perf {ten.perf_ratio:.1%} of oracle, "
        f"power RMSE {ten.power_rmse_w:.2f} W"
    )
    assert points[0].power_rmse_w > points[-1].power_rmse_w
    assert points[0].perf_rmse_rel > points[-1].perf_rmse_rel
    assert ten.perf_ratio > 0.95
