"""Extension benchmark: power-aware job placement at cluster scale.

The paper's future-work item (i) - integrating power-struggle mediation
with cluster-level job allocation. Compares four placement strategies over
randomized arrival orders and heterogeneous per-server caps (the regime
peak shaving creates). The power-aware strategy scores each candidate
server by the *marginal knapsack objective* of adding the newcomer - it
sees the struggle coming; the baselines only count cores.
"""

import numpy as np
import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.cluster.scheduler import PLACEMENT_POLICIES, PowerAwareScheduler
from repro.workloads.catalog import CATALOG

CAP_CHOICES = [75.0, 85.0, 100.0, 120.0]
TRIALS = pick(20, 2)


def placement_sweep(config, *, n_jobs, n_servers, trials, seed):
    names = sorted(CATALOG)
    rng = np.random.default_rng(seed)
    means = {}
    for strategy in PLACEMENT_POLICIES:
        rng_s = np.random.default_rng(seed)  # identical scenarios per strategy
        totals = []
        for _ in range(trials):
            order = list(rng_s.choice(names, size=n_jobs, replace=False))
            caps = list(rng_s.choice(CAP_CHOICES, size=n_servers))
            scheduler = PowerAwareScheduler(config, caps, strategy=strategy)
            for name in order:
                scheduler.place(CATALOG[name])
            totals.append(scheduler.cluster_objective())
        means[strategy] = float(np.mean(totals))
    return means


def test_ext_power_aware_placement(benchmark, config, emit):
    means_slack = benchmark.pedantic(
        placement_sweep,
        args=(config,),
        kwargs=dict(n_jobs=4, n_servers=4, trials=TRIALS, seed=3),
        rounds=1,
        iterations=1,
    )
    means_full = placement_sweep(config, n_jobs=8, n_servers=4, trials=TRIALS, seed=3)
    emit("\n" + banner("EXTENSION: job placement strategies (mean cluster objective)"))
    rows = [
        [strategy, means_slack[strategy], means_full[strategy]]
        for strategy in PLACEMENT_POLICIES
    ]
    emit(
        format_table(
            ["strategy", "slack capacity (4 jobs / 8 slots)", "saturated (8 jobs / 8 slots)"],
            rows,
        )
    )
    gain_ff = means_slack["power-aware"] / means_slack["first-fit"] - 1
    gain_ll = means_slack["power-aware"] / means_slack["least-loaded"] - 1
    emit(
        f"with slack capacity and heterogeneous caps, anticipating the power "
        f"struggle is worth {gain_ff:+.0%} over first-fit and {gain_ll:+.0%} "
        "over least-loaded; at saturation every strategy must fill every "
        "slot and the placements converge."
    )
    if not tiny():
        assert means_slack["power-aware"] > means_slack["first-fit"] * 1.15
        assert means_slack["power-aware"] > means_slack["least-loaded"] * 1.05
        # At saturation the edge shrinks (pairings still differ slightly).
        assert means_full["power-aware"] > means_full["first-fit"] * 0.95
