"""Fig. 2: application-level utility curves differ across applications.

The paper's Fig. 2 plots performance loss versus the power cap for two
applications with visibly different slopes and knees. We regenerate the
curve for a contrasting pair (frequency-hungry PageRank and pipeline
-parallel X264) over a per-application budget sweep.
"""

import numpy as np

from repro.analysis.reporting import banner, format_series
from repro.core.utility import app_utility_curve


BUDGETS = [float(b) for b in np.arange(8.0, 26.0, 1.0)]


def test_fig2_application_utility_curves(benchmark, oracle_sets, emit):
    curves = {
        name: benchmark.pedantic(
            app_utility_curve,
            args=(oracle_sets[name], BUDGETS),
            rounds=3,
            iterations=1,
        )
        if name == "pagerank"
        else app_utility_curve(oracle_sets[name], BUDGETS)
        for name in ("pagerank", "x264")
    }
    emit("\n" + banner("FIG 2: App-level utility curves (Perf/Perf_nocap vs budget)"))
    for name, curve in curves.items():
        emit(format_series(name, BUDGETS, list(curve.relative_perf), x_label="W"))
    # The paper's point: the same watt cut costs the two apps differently.
    pr = curves["pagerank"]
    xv = curves["x264"]
    cut_pr = pr.value_at(22.0) - pr.value_at(15.0)
    cut_xv = xv.value_at(22.0) - xv.value_at(15.0)
    emit(
        f"performance lost cutting 22 W -> 15 W: pagerank {cut_pr:.3f}, "
        f"x264 {cut_xv:.3f} (paper's A/B example: 20% vs 1%)"
    )
    assert cut_pr > cut_xv
