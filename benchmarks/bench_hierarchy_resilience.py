"""Hierarchy resilience: what multi-level mediation delivers, at what speed.

The budget tree stacks the flat lease/epoch control plane into
datacenter -> PDU -> rack levels; every watt a leaf enforces was
delegated down a chain of per-level leases over lossy fabrics. This
benchmark prices that stacking across fleet scale and network severity:

* a fan-out x loss matrix (100 and 1000 servers), reporting the
  **mediation quality** each shape retains - the time-averaged fraction
  of the datacenter budget that reaches loaded leaves as enforceable
  caps once leases have warmed up - and the **breach count**, which is
  zero by construction (the replay raises if the sum of enforced caps
  ever exceeds any node's budget, so a completed run *is* the proof);
* a protocol-only throughput figure per fleet size (``steps_per_s``),
  since the tree multiplies controller work by the interior node count
  and the mediation path must stay cheap relative to the engine tick.

The rows land in ``BENCH_hierarchy.json`` (override with
``$REPRO_BENCH_HIERARCHY``) so the committed numbers ride with the code;
CI compares a fresh run against the committed baseline and fails on a
>20% steps/s regression at either fleet size.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks._tiny import pick, tiny
from repro.analysis.reporting import banner, format_table
from repro.hierarchy import TreeSpec, run_budget_tree
from repro.netsim import NetConfig

SHAPES = pick(((10, 10), (10, 10, 10)), ((2, 2),))
LOSSES = pick((0.0, 0.1, 0.3), (0.2,))
STEPS = pick(120, 8)
WARMUP = pick(20, 2)
DRAIN = pick(20, 4)
BENCH_FANOUTS = pick((3, 4), (2, 2))
BENCH_STEPS = pick(40, 8)


def _leaves(fanouts: tuple[int, ...]) -> int:
    n = 1
    for f in fanouts:
        n *= f
    return n


def _run(fanouts: tuple[int, ...], loss: float, *, steps: int = STEPS):
    """One full-load protocol replay; returns (outcome, wall seconds)."""
    n_leaves = _leaves(fanouts)
    spec = TreeSpec(fanouts=fanouts, budget_w=100.0 * n_leaves)
    net = NetConfig(
        loss=loss, duplicate=loss / 2.0, jitter_steps=1, seed=11
    )
    started = time.perf_counter()
    outcome = run_budget_tree(
        spec, [n_leaves] * steps, net=net, drain_steps=DRAIN
    )
    return outcome, time.perf_counter() - started


def _quality(outcome) -> float:
    """Time-averaged delivered fraction of the budget after lease warmup."""
    rows = outcome.caps_w[WARMUP:]
    return sum(sum(row) for row in rows) / (len(rows) * outcome.budget_w)


def test_mediation_quality_matrix(benchmark, emit):
    rows = []
    table = []
    for fanouts in SHAPES:
        n_leaves = _leaves(fanouts)
        quality_by_loss = {}
        breaches = 0
        elapsed_total = 0.0
        for loss in LOSSES:
            # A breach raises SimulationError inside the replay, so any
            # outcome we hold has a breach count of exactly zero.
            outcome, elapsed = _run(fanouts, loss)
            elapsed_total += elapsed
            quality_by_loss[loss] = _quality(outcome)
            assert outcome.max_total_cap_w <= outcome.budget_w + 1e-6
            assert outcome.zombie_free
            table.append(
                [
                    "x".join(str(f) for f in fanouts),
                    n_leaves,
                    f"{loss:.0%}",
                    f"{quality_by_loss[loss]:.1%}",
                    breaches,
                    outcome.fallbacks,
                    outcome.heals,
                    outcome.net_stats["dropped_loss"],
                ]
            )
        rows.append(
            {
                "n_servers": n_leaves,
                "fanouts": list(fanouts),
                "steps": STEPS,
                "steps_per_s": len(LOSSES) * STEPS / elapsed_total,
                "breaches": breaches,
                "quality_by_loss": {
                    f"{loss:g}": quality_by_loss[loss] for loss in LOSSES
                },
            }
        )

    benchmark(
        lambda: run_budget_tree(
            TreeSpec(
                fanouts=BENCH_FANOUTS,
                budget_w=100.0 * _leaves(BENCH_FANOUTS),
            ),
            [_leaves(BENCH_FANOUTS)] * BENCH_STEPS,
            net=NetConfig(loss=0.1, duplicate=0.05, jitter_steps=1, seed=3),
        )
    )

    emit("\n" + banner(f"HIERARCHY RESILIENCE: mediation quality, {STEPS} steps"))
    emit(
        format_table(
            ["tree", "servers", "loss", "quality", "breaches",
             "fallbacks", "heals", "drops"],
            table,
        )
    )
    for row in rows:
        emit(
            f"{row['n_servers']:>5} servers: {row['steps_per_s']:.1f} "
            f"mediation steps/s (protocol only, {len(LOSSES)} severities)"
        )

    path = os.environ.get("REPRO_BENCH_HIERARCHY", "BENCH_hierarchy.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "bench_hierarchy_resilience",
                "steps": STEPS,
                "warmup_steps": WARMUP,
                "losses": list(LOSSES),
                "rows": rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    emit(f"hierarchy resilience matrix -> {path}")

    if not tiny():
        by_size = {row["n_servers"]: row for row in rows}
        # The acceptance bar: on a clean network the tree delivers nearly
        # the whole budget at 100 servers, and loss degrades quality
        # gracefully (never to zero - the safe tier is unconditional).
        assert by_size[100]["quality_by_loss"]["0"] >= 0.90
        for row in rows:
            assert row["breaches"] == 0
            for quality in row["quality_by_loss"].values():
                assert 0.0 < quality <= 1.0 + 1e-9
