"""Fig. 9: utility differences across applications and their resources.

Regenerates the paper's drill-down for the three dissected mixes:

* 9a - mix-10 (pagerank+kmeans): inter-application utility curves around
  the operating point - the source of the 55-45 split;
* 9b - mix-1 (stream+kmeans): similar app-level utilities at ~15 W each...
* 9d - ...but very different resource-level utilities, the source of the
  App+Res-Aware gains;
* 9c - mix-14 (x264+sssp): both levels differ.
"""

import numpy as np

from repro.analysis.reporting import banner, format_series, format_table
from repro.core.utility import app_utility_curve, resource_marginal_utilities
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import get_mix

BUDGETS = [float(b) for b in np.arange(9.0, 25.0, 1.0)]


def test_fig9_mix_utility_differences(benchmark, config, oracle_sets, emit):
    def curves_for(mix_id):
        mix = get_mix(mix_id)
        return {
            name: app_utility_curve(oracle_sets[name], BUDGETS)
            for name in mix.names()
        }

    curves_by_mix = benchmark(
        lambda: {mid: curves_for(mid) for mid in (10, 1, 14)}
    )

    for mid, label in ((10, "9a"), (1, "9b"), (14, "9c")):
        emit("\n" + banner(f"FIG {label}: app-level utility, mix-{mid}"))
        for name, curve in curves_by_mix[mid].items():
            emit(format_series(name, BUDGETS, list(curve.relative_perf), x_label="W"))

    emit("\n" + banner("FIG 9d: resource-level utility for the dissected apps"))
    rows = []
    for name in ("stream", "kmeans", "x264", "sssp"):
        u = resource_marginal_utilities(CATALOG[name], config)
        rows.append([name, u["core"], u["frequency"], u["memory"]])
    emit(format_table(["app", "core", "frequency", "memory"], rows, float_format="{:.4f}"))

    # Mix-10: PageRank's marginal utility exceeds kmeans' near 15 W.
    m10 = curves_by_mix[10]
    slope = {
        n: c.value_at(17.0) - c.value_at(13.0) for n, c in m10.items()
    }
    assert slope["pagerank"] > slope["kmeans"]
    # Mix-1: app-level curves are close at 15 W (within ~15 points)...
    m1 = curves_by_mix[1]
    assert abs(m1["stream"].value_at(15.0) - m1["kmeans"].value_at(15.0)) < 0.15
    # ...but the resource preferences are opposite.
    u_stream = resource_marginal_utilities(CATALOG["stream"], config)
    u_kmeans = resource_marginal_utilities(CATALOG["kmeans"], config)
    assert max(u_stream, key=u_stream.get) == "memory"
    assert max(u_kmeans, key=u_kmeans.get) != "memory"
