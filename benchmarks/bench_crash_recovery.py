"""Crash recovery: warm restart from checkpoint+journal vs cold relearn.

Not a paper figure - this benchmark prices the PR 2 persistence layer. The
same mix runs three ways under App+Res-Aware at the paper's 80 W cap:

* **uninterrupted** - the reference run;
* **warm recovery** - the mediator is killed at three seeded ticks and the
  supervisor restores the latest checkpoint and replays the journal. Only
  the ticks after the last checkpoint re-execute, the calibration samples
  arrive intact inside the snapshot, and the recovered timeline is
  bit-identical to the reference;
* **cold rerun** - what you do without persistence: start over from tick
  zero and re-pay the online calibration for every application.

The emitted rows report what warm recovery replays (ticks, journal records)
against what a cold start re-executes, and the learning state (samples,
settling seconds) the checkpoint carried over.
"""

import time

import pytest

from benchmarks._tiny import pick, tiny
from repro.analysis.metrics import summarize_recovery
from repro.analysis.reporting import banner, format_table
from repro.chaos import kill_schedule, run_chaos_mix, run_script, mix_recipe
from repro.server.config import ServerConfig
from repro.workloads.mixes import get_mix

CAP_W = 80.0
DURATION_S = pick(20.0, 1.5)
WARMUP_S = pick(5.0, 0.5)
KILLS = pick(3, 1)
CHECKPOINT_EVERY = pick(50, 5)


def test_warm_recovery_vs_cold_relearn(benchmark, emit, tmp_path, bench_metrics):
    apps = list(get_mix(10).profiles())
    recipe, script = mix_recipe(
        apps,
        "app+res-aware",
        CAP_W,
        config=ServerConfig(),
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        use_oracle_estimates=False,
        dt_s=0.1,
        seed=1,
        faults=None,
        resilience=None,
    )
    baseline = run_script(recipe, script)
    total_ticks = baseline.tick_count
    kills = kill_schedule(total_ticks, KILLS, seed=7)

    chaos = benchmark.pedantic(
        lambda: run_chaos_mix(
            apps,
            "app+res-aware",
            CAP_W,
            workdir=tmp_path,
            kill_ticks=kills,
            mix_id=10,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            seed=1,
            checkpoint_every_ticks=CHECKPOINT_EVERY,
            baseline=baseline,
        ),
        rounds=1,
        iterations=1,
    )

    bench_metrics.record(chaos.result.metrics)
    bench_metrics.record(chaos.baseline.metrics)

    started = time.perf_counter()
    run_script(recipe, script)  # the cold alternative: redo everything
    cold_rerun_s = time.perf_counter() - started

    recovery = summarize_recovery(chaos.recovery, dt_s=0.1)
    replay_fraction = recovery.downtime_ticks / (KILLS * total_ticks)
    emit("\n" + banner(f"CRASH RECOVERY: mix-10 @ {CAP_W:.0f} W, {KILLS} kills"))
    rows = [
        ["uninterrupted", baseline.tick_count, "-", f"{chaos.baseline.server_throughput:.3f}"],
        [
            "warm recovery",
            recovery.downtime_ticks,
            recovery.journal_records_replayed,
            f"{chaos.result.server_throughput:.3f}",
        ],
        ["cold rerun (x3)", KILLS * total_ticks, "-", f"{chaos.baseline.server_throughput:.3f}"],
    ]
    emit(format_table(["path", "ticks executed", "journal records", "server tput"], rows))
    emit(
        f"kills at ticks {list(chaos.kill_ticks)}; checkpoints every "
        f"{CHECKPOINT_EVERY} ticks -> replay is {replay_fraction:.0%} of what "
        f"{KILLS} cold reruns re-execute"
    )
    emit(
        f"learning carried over: {recovery.samples_restored} calibration "
        f"samples, {recovery.cold_relearns_avoided} per-app relearns "
        f"(~{recovery.relearn_cost_avoided_s:.1f} s settling) avoided"
    )
    emit(
        f"wall-clock: one cold rerun {cold_rerun_s * 1e3:.0f} ms vs "
        f"{recovery.downtime_s:.1f} s of simulated downtime replayed across "
        f"{recovery.restarts} restarts"
    )

    # Recovery must beat starting over on every axis that matters.
    assert chaos.timeline_identical is True
    assert recovery.restarts == KILLS
    if not tiny():
        assert recovery.downtime_ticks < KILLS * total_ticks * 0.5
        assert recovery.cold_relearns_avoided == KILLS * len(apps)
    assert chaos.utility_gap == pytest.approx(0.0, abs=1e-12)
