"""Fig. 4: coordination in space vs. coordination in time.

The paper's Fig. 4 illustrates that a 90 W cap admits simultaneous
frequency-scaled execution (space coordination) while an 80 W cap forces
alternate duty cycling (time coordination). We regenerate the decision: the
App+Res-Aware policy's chosen mode and schedule across a cap sweep.
"""

from repro.analysis.reporting import banner, format_table
from repro.core.coordinator import CoordinationMode
from repro.core.policies import AppResAwarePolicy, PolicyContext
from repro.workloads.mixes import get_mix


CAPS = [110.0, 100.0, 95.0, 90.0, 85.0, 80.0, 75.0]


def test_fig4_space_vs_time_coordination(benchmark, config, oracle_sets, emit):
    mix = get_mix(10)
    subset = {n: oracle_sets[n] for n in mix.names()}
    policy = AppResAwarePolicy()

    def plan_at(cap):
        ctx = PolicyContext(
            config=config, p_cap_w=cap, oracle=subset, estimates=subset
        )
        return policy.plan(ctx)

    benchmark.pedantic(plan_at, args=(90.0,), rounds=5, iterations=1)

    rows = []
    modes = {}
    for cap in CAPS:
        plan = plan_at(cap)
        modes[cap] = plan.mode
        if plan.mode is CoordinationMode.SPACE:
            detail = ", ".join(
                f"{n}@{plan.allocation.apps[n].power_w:.1f}W" for n in sorted(plan.knobs)
            )
        elif plan.mode is CoordinationMode.TIME:
            detail = ", ".join(
                f"{s.apps[0]} ON {s.duration_s:.1f}s" for s in plan.slots
            )
        else:
            detail = "-"
        rows.append([f"{cap:.0f}", plan.mode.value, detail])
    emit("\n" + banner("FIG 4: Coordination mode vs. power cap (mix-10)"))
    emit(format_table(["P_cap [W]", "mode", "schedule"], rows))
    crossover = max(
        (cap for cap, mode in modes.items() if mode is CoordinationMode.TIME),
        default=None,
    )
    emit(
        f"space->time crossover at ~{crossover:.0f} W "
        "(the paper's worked example places it between 90 and 80 W)"
    )
    # The structural claim: space coordination at loose caps, temporal
    # coordination at stringent ones (and idle once not even one app's
    # minimum fits without an ESD), never the reverse.
    assert modes[110.0] is CoordinationMode.SPACE
    assert modes[80.0] is CoordinationMode.TIME
    ordered = [modes[c] for c in CAPS]  # caps descend
    first_non_space = next(
        i for i, m in enumerate(ordered) if m is not CoordinationMode.SPACE
    )
    assert all(m is not CoordinationMode.SPACE for m in ordered[first_non_space:])
