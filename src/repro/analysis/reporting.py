"""Plain-text tables and series for the benchmark harness.

The benchmarks must print "the same rows/series the paper reports"; these
helpers render them consistently (fixed-width columns, explicit headers) so
`bench_output.txt` is directly comparable with the paper's figures.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def banner(title: str, *, width: int = 78) -> str:
    """A section banner for benchmark output."""
    pad = max(0, width - len(title) - 2)
    left = pad // 2
    right = pad - left
    return f"{'=' * left} {title} {'=' * right}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width table.

    Floats are formatted with ``float_format``; everything else with
    ``str``. Column widths fit the widest cell.

    Raises:
        ConfigurationError: when a row's length differs from the header's.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as labelled (x, y) pairs.

    Raises:
        ConfigurationError: on length mismatch.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must align")
    pairs = "  ".join(
        f"({x}, {y:.4f})" if isinstance(y, float) else f"({x}, {y})"
        for x, y in zip(xs, ys)
    )
    return f"series {name} [{x_label} -> {y_label}]: {pairs}"
