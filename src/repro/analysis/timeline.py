"""ASCII timeline rendering: make a mediator run visible in a terminal.

The paper's Fig. 11 tells its story with power-versus-time plots. This
module renders the equivalent from a mediator's recorded
:class:`~repro.core.mediator.TickRecord` timeline without any plotting
dependency - examples and benchmark output stay self-contained text.

Two renderers:

* :func:`render_power_timeline` - a horizontal strip chart of wall power
  (and optionally per-app power) against time, with the cap line marked;
* :func:`render_series` - the generic single-series variant used for
  battery state of charge, throughput, or anything else sampled over time.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError

#: Glyphs from empty to full, used to quantize a sample into one cell.
_LEVELS = " .:-=+*#%@"


def _sample(values: Sequence[float], buckets: int) -> list[float]:
    """Down-sample ``values`` to ``buckets`` means (the cells of the strip)."""
    if buckets >= len(values):
        return list(values)
    out = []
    for i in range(buckets):
        lo = i * len(values) // buckets
        hi = max(lo + 1, (i + 1) * len(values) // buckets)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def render_series(
    label: str,
    times_s: Sequence[float],
    values: Sequence[float],
    *,
    width: int = 72,
    ceiling: float | None = None,
) -> str:
    """One labelled strip: each cell's glyph encodes the bucket mean.

    Args:
        label: Row label.
        times_s: Sample times (only the ends are printed).
        values: Samples, same length as ``times_s``.
        width: Cells in the strip.
        ceiling: Value mapped to the densest glyph; defaults to the max.

    Raises:
        ConfigurationError: on empty or mismatched inputs.
    """
    if not values or len(values) != len(times_s):
        raise ConfigurationError("need equal-length, non-empty times and values")
    if width < 8:
        raise ConfigurationError("width must be at least 8")
    top = ceiling if ceiling is not None else max(values)
    top = max(top, 1e-12)
    cells = _sample(list(values), width)
    glyphs = "".join(
        _LEVELS[min(len(_LEVELS) - 1, int(round(v / top * (len(_LEVELS) - 1))))]
        for v in (max(0.0, c) for c in cells)
    )
    return (
        f"{label:>12s} |{glyphs}|  "
        f"[{times_s[0]:.0f}s..{times_s[-1]:.0f}s], peak {max(values):.1f}"
    )


def render_power_timeline(
    timeline: Sequence,
    *,
    apps: Sequence[str] | None = None,
    width: int = 72,
) -> str:
    """Strip chart of a mediator timeline: wall power, cap, per-app power.

    Args:
        timeline: ``TickRecord`` sequence (anything with ``time_s``,
            ``wall_w``, ``p_cap_w`` and ``app_power_w``).
        apps: Applications to include as their own rows; defaults to every
            app that ever drew power.
        width: Cells per strip.

    Raises:
        ConfigurationError: on an empty timeline.
    """
    records = list(timeline)
    if not records:
        raise ConfigurationError("timeline is empty")
    times = [r.time_s for r in records]
    cap = max(r.p_cap_w for r in records)
    lines = [
        render_series(
            "wall [W]",
            times,
            [r.wall_w for r in records],
            width=width,
            ceiling=cap,
        )
        + f"  (cap {cap:.0f} W)"
    ]
    if apps is None:
        seen: set[str] = set()
        for r in records:
            seen.update(r.app_power_w)
        apps = sorted(seen)
    for app in apps:
        series = [r.app_power_w.get(app, 0.0) for r in records]
        if any(series):
            lines.append(render_series(app, times, series, width=width))
    return "\n".join(lines)


def render_modes(timeline: Sequence, *, width: int = 72) -> str:
    """One strip showing the coordination mode over time.

    Glyphs: ``S`` space, ``T`` time, ``E`` ESD, ``.`` idle.
    """
    records = list(timeline)
    if not records:
        raise ConfigurationError("timeline is empty")
    glyph_of = {"space": "S", "time": "T", "esd": "E", "idle": "."}
    modes = [glyph_of.get(r.mode.value, "?") for r in records]
    cells = []
    for i in range(min(width, len(modes))):
        lo = i * len(modes) // min(width, len(modes))
        cells.append(modes[lo])
    return f"{'mode':>12s} |{''.join(cells)}|  (S space, T time, E esd, . idle)"
