"""Result export: experiment outputs as JSON and CSV for external plotting.

The benchmarks print the paper's rows to the terminal; downstream users
replotting with their own tooling want machine-readable files instead.
These helpers serialize the experiment result types without adding any
plotting dependency to the library.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import asdict, is_dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.core.simulation import MixExperimentResult


def _jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples/numpy scalars to JSON types."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return value.item()
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def results_to_json(results: Any, path: str | os.PathLike) -> None:
    """Serialize any result structure (dataclasses included) to JSON.

    Works for ``MixExperimentResult``, ``{mix: {policy: result}}``
    comparisons, ``ClusterExperiment.results``, calibration point lists -
    anything built from dataclasses, dicts, lists and scalars.
    """
    with open(path, "w") as handle:
        json.dump(_jsonable(results), handle, indent=2, sort_keys=True)


def comparison_to_csv(
    comparison: dict[int, dict[str, MixExperimentResult]],
    path: str | os.PathLike,
) -> None:
    """Flatten a ``run_policy_comparison`` output to one CSV row per
    (mix, policy, app): the long format plotting libraries prefer.

    Columns: ``mix_id, policy, p_cap_w, app, normalized_throughput,
    power_share, server_throughput, mean_wall_power_w``.

    Raises:
        ConfigurationError: on an empty comparison.
    """
    if not comparison:
        raise ConfigurationError("empty comparison")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "mix_id",
                "policy",
                "p_cap_w",
                "app",
                "normalized_throughput",
                "power_share",
                "server_throughput",
                "mean_wall_power_w",
            ]
        )
        for mix_id in sorted(comparison):
            for policy in sorted(comparison[mix_id]):
                result = comparison[mix_id][policy]
                for app in sorted(result.normalized_throughput):
                    writer.writerow(
                        [
                            mix_id,
                            policy,
                            result.p_cap_w,
                            app,
                            result.normalized_throughput[app],
                            result.power_share.get(app, 0.0),
                            result.server_throughput,
                            result.mean_wall_power_w,
                        ]
                    )


def timeline_to_csv(timeline: list, path: str | os.PathLike) -> None:
    """Flatten a mediator timeline to CSV: one row per (tick, app), plus
    server-level rows with app ``_server`` carrying wall power and mode.

    Raises:
        ConfigurationError: on an empty timeline.
    """
    if not timeline:
        raise ConfigurationError("empty timeline")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["time_s", "app", "power_w", "progressed", "mode", "p_cap_w", "battery_soc"]
        )
        for record in timeline:
            writer.writerow(
                [
                    record.time_s,
                    "_server",
                    record.wall_w,
                    "",
                    record.mode.value,
                    record.p_cap_w,
                    record.battery_soc if record.battery_soc is not None else "",
                ]
            )
            for app, power in sorted(record.app_power_w.items()):
                writer.writerow(
                    [
                        record.time_s,
                        app,
                        power,
                        record.progressed.get(app, 0.0),
                        record.mode.value,
                        record.p_cap_w,
                        "",
                    ]
                )
