"""Metric aggregation and table/series formatting for the benchmark harness.

* :mod:`~repro.analysis.metrics` - normalized-throughput aggregation,
  speedups over baselines, power-split statistics.
* :mod:`~repro.analysis.reporting` - plain-text tables and series printers
  the benchmarks use to emit the same rows the paper's figures plot.
"""

from repro.analysis.metrics import (
    mean_server_throughput,
    speedup_over,
    power_split_stats,
    summarize_policies,
    summarize_recovery,
    summarize_resilience,
    PolicySummary,
    RecoverySummary,
    ResilienceSummary,
)
from repro.analysis.reporting import format_table, format_series, banner
from repro.analysis.timeline import (
    render_power_timeline,
    render_series,
    render_modes,
)
from repro.analysis.export import (
    results_to_json,
    comparison_to_csv,
    timeline_to_csv,
)

__all__ = [
    "mean_server_throughput",
    "speedup_over",
    "power_split_stats",
    "summarize_policies",
    "summarize_recovery",
    "summarize_resilience",
    "PolicySummary",
    "RecoverySummary",
    "ResilienceSummary",
    "format_table",
    "format_series",
    "banner",
    "render_power_timeline",
    "render_series",
    "render_modes",
    "results_to_json",
    "comparison_to_csv",
    "timeline_to_csv",
]
