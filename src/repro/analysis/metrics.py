"""Aggregation of experiment results into the paper's reported quantities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.core.resilience import FaultStats
from repro.core.simulation import MixExperimentResult

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.persistence.supervisor import RecoveryStats


@dataclass(frozen=True)
class PolicySummary:
    """Cross-mix aggregate for one policy at one cap.

    Attributes:
        policy: Policy name.
        p_cap_w: The cap.
        mean_server_throughput: Mean over mixes of the per-mix sum of
            normalized per-app throughputs (the paper's "overall server
            throughput").
        speedup_vs_baseline: Ratio of this policy's mean to the named
            baseline's mean (filled by :func:`summarize_policies`).
        mean_power_split: Mean (smaller-share, larger-share) split between
            the two applications when running spatially (the paper's
            "46%-54% split, on average").
    """

    policy: str
    p_cap_w: float
    mean_server_throughput: float
    speedup_vs_baseline: float
    mean_power_split: tuple[float, float]


def mean_server_throughput(results: dict[int, MixExperimentResult]) -> float:
    """Mean server throughput over a ``{mix_id: result}`` map."""
    if not results:
        raise ConfigurationError("no results to aggregate")
    return float(np.mean([r.server_throughput for r in results.values()]))


def speedup_over(
    results: dict[int, MixExperimentResult],
    baseline: dict[int, MixExperimentResult],
) -> float:
    """Ratio of mean server throughputs (policy over baseline).

    Raises:
        ConfigurationError: when the result sets cover different mixes.
    """
    if set(results) != set(baseline):
        raise ConfigurationError("result sets cover different mixes")
    return mean_server_throughput(results) / mean_server_throughput(baseline)


def power_split_stats(
    results: dict[int, MixExperimentResult],
) -> tuple[float, float]:
    """Mean (low, high) power split over mixes that ran spatially.

    Mixes under temporal coordination (all shares zero) are skipped; if no
    mix ran spatially the result is ``(0.5, 0.5)`` by convention.
    """
    lows: list[float] = []
    highs: list[float] = []
    for result in results.values():
        shares = sorted(result.power_share.values())
        if len(shares) == 2 and sum(shares) > 0:
            lows.append(shares[0])
            highs.append(shares[1])
    if not lows:
        return (0.5, 0.5)
    return (float(np.mean(lows)), float(np.mean(highs)))


@dataclass(frozen=True)
class ResilienceSummary:
    """Condensed fault/recovery accounting for one mediated run.

    Attributes:
        fault_count: Fault episodes raised (injected or detected).
        recovered_count: Episodes that closed (the rest were still open at
            the end of the run).
        breach_ticks: Ticks whose true wall power exceeded the cap.
        emergency_throttles: Times the emergency floor-throttle fired.
        actuation_retries: Knob-write retries performed.
        actuation_escalations: Retry sequences that ended in suspension.
        degraded_ticks: Ticks spent in degraded telemetry mode.
        degraded_fraction: ``degraded_ticks`` over the run's total ticks
            (``0.0`` when ``total_ticks`` is unknown or zero).
        crashes: Unexpected application exits.
        mttr_s: Mean time to repair over closed episodes, or ``None`` when
            nothing closed.
    """

    fault_count: int
    recovered_count: int
    breach_ticks: int
    emergency_throttles: int
    actuation_retries: int
    actuation_escalations: int
    degraded_ticks: int
    degraded_fraction: float
    crashes: int
    mttr_s: float | None


def summarize_resilience(
    stats: FaultStats, *, total_ticks: int | None = None
) -> ResilienceSummary:
    """Condense a run's :class:`FaultStats` into the reported counters.

    Args:
        stats: The mediator's fault ledger (``mediator.fault_stats`` or the
            ``fault_stats`` field of an experiment result).
        total_ticks: Run length in ticks, for ``degraded_fraction``; pass
            ``len(mediator.timeline)`` when available.
    """
    recovered = sum(1 for ep in stats.episodes if not ep.open)
    fraction = (
        stats.degraded_ticks / total_ticks if total_ticks else 0.0
    )
    return ResilienceSummary(
        fault_count=len(stats.episodes),
        recovered_count=recovered,
        breach_ticks=stats.breach_ticks,
        emergency_throttles=stats.emergency_throttles,
        actuation_retries=stats.actuation_retries,
        actuation_escalations=stats.actuation_escalations,
        degraded_ticks=stats.degraded_ticks,
        degraded_fraction=fraction,
        crashes=stats.crashes,
        mttr_s=stats.mttr_s(),
    )


@dataclass(frozen=True)
class RecoverySummary:
    """Condensed crash-recovery accounting for one supervised run.

    Attributes:
        restarts: Warm restarts performed (kills + hangs).
        hangs_detected: Restarts triggered by the tick deadline.
        downtime_ticks: Ticks re-executed from the journal after restores.
        downtime_s: The same, in simulated seconds.
        journal_records_replayed: Journal records replayed in total.
        checkpoints_written: Snapshots written (including post-recovery).
        samples_restored: Calibration samples restored from checkpoints
            instead of being re-measured online.
        cold_relearns_avoided: Per-application calibrations that restore
            made unnecessary.
        relearn_cost_avoided_s: Simulated seconds of calibration +
            re-allocation latency saved by restoring learning state instead
            of relearning from scratch.
    """

    restarts: int
    hangs_detected: int
    downtime_ticks: int
    downtime_s: float
    journal_records_replayed: int
    checkpoints_written: int
    samples_restored: int
    cold_relearns_avoided: int
    relearn_cost_avoided_s: float


def summarize_recovery(
    stats: "RecoveryStats",
    *,
    dt_s: float = 0.1,
    reallocation_latency_s: float = 0.8,
) -> RecoverySummary:
    """Condense a supervisor's :class:`~repro.persistence.supervisor.RecoveryStats`.

    Args:
        stats: ``supervisor.stats`` after a run.
        dt_s: Tick length, to express downtime in simulated seconds.
        reallocation_latency_s: The paper's measured ~800 ms settling window
            charged per cold calibration; each avoided relearn saves one.
    """
    return RecoverySummary(
        restarts=stats.restarts,
        hangs_detected=stats.hangs_detected,
        downtime_ticks=stats.downtime_ticks,
        downtime_s=stats.downtime_ticks * dt_s,
        journal_records_replayed=stats.journal_records_replayed,
        checkpoints_written=stats.checkpoints_written,
        samples_restored=stats.samples_restored,
        cold_relearns_avoided=stats.cold_relearns_avoided,
        relearn_cost_avoided_s=stats.cold_relearns_avoided * reallocation_latency_s,
    )


def summarize_policies(
    comparison: dict[int, dict[str, MixExperimentResult]],
    *,
    baseline: str = "util-unaware",
) -> dict[str, PolicySummary]:
    """Condense a ``run_policy_comparison`` output into per-policy summaries.

    Args:
        comparison: ``{mix_id: {policy: result}}``.
        baseline: The policy all speedups are reported against.

    Raises:
        ConfigurationError: when ``baseline`` is missing from the results.
    """
    if not comparison:
        raise ConfigurationError("empty comparison")
    policies = sorted(next(iter(comparison.values())))
    if baseline not in policies:
        raise ConfigurationError(f"baseline {baseline!r} not in results {policies}")
    per_policy: dict[str, dict[int, MixExperimentResult]] = {
        policy: {mid: comparison[mid][policy] for mid in comparison} for policy in policies
    }
    base_mean = mean_server_throughput(per_policy[baseline])
    caps = {r.p_cap_w for results in per_policy.values() for r in results.values()}
    if len(caps) != 1:
        raise ConfigurationError(f"results mix several caps: {sorted(caps)}")
    cap = caps.pop()
    return {
        policy: PolicySummary(
            policy=policy,
            p_cap_w=cap,
            mean_server_throughput=mean_server_throughput(per_policy[policy]),
            speedup_vs_baseline=mean_server_throughput(per_policy[policy]) / base_mean,
            mean_power_split=power_split_stats(per_policy[policy]),
        )
        for policy in policies
    }
