"""Fault plans: declarative, seeded, JSON-serializable fault schedules.

A :class:`FaultPlan` is the experiment-side description of every substrate
misbehaviour one run should suffer. It is deliberately *dumb data*: the plan
says *what* breaks, *when*, *for how long* and *how hard*; the
:class:`~repro.faults.injector.FaultInjector` owns the mechanics of breaking
it and the mediator's resilience layer owns surviving it. Plans are frozen
and serializable so a faulty run is exactly reproducible from a JSON file
plus a seed (the acceptance contract: same plan + same seed => identical
timeline).

Fault classes (``FaultSpec.kind`` / ``mode``):

======== ============ ====================================================
kind      mode         effect while active
======== ============ ====================================================
rapl      drop         knob writes are silently ignored (stuck actuator)
rapl      partial      only the DVFS field of a write lands (torn write)
rapl      stale        writes land but readback reports the pre-fault knob
telemetry drop         wall-power samples are lost (no reading this tick)
telemetry stale        samples repeat the last pre-fault value, marked unfresh
telemetry noise        samples gain seeded gaussian noise of ``magnitude`` W
battery   outage       the ESD refuses all charge/discharge flows
battery   derate       max discharge power is scaled by ``magnitude``
battery   fade         capacity permanently scaled by ``1 - magnitude``
app       crash        the target exits unexpectedly (forced E3, once)
app       hang         the target stops progressing but keeps drawing power
node      outage       a whole cluster server is down (cluster scope)
pdu       outage       a whole PDU-level subtree is dark (hierarchy scope)
rack      outage       a whole rack-level subtree is dark (hierarchy scope)
======== ============ ====================================================

``target`` names the affected application for ``app`` faults (``None``
resolves to the alphabetically first managed application at fire time, which
keeps canned plans independent of any specific mix). For ``node`` faults the
target is the failed server's index as a decimal string; for ``pdu`` and
``rack`` faults it is the failure domain's dotted tree path (``"2"``,
``"2.0"``). The per-server
:class:`~repro.faults.injector.FaultInjector` skips all three entirely -
``node`` specs are consumed by the cluster layer
(:func:`~repro.cluster.cluster.outages_from_fault_plan`) and the
failure-domain specs by the hierarchy layer
(:func:`~repro.hierarchy.tree.subtree_outages_from_fault_plan`) - so one
plan file can describe single-server substrate faults, cluster-level node
kills, and datacenter failure domains together.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import FaultError
from repro.schema import Validator

#: Validator used by every fault-plan loader: malformed input fails with a
#: single :class:`FaultError` naming the offending JSON path.
_VALID = Validator(FaultError)

#: Allowed (kind, mode) combinations, mirroring the table above.
FAULT_MODES: dict[str, tuple[str, ...]] = {
    "rapl": ("drop", "partial", "stale"),
    "telemetry": ("drop", "stale", "noise"),
    "battery": ("outage", "derate", "fade"),
    "app": ("crash", "hang"),
    "node": ("outage",),
    "pdu": ("outage",),
    "rack": ("outage",),
}

#: Kinds the per-server injector never handles itself (consumed by the
#: cluster / hierarchy layers, which convert them to outage windows).
SCOPED_KINDS = frozenset({"node", "pdu", "rack"})

#: Modes that fire once at ``start_s`` instead of spanning a window.
INSTANT_MODES = {("app", "crash"), ("battery", "fade")}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: Fault class (see :data:`FAULT_MODES`).
        mode: Sub-mode within the class.
        start_s: Simulation time the fault begins.
        duration_s: Window length; ignored (may be 0) for instantaneous
            modes (``app/crash``, ``battery/fade``).
        target: Application name for ``app`` faults; ``None`` resolves at
            fire time.
        magnitude: Mode-specific intensity - noise std in watts for
            ``telemetry/noise``, discharge scale for ``battery/derate``,
            capacity fraction lost for ``battery/fade``. Unused otherwise.
    """

    kind: str
    mode: str
    start_s: float
    duration_s: float = 0.0
    target: str | None = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_MODES:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; have {sorted(FAULT_MODES)}"
            )
        if self.mode not in FAULT_MODES[self.kind]:
            raise FaultError(
                f"unknown mode {self.mode!r} for kind {self.kind!r}; "
                f"have {FAULT_MODES[self.kind]}"
            )
        if self.start_s < 0:
            raise FaultError(f"fault start must be non-negative, got {self.start_s}")
        if self.duration_s < 0:
            raise FaultError(f"fault duration must be non-negative, got {self.duration_s}")
        if not self.instantaneous and self.duration_s == 0:
            raise FaultError(
                f"windowed fault {self.kind}/{self.mode} needs a positive duration"
            )
        if self.kind == "battery" and self.mode in ("derate", "fade"):
            if not 0.0 < self.magnitude < 1.0:
                raise FaultError(
                    f"battery/{self.mode} magnitude must be in (0, 1), "
                    f"got {self.magnitude}"
                )
        if self.kind == "telemetry" and self.mode == "noise" and self.magnitude <= 0:
            raise FaultError("telemetry/noise needs a positive magnitude (watts)")
        if self.kind == "node":
            if self.target is None or not self.target.isdigit():
                raise FaultError(
                    "node/outage target must be the failed server's index "
                    f"as a decimal string, got {self.target!r}"
                )
        if self.kind in ("pdu", "rack"):
            parts = self.target.split(".") if self.target else []
            if not parts or not all(p.isdigit() for p in parts):
                raise FaultError(
                    f"{self.kind}/outage target must be the failure domain's "
                    f"dotted tree path like '2' or '2.0', got {self.target!r}"
                )

    @property
    def instantaneous(self) -> bool:
        """Whether this fault fires once instead of spanning a window."""
        return (self.kind, self.mode) in INSTANT_MODES

    @property
    def end_s(self) -> float:
        """Exclusive end of the fault window (== start for instant faults)."""
        return self.start_s + (0.0 if self.instantaneous else self.duration_s)

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "mode": self.mode,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "target": self.target,
            "magnitude": self.magnitude,
        }
        return out

    @classmethod
    def from_dict(cls, data: dict, *, where: str = "fault spec") -> "FaultSpec":
        """Build a spec from a plain dict, validating field by field.

        Args:
            data: The raw mapping, e.g. one entry of a plan's ``faults``.
            where: JSON path prefix used in error messages, so a bad field in
                the third fault of a plan reports as ``faults[2].start_s``.
        """
        obj = _VALID.as_dict(data, where)
        kind = _VALID.choice(
            _VALID.require(obj, "kind", where), f"{where}.kind", tuple(FAULT_MODES)
        )
        mode = _VALID.choice(
            _VALID.require(obj, "mode", where), f"{where}.mode", FAULT_MODES[kind]
        )
        target = obj.get("target")
        if target is not None:
            target = _VALID.as_str(target, f"{where}.target")
        try:
            return cls(
                kind=kind,
                mode=mode,
                start_s=_VALID.as_number(
                    _VALID.require(obj, "start_s", where), f"{where}.start_s"
                ),
                duration_s=_VALID.as_number(
                    obj.get("duration_s", 0.0), f"{where}.duration_s"
                ),
                target=target,
                magnitude=_VALID.as_number(
                    obj.get("magnitude", 0.0), f"{where}.magnitude"
                ),
            )
        except FaultError as exc:
            # Semantic checks in __post_init__ do not know the JSON path; add it.
            message = str(exc)
            if not message.startswith(where):
                raise FaultError(f"{where}: {message}") from None
            raise


@dataclass(frozen=True)
class FaultPlan:
    """A complete, ordered schedule of faults for one run.

    Attributes:
        specs: The faults, kept sorted by ``(start_s, kind, mode)`` so two
            plans with the same content inject identically.
        seed: Seed for every stochastic fault effect (telemetry noise).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.specs, key=lambda s: (s.start_s, s.kind, s.mode, s.target or ""))
        )
        object.__setattr__(self, "specs", ordered)

    def __len__(self) -> int:
        return len(self.specs)

    def kinds(self) -> set[str]:
        """The fault classes this plan exercises."""
        return {spec.kind for spec in self.specs}

    # -------------------------------------------------------- serialization

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from None
        obj = _VALID.as_dict(data, "fault plan")
        items = _VALID.as_list(_VALID.require(obj, "faults", "fault plan"), "faults")
        specs = tuple(
            FaultSpec.from_dict(item, where=f"faults[{i}]")
            for i, item in enumerate(items)
        )
        return cls(specs=specs, seed=_VALID.as_int(obj.get("seed", 0), "seed"))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path!r}: {exc}") from None


def default_fault_plan(*, seed: int = 0) -> FaultPlan:
    """The acceptance plan: each fault class enabled once over ~50 s.

    The windows are staggered so every resilience mechanism is exercised in
    isolation before any overlap: an application hang (zero progress at full
    power), a stuck RAPL actuator, a wall-telemetry blackout, a battery
    outage mid-duty-cycle, and finally an unexpected crash.
    """
    return FaultPlan(
        specs=(
            FaultSpec(kind="app", mode="hang", start_s=6.0, duration_s=4.0),
            FaultSpec(kind="rapl", mode="drop", start_s=14.0, duration_s=4.0),
            FaultSpec(kind="telemetry", mode="drop", start_s=22.0, duration_s=3.0),
            FaultSpec(
                kind="telemetry", mode="noise", start_s=28.0, duration_s=3.0,
                magnitude=0.8,
            ),
            FaultSpec(kind="battery", mode="outage", start_s=34.0, duration_s=5.0),
            FaultSpec(kind="app", mode="crash", start_s=42.0),
        ),
        seed=seed,
    )
