"""Deterministic fault injection for the mediation substrate.

See :mod:`repro.faults.plan` for the declarative fault schedule and
:mod:`repro.faults.injector` for the machinery that applies it to a
:class:`~repro.server.server.SimulatedServer`. The resilience mechanisms
that *survive* these faults live with their subsystems (mediator,
coordinator, cluster); this package only breaks things, on schedule,
reproducibly.
"""

from repro.faults.injector import FaultInjector, FaultTransition
from repro.faults.plan import (
    FAULT_MODES,
    SCOPED_KINDS,
    FaultPlan,
    FaultSpec,
    default_fault_plan,
)

__all__ = [
    "FAULT_MODES",
    "SCOPED_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultTransition",
    "default_fault_plan",
]
