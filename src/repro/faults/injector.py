"""Fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into
substrate misbehaviour, one tick at a time.

The injector sits *between* the experiment clock and the server substrate.
Every mediator tick calls :meth:`FaultInjector.begin_tick` with the current
time; the injector compares it against each spec's window and

* installs/removes :class:`~repro.server.knobs.KnobController` hooks for
  RAPL actuation faults;
* flips the battery's availability/derate/fade state;
* toggles the heartbeat monitor's blackout for telemetry faults;
* marks application handles hung and reports crash victims (the mediator
  performs the actual forced E3 removal, since departure bookkeeping lives
  there);
* filters wall-power samples through :meth:`filter_wall_sample`.

It returns :class:`FaultTransition` descriptors for every window entered or
left so the mediator can journal matching
:class:`~repro.core.events.FaultEvent` / :class:`~repro.core.events.RecoveryEvent`
pairs. All stochastic effects draw from one ``numpy`` generator seeded from
the plan, so a (plan, seed) pair replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import SCOPED_KINDS, FaultPlan, FaultSpec
from repro.server.config import KnobSetting
from repro.server.server import SimulatedServer

try:  # ESD support is optional at the injector level
    from repro.esd.battery import LeadAcidBattery
except ImportError:  # pragma: no cover - esd is part of the package
    LeadAcidBattery = None  # type: ignore[assignment]


@dataclass(frozen=True)
class FaultTransition:
    """One fault window opening (``entered=True``) or closing.

    Attributes:
        spec: The fault whose window changed state.
        entered: ``True`` on activation, ``False`` on clearance.
        target: Resolved target name (specs with ``target=None`` get the
            name picked at fire time), or ``None`` for server-wide faults.
    """

    spec: FaultSpec
    entered: bool
    target: str | None = None


class FaultInjector:
    """Applies a fault plan against one server (and optionally its battery).

    Args:
        plan: The schedule to execute.
        server: The server whose substrate gets degraded.
        battery: The ESD instance targeted by battery faults; ``None`` when
            the run has no ESD (battery specs are then inert).
    """

    def __init__(
        self,
        plan: FaultPlan,
        server: SimulatedServer,
        *,
        battery: "LeadAcidBattery | None" = None,
    ) -> None:
        self._plan = plan
        self._server = server
        self._battery = battery
        self._rng = np.random.default_rng(plan.seed)
        self._active: dict[int, FaultSpec] = {}  # index in plan.specs -> spec
        self._fired: set[int] = set()  # instantaneous specs already applied
        self._resolved_targets: dict[int, str] = {}
        self._pre_fault_knobs: dict[str, KnobSetting] = {}  # stale readback
        self._last_wall_sample_w: float | None = None

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def active_kinds(self) -> set[str]:
        """Fault classes with at least one window currently open."""
        return {spec.kind for spec in self._active.values()}

    def telemetry_fault_active(self) -> bool:
        """Whether any telemetry fault window is open right now."""
        return "telemetry" in self.active_kinds()

    # ------------------------------------------------------------ persistence

    def state_dict(self) -> dict:
        """Snapshot the injector's progress through its plan.

        Specs are referenced by their index into ``plan.specs`` (the plan
        itself travels in the checkpoint's recipe), so the snapshot stays
        small and the restored injector points at the same frozen specs.
        """
        return {
            "active": sorted(self._active),
            "fired": sorted(self._fired),
            "resolved_targets": {
                str(idx): name for idx, name in self._resolved_targets.items()
            },
            "pre_fault_knobs": {
                app: knob.to_json() for app, knob in self._pre_fault_knobs.items()
            },
            "last_wall_sample_w": self._last_wall_sample_w,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Re-installs the knob-controller hooks to match the restored active
        windows - hooks are closures and cannot be serialized, but they are
        pure functions of the active fault set.
        """
        self._active = {int(idx): self._plan.specs[int(idx)] for idx in state["active"]}
        self._fired = {int(idx) for idx in state["fired"]}
        self._resolved_targets = {
            int(idx): name for idx, name in state["resolved_targets"].items()
        }
        self._pre_fault_knobs = {
            app: KnobSetting.from_json(raw)
            for app, raw in state["pre_fault_knobs"].items()
        }
        last = state["last_wall_sample_w"]
        self._last_wall_sample_w = None if last is None else float(last)
        self._rng.bit_generator.state = state["rng"]
        self._sync_hooks()

    # ---------------------------------------------------------------- ticking

    def begin_tick(self, now_s: float) -> tuple[list[str], list[FaultTransition]]:
        """Advance fault state to ``now_s`` (call once per mediator tick,
        *before* planning/coordination).

        Returns:
            ``(crashed, transitions)`` - the applications that must be
            force-departed this tick, and every fault window that opened or
            closed since the previous call.
        """
        crashed: list[str] = []
        transitions: list[FaultTransition] = []
        for idx, spec in enumerate(self._plan.specs):
            if spec.kind in SCOPED_KINDS:
                # Cluster- or hierarchy-scope fault: a whole server, PDU, or
                # rack dies. The per-server injector has no server *set* to
                # act on; the cluster and hierarchy layers convert these
                # specs into outage windows instead.
                continue
            if spec.instantaneous:
                if idx not in self._fired and now_s >= spec.start_s:
                    self._fired.add(idx)
                    target = self._fire_instant(idx, spec, crashed)
                    transitions.append(
                        FaultTransition(spec=spec, entered=True, target=target)
                    )
                continue
            inside = spec.start_s <= now_s < spec.end_s
            if inside and idx not in self._active:
                self._active[idx] = spec
                target = self._enter_window(idx, spec)
                transitions.append(
                    FaultTransition(spec=spec, entered=True, target=target)
                )
            elif not inside and idx in self._active:
                del self._active[idx]
                target = self._exit_window(idx, spec)
                transitions.append(
                    FaultTransition(spec=spec, entered=False, target=target)
                )
        self._sync_hooks()
        return crashed, transitions

    # ------------------------------------------------------------- telemetry

    def filter_wall_sample(self, true_w: float) -> tuple[float | None, bool]:
        """Pass one true wall-power reading through active telemetry faults.

        Returns:
            ``(value, fresh)``: the value the mediator's sensor reports
            (``None`` for a dropped sample) and whether it reflects the
            current tick. Stale samples repeat the last healthy value with
            ``fresh=False``; noisy samples are fresh but perturbed.
        """
        mode = self._telemetry_mode()
        if mode is None:
            self._last_wall_sample_w = true_w
            return true_w, True
        if mode == "drop":
            return None, False
        if mode == "stale":
            if self._last_wall_sample_w is None:
                return None, False
            return self._last_wall_sample_w, False
        # mode == "noise": seeded gaussian, truncated at zero like real
        # counter-difference estimates.
        spec = next(
            s for s in self._active.values()
            if s.kind == "telemetry" and s.mode == "noise"
        )
        noisy = max(0.0, true_w + float(self._rng.normal(0.0, spec.magnitude)))
        self._last_wall_sample_w = noisy
        return noisy, True

    def _telemetry_mode(self) -> str | None:
        """The most severe active telemetry mode (drop > stale > noise)."""
        modes = {s.mode for s in self._active.values() if s.kind == "telemetry"}
        for mode in ("drop", "stale", "noise"):
            if mode in modes:
                return mode
        return None

    # ------------------------------------------------------------- internals

    def _resolve_app(self, idx: int, spec: FaultSpec) -> str | None:
        """Pick (and remember) the application a spec targets."""
        if idx in self._resolved_targets:
            return self._resolved_targets[idx]
        if spec.target is not None:
            name = spec.target
        else:
            candidates = [
                app for app in self._server.applications()
                if not self._server.handle_of(app).completed
            ]
            if not candidates:
                return None
            name = candidates[0]
        self._resolved_targets[idx] = name
        return name

    def _fire_instant(self, idx: int, spec: FaultSpec, crashed: list[str]) -> str | None:
        if spec.kind == "app":  # crash
            victim = self._resolve_app(idx, spec)
            if victim is not None and victim in self._server.applications():
                crashed.append(victim)
            return victim
        # battery fade
        if self._battery is not None:
            self._battery.apply_capacity_fade(spec.magnitude)
        return None

    def _enter_window(self, idx: int, spec: FaultSpec) -> str | None:
        if spec.kind == "battery" and self._battery is not None:
            if spec.mode == "outage":
                self._battery.set_available(False)
            elif spec.mode == "derate":
                self._battery.derate_discharge(spec.magnitude)
        elif spec.kind == "app":  # hang
            victim = self._resolve_app(idx, spec)
            if victim is not None and victim in self._server.applications():
                self._server.handle_of(victim).hung = True
            return victim
        elif spec.kind == "telemetry":
            self._server.heartbeats.set_blackout(True)
        elif spec.kind == "rapl" and spec.mode == "stale":
            # Snapshot current knobs: readback will keep reporting these.
            knobs = self._server.knobs
            self._pre_fault_knobs = {
                app: knobs.knob_of(app) for app in knobs.attached()
            }
        return None

    def _exit_window(self, idx: int, spec: FaultSpec) -> str | None:
        if spec.kind == "battery" and self._battery is not None:
            if spec.mode == "outage":
                self._battery.set_available(True)
            elif spec.mode == "derate":
                self._battery.restore_discharge()
        elif spec.kind == "app":  # hang clears
            victim = self._resolved_targets.get(idx)
            if victim is not None and victim in self._server.applications():
                self._server.handle_of(victim).hung = False
            return victim
        elif spec.kind == "telemetry":
            if not any(
                s.kind == "telemetry" for s in self._active.values()
            ):
                self._server.heartbeats.set_blackout(False)
        elif spec.kind == "rapl" and spec.mode == "stale":
            self._pre_fault_knobs = {}
        return None

    def _sync_hooks(self) -> None:
        """Install or remove knob-controller hooks to match active faults."""
        knobs = self._server.knobs
        rapl_modes = {s.mode for s in self._active.values() if s.kind == "rapl"}
        if "drop" in rapl_modes:
            knobs.actuation_hook = lambda app, requested, current: None
        elif "partial" in rapl_modes:
            # Torn write: only the DVFS field lands; cores/DRAM keep their
            # previous values.
            knobs.actuation_hook = lambda app, requested, current: KnobSetting(
                requested.freq_ghz, current.cores, current.dram_power_w
            )
        else:
            knobs.actuation_hook = None
        if "stale" in rapl_modes:
            pre = self._pre_fault_knobs
            knobs.readback_hook = lambda app, true: pre.get(app, true)
        else:
            knobs.readback_hook = None
