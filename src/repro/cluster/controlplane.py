"""Cap distribution over a lossy network: epochs, leases, safe fallbacks.

The oracle :class:`~repro.cluster.cluster.ClusterSimulator` moves watts
between servers by fiat - the controller sees every node instantly and cap
commands arrive losslessly. This module is the production-shaped
replacement: a :class:`ClusterController` and per-node :class:`NodeAgent`\\ s
exchanging messages over a :class:`~repro.netsim.network.SimNetwork`, built
so that the defining invariant of distributed power capping holds *by
construction*:

    **The sum of effective node caps never exceeds the cluster budget,
    no matter which messages are lost, delayed, duplicated, or cut off.**

The construction (full math in DESIGN.md section 10):

* Every node permanently owns a guard-banded **safe cap** ``s`` - the even
  budget share shrunk by ``safe_guard_band`` and quantized down. Safe caps
  are unconditional: a node that hears nothing may always draw up to ``s``.
  The remainder ``E = B - n*s`` is the **extras pool** the controller
  distributes dynamically.
* Extras move only via **lease-based grants**: an epoch-numbered, idempotent
  ``SetCap`` carrying an *absolute* expiry step. A node that misses renewal
  falls back to its safe cap on its own clock; the controller counts every
  grant as outstanding until it is superseded by an acknowledged later epoch
  or its lease expires - whichever the controller can actually prove.
* **Epochs** are globally monotone. A node accepts a command only with an
  epoch at or above its own, so a delayed duplicate of an old grant can
  never resurrect a revoked cap; stale commands are rejected (and the
  rejection reported, which doubles as anti-entropy).
* **Heartbeats** replace oracle outage knowledge: the controller infers a
  node's death from missed heartbeats, stops issuing to it, and reclaims
  its extras only once their leases have provably expired. A heartbeat from
  a suspect node reintegrates it; a heartbeat reporting a stale epoch after
  a partition heal triggers reconciliation (the current target is reissued
  under a fresh epoch).
* Commands are retried with the shared
  :class:`~repro.util.retry.RetryPolicy` - capped exponential backoff plus
  seeded jitter, the same policy the single-server actuation retrier uses.

Everything is deterministic given the network seed, so control-plane traces
hash stably like every other sim event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import NetworkError, RetryExhaustedError, SimulationError
from repro.netsim.network import CONTROLLER, NetConfig, SimNetwork
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.util.retry import RetryPolicy

__all__ = [
    "CapAck",
    "ClusterController",
    "ControlPlaneConfig",
    "ControlPlaneOutcome",
    "Heartbeat",
    "NodeAgent",
    "SetCapCmd",
    "run_control_plane",
]

#: Tolerance for cap-budget comparisons (quantization keeps values exact,
#: but float sums deserve an epsilon).
_EPS = 1e-6


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Protocol tunables, all in trace steps.

    Attributes:
        lease_steps: Lifetime of a grant; a node falls back to its safe cap
            this many steps after the grant was issued unless renewed.
        renew_before_steps: The controller reissues a live grant when its
            lease has this many steps (or fewer) left.
        heartbeat_every_steps: Per-node heartbeat period (staggered by node
            id so the fabric sees a smooth stream).
        suspect_after_steps: Silence (no heartbeat or ack) before the
            controller declares a node suspect.
        safe_guard_band: Fraction of the even budget share withheld from
            safe caps and pooled for dynamic grants.
        retry: RPC retry/backoff policy (jitter decorrelates the per-node
            retransmit clocks; draws come from the controller's seeded rng).
    """

    lease_steps: int = 10
    renew_before_steps: int = 4
    heartbeat_every_steps: int = 2
    suspect_after_steps: int = 5
    safe_guard_band: float = 0.10
    retry: RetryPolicy = RetryPolicy(
        base_ticks=1, max_backoff_ticks=8, max_attempts=5, jitter_ticks=1
    )

    def __post_init__(self) -> None:
        if self.lease_steps < 2:
            raise NetworkError("lease_steps must be >= 2")
        if not 1 <= self.renew_before_steps < self.lease_steps:
            raise NetworkError(
                "renew_before_steps must be >= 1 and below lease_steps"
            )
        if self.heartbeat_every_steps < 1:
            raise NetworkError("heartbeat_every_steps must be >= 1")
        if self.suspect_after_steps <= self.heartbeat_every_steps:
            raise NetworkError(
                "suspect_after_steps must exceed heartbeat_every_steps "
                "(one late heartbeat is not an outage)"
            )
        if not 0.0 < self.safe_guard_band < 1.0:
            raise NetworkError("safe_guard_band must be in (0, 1)")


# ------------------------------------------------------------------ messages


@dataclass(frozen=True)
class SetCapCmd:
    """Controller -> node: hold ``extra_w`` above your safe cap until the
    (absolute) lease expiry step. Idempotent: re-applying the same epoch is
    a no-op because the expiry is absolute, not relative."""

    node: int
    epoch: int
    extra_w: float
    lease_expiry_step: int


@dataclass(frozen=True)
class CapAck:
    """Node -> controller: my state after processing your command.

    ``rejected`` marks a stale-epoch command; the carried state is then the
    node's *current* grant, which gives the controller the reconciliation
    evidence for free.
    """

    node: int
    epoch: int
    extra_w: float
    lease_expiry_step: int
    rejected: bool = False


@dataclass(frozen=True)
class Heartbeat:
    """Node -> controller: I am alive, and this is the grant I hold.

    ``demand_w`` is upward telemetry: how many watts of offered load the
    sender (or, for a hierarchy's interior node, its whole subtree)
    currently wants. It is advisory - safety never depends on it - and
    defaults to 0 so the flat single-level protocol is unchanged.
    """

    node: int
    epoch: int
    extra_w: float
    lease_expiry_step: int
    demand_w: float = 0.0


# ---------------------------------------------------------------- node agent


class NodeAgent:
    """One server's cap-enforcement endpoint.

    The agent is deliberately tiny: it accepts the highest-epoch grant it
    has seen, enforces the lease expiry on its own clock, answers every
    command with its resulting state, and heartbeats. All the hard
    decisions live in the controller; the agent only has to be *safe*,
    which it is even when it hears nothing at all (safe-cap fallback).
    """

    def __init__(
        self,
        node_id: int,
        *,
        safe_cap_w: float,
        rated_cap_w: float,
        config: ControlPlaneConfig,
        trace_bus: TraceBus = NULL_TRACE_BUS,
        metrics: MetricsRegistry | None = None,
        scope: str = "",
    ) -> None:
        self.node_id = node_id
        self.safe_cap_w = safe_cap_w
        self.rated_cap_w = rated_cap_w
        self._config = config
        self._trace = trace_bus
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._scope = scope
        self.up = True
        #: Highest epoch ever accepted (survives outages: the epoch counter
        #: is journaled to the node's local store, PR 2 style).
        self.epoch = 0
        self.extra_w = 0.0
        self.lease_expiry_step = 0
        #: Advisory upward telemetry carried in heartbeats (a hierarchy's
        #: interior node reports its subtree's aggregate want here).
        self.demand_w = 0.0

    def _payload(self, payload: dict) -> dict:
        """Label trace payloads with the mediation scope when one is set.

        The flat single-level plane never sets a scope, so its payloads -
        and therefore its trace hashes - are byte-identical to before.
        """
        if self._scope:
            payload["scope"] = self._scope
        return payload

    def live_extra_w(self, step: int) -> float:
        """The granted extra still in force at ``step`` (0 past the lease)."""
        return self.extra_w if step < self.lease_expiry_step else 0.0

    def effective_cap_w(self, step: int) -> float:
        """The cap this node enforces at ``step``, up or not."""
        return min(self.rated_cap_w, self.safe_cap_w + self.live_extra_w(step))

    def state_dict(self) -> dict:
        """The agent's journaled state (PR 2 codec convention)."""
        return {
            "epoch": self.epoch,
            "extra_w": self.extra_w,
            "lease_expiry_step": self.lease_expiry_step,
            "up": self.up,
            "demand_w": self.demand_w,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self.epoch = int(state["epoch"])
        self.extra_w = float(state["extra_w"])
        self.lease_expiry_step = int(state["lease_expiry_step"])
        self.up = bool(state["up"])
        self.demand_w = float(state.get("demand_w", 0.0))

    def _accept(self, message: SetCapCmd, step: int, network: SimNetwork) -> None:
        """Adopt a current-or-newer command and ack the resulting state.

        Split out of :meth:`step` so a hierarchy's interior agent can defer
        *shrinks* while its own children still hold leases backed by the
        watts being taken away; a leaf applies everything immediately.
        """
        self.epoch = message.epoch
        self.extra_w = message.extra_w
        self.lease_expiry_step = message.lease_expiry_step
        network.send(
            self.node_id,
            CONTROLLER,
            CapAck(
                node=self.node_id,
                epoch=self.epoch,
                extra_w=self.extra_w,
                lease_expiry_step=self.lease_expiry_step,
            ),
            step,
        )

    def _lease_clock(self, step: int) -> None:
        """Expire the held grant on the node's own clock."""
        if self.extra_w > 0 and step >= self.lease_expiry_step:
            # Missed renewal: fall back to the guard-banded safe cap.
            self._metrics.counter("controlplane.lease_expiries").inc()
            self._trace.emit(
                "cp-lease-expired",
                self._payload(
                    {
                        "node": self.node_id,
                        "epoch": self.epoch,
                        "lost_extra_w": self.extra_w,
                        "step": step,
                    }
                ),
            )
            self.extra_w = 0.0

    def step(self, step: int, network: SimNetwork) -> None:
        """Process one step: inbox, lease clock, heartbeat."""
        if not self.up:
            # A crashed node loses its in-flight inbox; the lease keeps
            # counting down on the absolute clock regardless.
            network.deliver(self.node_id, step)
            return
        for _, message in network.deliver(self.node_id, step):
            if not isinstance(message, SetCapCmd):
                continue
            if message.epoch < self.epoch:
                self._metrics.counter("controlplane.epoch_rejections").inc()
                self._trace.emit(
                    "cp-epoch-reject",
                    self._payload(
                        {
                            "node": self.node_id,
                            "stale_epoch": message.epoch,
                            "current_epoch": self.epoch,
                            "step": step,
                        }
                    ),
                )
                network.send(
                    self.node_id,
                    CONTROLLER,
                    CapAck(
                        node=self.node_id,
                        epoch=self.epoch,
                        extra_w=self.live_extra_w(step),
                        lease_expiry_step=self.lease_expiry_step,
                        rejected=True,
                    ),
                    step,
                )
                continue
            self._accept(message, step, network)
        self._lease_clock(step)
        if (step + self.node_id) % self._config.heartbeat_every_steps == 0:
            network.send(
                self.node_id,
                CONTROLLER,
                Heartbeat(
                    node=self.node_id,
                    epoch=self.epoch,
                    extra_w=self.live_extra_w(step),
                    lease_expiry_step=self.lease_expiry_step,
                    demand_w=self.demand_w,
                ),
                step,
            )


# ---------------------------------------------------------------- controller


@dataclass(frozen=True)
class _Grant:
    epoch: int
    extra_w: float
    expiry_step: int


@dataclass
class _PendingRpc:
    grant: _Grant
    attempts: int
    next_retry_step: int
    #: Step the first send happened, so a deadline-carrying RetryPolicy can
    #: bound the whole sequence, not just the attempt count.
    first_step: int = 0


class ClusterController:
    """Budget-safe cap distribution over an unreliable fabric.

    Args:
        n_nodes: Fleet size.
        budget_w: The cluster budget ``B`` (the shave ceiling).
        quantum_w: Per-node cap grid; every safe cap and grant is floored
            to a multiple of it, so the per-node cap values the evaluator
            sees form a small finite set.
        rated_cap_w: A node's physical maximum (grants are advisory above
            it; the effective cap clamps).
        config: Protocol tunables.
        seed: Seed for the retry-jitter rng.
        safe_cap_w: Override the computed guard-banded safe cap (a budget
            tree pins every level's safe tier statically so the fallback
            waterfall composes; ``None`` keeps the flat formula).
        scope: Optional label added to trace payloads so events from many
            stacked control planes stay distinguishable. Empty (the flat
            default) adds nothing, keeping historical trace hashes.
    """

    def __init__(
        self,
        n_nodes: int,
        budget_w: float,
        *,
        quantum_w: float,
        rated_cap_w: float,
        config: ControlPlaneConfig,
        seed: int = 0,
        trace_bus: TraceBus = NULL_TRACE_BUS,
        metrics: MetricsRegistry | None = None,
        safe_cap_w: float | None = None,
        scope: str = "",
    ) -> None:
        if n_nodes < 1:
            raise NetworkError("controller needs at least one node")
        if budget_w <= 0:
            raise NetworkError("cluster budget must be positive")
        if quantum_w <= 0:
            raise NetworkError("cap quantum must be positive")
        self._n = n_nodes
        self.budget_w = budget_w
        self._quantum_w = quantum_w
        self._rated_cap_w = rated_cap_w
        self._config = config
        self._trace = trace_bus
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._scope = scope
        self._rng = np.random.default_rng(seed)
        if safe_cap_w is None:
            safe_cap_w = self._quantize(
                (1.0 - config.safe_guard_band) * budget_w / n_nodes
            )
        self.safe_cap_w = safe_cap_w
        if self.safe_cap_w <= 0:
            raise NetworkError(
                f"budget {budget_w} W over {n_nodes} nodes leaves no safe cap "
                f"at quantum {quantum_w} W"
            )
        #: What the controller may hand out dynamically *unconditionally*
        #: (its own budget minus the children's unconditional safe tier).
        self.extras_pool_w = budget_w - n_nodes * self.safe_cap_w
        if self.extras_pool_w < -_EPS:
            raise NetworkError(
                f"safe caps {n_nodes} x {self.safe_cap_w} W exceed the "
                f"budget {budget_w} W"
            )
        #: Leased headroom from upstream (a budget tree's delegation path):
        #: spendable only until its expiry, never part of the safe tier.
        self._bonus_w = 0.0
        self._bonus_expiry_step = 0
        self._has_bonus = False
        self._hold_until = 0
        self._epoch = 0
        self._grants: list[dict[int, _Grant]] = [dict() for _ in range(n_nodes)]
        self._issued: list[_Grant | None] = [None] * n_nodes
        self._pending: list[_PendingRpc | None] = [None] * n_nodes
        self._reported_epoch = [0] * n_nodes
        self._last_heard = [0] * n_nodes
        self._suspect = [False] * n_nodes
        self._reconcile = [False] * n_nodes
        self._reported_demand = [0.0] * n_nodes

    # ------------------------------------------------------------- inspection

    def _quantize(self, value_w: float) -> float:
        return max(0.0, float(np.floor(value_w / self._quantum_w)) * self._quantum_w)

    def _payload(self, payload: dict) -> dict:
        """Label trace payloads with the mediation scope when one is set."""
        if self._scope:
            payload["scope"] = self._scope
        return payload

    def outstanding_w(self, node: int, step: int) -> float:
        """The extra the controller must assume ``node`` may still enforce."""
        live = [g.extra_w for g in self._grants[node].values() if g.expiry_step > step]
        return max(live, default=0.0)

    def total_outstanding_w(self, step: int) -> float:
        """Sum of per-node outstanding extras (the whole level's exposure)."""
        return float(
            sum(self.outstanding_w(node, step) for node in range(self._n))
        )

    def issued_epoch(self, node: int) -> int:
        grant = self._issued[node]
        return 0 if grant is None else grant.epoch

    def in_safe_hold(self, step: int) -> bool:
        """Whether the controller is still holding after a stale restore.

        While held, the outstanding accounting may UNDER-count reality
        (the dead incarnation's forgotten grants are still live out
        there), so callers must not treat it as an upper bound until the
        hold expires.
        """
        return step < self._hold_until

    def issued_extra_w(self, node: int) -> float:
        grant = self._issued[node]
        return 0.0 if grant is None else grant.extra_w

    def is_suspect(self, node: int) -> bool:
        return self._suspect[node]

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def n_nodes(self) -> int:
        return self._n

    def reported_demand_w(self, node: int) -> float:
        """Last heartbeat-reported demand for ``node`` (advisory)."""
        return self._reported_demand[node]

    def total_reported_demand_w(self) -> float:
        """Aggregate heartbeat-reported demand across the fleet (advisory)."""
        return float(sum(self._reported_demand))

    # ----------------------------------------------------------- bonus lease

    def bonus_w(self, step: int) -> float:
        """The upstream-leased headroom still live at ``step``."""
        if self._has_bonus and step < self._bonus_expiry_step:
            return self._bonus_w
        return 0.0

    def set_bonus(self, extra_w: float, expiry_step: int) -> None:
        """Adopt leased headroom from upstream.

        Grants that dip into this bonus get their lease expiry clamped to
        the bonus expiry, so when the upstream lease runs out every watt
        issued against it is provably back - the level's outstanding total
        collapses to its unconditional ``extras_pool_w`` (full argument in
        DESIGN.md section 14).
        """
        if extra_w < 0:
            raise NetworkError("bonus extra_w must be non-negative")
        self._bonus_w = extra_w
        self._bonus_expiry_step = expiry_step
        self._has_bonus = True

    # ----------------------------------------------------- crash/restart path

    def state_dict(self) -> dict:
        """Snapshot for the PR 2 checkpoint codecs (restores bit-exactly)."""
        return {
            "epoch": self._epoch,
            "grants": [
                {
                    str(e): {
                        "epoch": g.epoch,
                        "extra_w": g.extra_w,
                        "expiry_step": g.expiry_step,
                    }
                    for e, g in grants.items()
                }
                for grants in self._grants
            ],
            "issued": [
                None
                if g is None
                else {
                    "epoch": g.epoch,
                    "extra_w": g.extra_w,
                    "expiry_step": g.expiry_step,
                }
                for g in self._issued
            ],
            "pending": [
                None
                if p is None
                else {
                    "grant": {
                        "epoch": p.grant.epoch,
                        "extra_w": p.grant.extra_w,
                        "expiry_step": p.grant.expiry_step,
                    },
                    "attempts": p.attempts,
                    "next_retry_step": p.next_retry_step,
                    "first_step": p.first_step,
                }
                for p in self._pending
            ],
            "reported_epoch": list(self._reported_epoch),
            "last_heard": list(self._last_heard),
            "suspect": list(self._suspect),
            "reconcile": list(self._reconcile),
            "reported_demand": list(self._reported_demand),
            "bonus": {
                "extra_w": self._bonus_w,
                "expiry_step": self._bonus_expiry_step,
                "has_bonus": self._has_bonus,
            },
            "hold_until": self._hold_until,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""

        def _grant(doc: dict) -> _Grant:
            return _Grant(
                epoch=int(doc["epoch"]),
                extra_w=float(doc["extra_w"]),
                expiry_step=int(doc["expiry_step"]),
            )

        self._epoch = int(state["epoch"])
        self._grants = [
            {int(e): _grant(g) for e, g in grants.items()}
            for grants in state["grants"]
        ]
        self._issued = [
            None if g is None else _grant(g) for g in state["issued"]
        ]
        self._pending = [
            None
            if p is None
            else _PendingRpc(
                grant=_grant(p["grant"]),
                attempts=int(p["attempts"]),
                next_retry_step=int(p["next_retry_step"]),
                first_step=int(p.get("first_step", 0)),
            )
            for p in state["pending"]
        ]
        self._reported_epoch = [int(e) for e in state["reported_epoch"]]
        self._last_heard = [int(s) for s in state["last_heard"]]
        self._suspect = [bool(s) for s in state["suspect"]]
        self._reconcile = [bool(r) for r in state["reconcile"]]
        self._reported_demand = [float(d) for d in state["reported_demand"]]
        bonus = state["bonus"]
        self._bonus_w = float(bonus["extra_w"])
        self._bonus_expiry_step = int(bonus["expiry_step"])
        self._has_bonus = bool(bonus["has_bonus"])
        self._hold_until = int(state["hold_until"])
        self._rng.bit_generator.state = state["rng"]

    def restart(self, step: int, *, epochs_to_skip: int = 0) -> None:
        """Enter the safe-hold posture after restoring a stale checkpoint.

        A crashed-and-restored controller may have issued grants *after*
        the checkpoint it came back from; those are real leases it no
        longer remembers. Three defenses make the restored accounting a
        superset of reality again within one lease:

        * the epoch counter jumps past anything the dead incarnation could
          have issued (``epochs_to_skip``, an upper bound the supervisor
          computes from the checkpoint age), so no epoch is ever reused;
        * issuance is suspended for ``lease_steps`` (the hold) - every
          forgotten grant either expires in that window or shows up in a
          heartbeat;
        * during the hold, heartbeat-reported live grants the controller
          does not know are adopted into the outstanding accounting
          (see :meth:`_process_inbox`).

        In-flight RPCs died with the process, so pending slots are cleared;
        failure detection restarts from a fresh hearing at ``step``.
        """
        if epochs_to_skip < 0:
            raise NetworkError("epochs_to_skip must be non-negative")
        self._epoch += epochs_to_skip
        self._hold_until = step + self._config.lease_steps
        self._pending = [None] * self._n
        self._reconcile = [False] * self._n
        self._last_heard = [step] * self._n
        self._metrics.counter("controlplane.restarts").inc()
        self._trace.emit(
            "cp-restart",
            self._payload(
                {
                    "step": step,
                    "hold_until": self._hold_until,
                    "epoch": self._epoch,
                }
            ),
        )

    # ------------------------------------------------------------------ step

    def step(self, step: int, network: SimNetwork, loaded: frozenset[int]) -> None:
        """Run one controller step: inbox, detection, distribution, retries."""
        self._process_inbox(step, network)
        self._prune_expired(step)
        self._detect_failures(step)
        issued_now = self._distribute(step, network, loaded)
        self._retry_pending(step, network, issued_now)

    def _process_inbox(self, step: int, network: SimNetwork) -> None:
        for _, message in network.deliver(CONTROLLER, step):
            if not isinstance(message, (CapAck, Heartbeat)):
                continue
            node = message.node
            self._last_heard[node] = step
            if self._suspect[node]:
                self._suspect[node] = False
                self._metrics.counter("controlplane.reintegrations").inc()
                self._trace.emit(
                    "cp-reintegrate", self._payload({"node": node, "step": step})
                )
            if isinstance(message, Heartbeat):
                self._reported_demand[node] = message.demand_w
                if (
                    step < self._hold_until
                    and message.extra_w > _EPS
                    and message.lease_expiry_step > step
                    and message.epoch >= self._reported_epoch[node]
                    and message.epoch not in self._grants[node]
                ):
                    # Safe-hold adoption: the node enforces a live grant a
                    # stale checkpoint never heard of. Count it outstanding
                    # (conservative - over-counting only withholds extras)
                    # and keep the epoch counter above it.
                    self._grants[node][message.epoch] = _Grant(
                        epoch=message.epoch,
                        extra_w=message.extra_w,
                        expiry_step=message.lease_expiry_step,
                    )
                    if message.epoch > self.issued_epoch(node):
                        self._issued[node] = self._grants[node][message.epoch]
                    self._epoch = max(self._epoch, message.epoch)
                    self._metrics.counter("controlplane.adoptions").inc()
            if isinstance(message, CapAck):
                self._metrics.counter("controlplane.acks").inc()
                self._trace.emit(
                    "cp-ack",
                    self._payload(
                        {
                            "node": node,
                            "epoch": message.epoch,
                            "rejected": message.rejected,
                            "step": step,
                        }
                    ),
                )
            if message.epoch > self._reported_epoch[node]:
                self._reported_epoch[node] = message.epoch
            # The node will reject everything below its reported epoch
            # forever, so those grants can never come back to life.
            reported = self._reported_epoch[node]
            grants = self._grants[node]
            for old in [e for e in grants if e < reported]:
                del grants[old]
            pending = self._pending[node]
            if pending is not None and reported >= pending.grant.epoch:
                self._pending[node] = None
            issued = self._issued[node]
            if (
                issued is not None
                and reported < issued.epoch
                and self._pending[node] is None
            ):
                # The node missed our latest command and nothing is in
                # flight for it any more (retries exhausted during a
                # partition, say): reissue on the next distribution pass.
                # Judged on the *highest* epoch the node ever reported, not
                # this message's - a delayed duplicate of an old ack is not
                # evidence that a newer grant was lost.
                self._reconcile[node] = True

    def _prune_expired(self, step: int) -> None:
        for node in range(self._n):
            grants = self._grants[node]
            for epoch in [e for e, g in grants.items() if g.expiry_step <= step]:
                del grants[epoch]

    def _detect_failures(self, step: int) -> None:
        for node in range(self._n):
            if self._suspect[node]:
                continue
            if step - self._last_heard[node] > self._config.suspect_after_steps:
                self._suspect[node] = True
                self._pending[node] = None  # no point retrying into the void
                self._reconcile[node] = False
                self._metrics.counter("controlplane.suspects").inc()
                self._trace.emit(
                    "cp-suspect",
                    self._payload(
                        {
                            "node": node,
                            "silent_steps": step - self._last_heard[node],
                            "step": step,
                        }
                    ),
                )

    def _distribute(
        self, step: int, network: SimNetwork, loaded: frozenset[int]
    ) -> set[int]:
        """Issue new grants toward the even-share target, pool permitting."""
        if step < self._hold_until:
            # Safe-hold after a restart: no issuance until every grant the
            # dead incarnation could have issued has expired or been
            # adopted from heartbeats. Nodes whose leases lapse meanwhile
            # fall back to their safe caps - degraded, never unsafe.
            return set()
        healthy = [i for i in sorted(loaded) if not self._suspect[i]]
        outstanding = [self.outstanding_w(i, step) for i in range(self._n)]
        total_outstanding = sum(outstanding)
        pool = self.extras_pool_w + self.bonus_w(step)
        free = pool - total_outstanding
        share = self._quantize(pool / len(healthy)) if healthy else 0.0
        issued_now: set[int] = set()
        for node in range(self._n):
            if self._suspect[node]:
                continue
            target = share if node in healthy else 0.0
            grantable = target
            if target > outstanding[node] + _EPS:
                room = max(0.0, free)
                grantable = self._quantize(
                    outstanding[node] + min(target - outstanding[node], room)
                )
            issued = self._issued[node]
            issued_extra = 0.0 if issued is None else issued.extra_w
            changed = abs(grantable - issued_extra) > _EPS
            if issued is None and grantable <= _EPS and not self._reconcile[node]:
                continue  # nothing granted, nothing wanted
            renewal_due = (
                issued is not None
                and issued.extra_w > _EPS
                and not changed
                and issued.expiry_step - step <= self._config.renew_before_steps
            )
            if not (changed or renewal_due or self._reconcile[node]):
                continue
            reconciled = self._reconcile[node]
            self._reconcile[node] = False
            growth = max(0.0, grantable - outstanding[node])
            expiry_clamp = None
            if (
                self._has_bonus
                and total_outstanding + growth > self.extras_pool_w + _EPS
            ):
                # This grant dips into the upstream bonus: its lease may
                # not outlive the lease backing it.
                expiry_clamp = self._bonus_expiry_step
            grant = self._issue(
                step, network, node, grantable, expiry_clamp=expiry_clamp
            )
            issued_now.add(node)
            if reconciled:
                self._metrics.counter("controlplane.reconciliations").inc()
                self._trace.emit(
                    "cp-reconcile",
                    self._payload(
                        {"node": node, "epoch": grant.epoch, "step": step}
                    ),
                )
            free -= growth
            total_outstanding += growth
            outstanding[node] = max(outstanding[node], grantable)
        return issued_now

    def _issue(
        self,
        step: int,
        network: SimNetwork,
        node: int,
        extra_w: float,
        *,
        expiry_clamp: int | None = None,
    ) -> _Grant:
        self._epoch += 1
        expiry = step + self._config.lease_steps
        if expiry_clamp is not None:
            expiry = min(expiry, expiry_clamp)
        grant = _Grant(
            epoch=self._epoch,
            extra_w=extra_w,
            expiry_step=expiry,
        )
        if extra_w > _EPS:
            self._grants[node][grant.epoch] = grant
        self._issued[node] = grant
        self._pending[node] = _PendingRpc(
            grant=grant,
            attempts=1,
            next_retry_step=step
            + self._config.retry.backoff_ticks(1, self._rng),
            first_step=step,
        )
        self._send(step, network, node, grant, attempt=1)
        return grant

    def _send(
        self, step: int, network: SimNetwork, node: int, grant: _Grant, attempt: int
    ) -> None:
        self._metrics.counter("controlplane.commands").inc()
        if attempt > 1:
            self._metrics.counter("controlplane.retries").inc()
        self._trace.emit(
            "cp-command",
            self._payload(
                {
                    "node": node,
                    "epoch": grant.epoch,
                    "extra_w": grant.extra_w,
                    "lease_expiry_step": grant.expiry_step,
                    "attempt": attempt,
                    "step": step,
                }
            ),
        )
        network.send(
            CONTROLLER,
            node,
            SetCapCmd(
                node=node,
                epoch=grant.epoch,
                extra_w=grant.extra_w,
                lease_expiry_step=grant.expiry_step,
            ),
            step,
        )

    def _retry_pending(
        self, step: int, network: SimNetwork, issued_now: set[int]
    ) -> None:
        for node in range(self._n):
            if node in issued_now or self._suspect[node]:
                continue
            pending = self._pending[node]
            if pending is None or step < pending.next_retry_step:
                continue
            elapsed = step - pending.first_step
            try:
                self._config.retry.require(
                    pending.attempts, elapsed, what=f"SetCap rpc to node {node}"
                )
            except RetryExhaustedError:
                # Park: anti-entropy (heartbeat evidence) will reissue.
                self._pending[node] = None
                self._metrics.counter("controlplane.rpc_exhausted").inc()
                self._metrics.counter("retry.exhausted").inc()
                continue
            pending.attempts += 1
            pending.next_retry_step = step + self._config.retry.backoff_ticks(
                pending.attempts, self._rng, elapsed_ticks=elapsed
            )
            self._send(step, network, node, pending.grant, attempt=pending.attempts)


# ------------------------------------------------------------------ run loop


@dataclass(frozen=True)
class ControlPlaneOutcome:
    """One control-plane replay over a load/outage schedule.

    Attributes:
        caps_w: Per step, per node: the cap in force at that node (lease
            math applies whether or not the node is up - a rebooting node
            re-enforces its persisted grant until the lease expires).
        budget_w: The cluster budget the run distributed.
        safe_cap_w: The per-node unconditional fallback cap.
        max_total_cap_w: Largest observed ``sum(caps_w[t])`` - always at or
            below ``budget_w`` (checked every step; violation raises).
        node_epochs: Final accepted epoch per node.
        final_epoch: The controller's epoch counter at the end.
        zombie_free: Whether every node's final live extra is covered by a
            grant the controller still accounts for.
        net_stats: The network's message accounting.
    """

    caps_w: tuple[tuple[float, ...], ...]
    budget_w: float
    safe_cap_w: float
    max_total_cap_w: float
    node_epochs: tuple[int, ...]
    final_epoch: int
    zombie_free: bool
    net_stats: dict[str, int]


def run_control_plane(
    *,
    n_nodes: int,
    budget_w: float,
    loaded_counts: Sequence[int],
    down_sets: Sequence[frozenset[int]] | None = None,
    net: NetConfig,
    config: ControlPlaneConfig | None = None,
    quantum_w: float = 2.0,
    rated_cap_w: float | None = None,
    drain_steps: int = 0,
    trace_bus: TraceBus = NULL_TRACE_BUS,
    metrics: MetricsRegistry | None = None,
) -> ControlPlaneOutcome:
    """Replay the control plane over a load/outage schedule.

    Args:
        loaded_counts: Offered load per step (the first ``k`` nodes are
            loaded, matching the cluster simulator's inversion).
        down_sets: Nodes dead at each step (aligned with ``loaded_counts``);
            dead nodes lose their inbox and stay silent.
        net: The network behaviour (latency/loss/duplication/partitions).
        config: Protocol tunables.
        quantum_w: Per-node cap grid.
        rated_cap_w: Per-node physical cap clamp (default: no clamp).
        drain_steps: Extra steps appended after the schedule with the final
            load and no outages, letting leases renew and retries settle
            (the caps of drain steps are not part of ``caps_w``).
        trace_bus / metrics: Observability sinks shared with the caller.

    Raises:
        SimulationError: if the aggregate-cap invariant is ever violated
            (a protocol bug by definition - it cannot happen).
        NetworkError: for inconsistent schedule shapes.
    """
    if config is None:
        config = ControlPlaneConfig()
    steps = len(loaded_counts)
    if steps == 0:
        raise NetworkError("control-plane schedule needs at least one step")
    if any(not 0 <= k <= n_nodes for k in loaded_counts):
        raise NetworkError("loaded_counts entries must be in [0, n_nodes]")
    if down_sets is None:
        down_sets = [frozenset()] * steps
    if len(down_sets) != steps:
        raise NetworkError(
            f"down_sets has {len(down_sets)} entries for {steps} steps"
        )
    registry = metrics if metrics is not None else MetricsRegistry()
    network = SimNetwork(net, n_nodes)
    controller = ClusterController(
        n_nodes,
        budget_w,
        quantum_w=quantum_w,
        rated_cap_w=float("inf") if rated_cap_w is None else rated_cap_w,
        config=config,
        seed=net.seed,
        trace_bus=trace_bus,
        metrics=registry,
    )
    agents = [
        NodeAgent(
            i,
            safe_cap_w=controller.safe_cap_w,
            rated_cap_w=float("inf") if rated_cap_w is None else rated_cap_w,
            config=config,
            trace_bus=trace_bus,
            metrics=registry,
        )
        for i in range(n_nodes)
    ]

    caps: list[tuple[float, ...]] = []
    max_total = 0.0
    last_loaded = frozenset(range(loaded_counts[-1]))
    for step in range(steps + drain_steps):
        if step < steps:
            loaded = frozenset(range(loaded_counts[step]))
            down = down_sets[step]
        else:
            loaded, down = last_loaded, frozenset()
        for agent in agents:
            agent.up = agent.node_id not in down
            agent.step(step, network)
        controller.step(step, network, loaded)
        row = tuple(agent.effective_cap_w(step) for agent in agents)
        total = sum(row)
        max_total = max(max_total, total)
        if total > budget_w + _EPS:
            raise SimulationError(
                f"control-plane invariant violated at step {step}: "
                f"sum of node caps {total:.6f} W exceeds budget "
                f"{budget_w:.6f} W"
            )
        if step < steps:
            caps.append(row)

    final_step = steps + drain_steps - 1
    zombie_free = all(
        agent.live_extra_w(final_step)
        <= controller.outstanding_w(agent.node_id, final_step) + _EPS
        for agent in agents
    )
    for key, value in network.stats.to_dict().items():
        registry.counter(f"netsim.{key}").inc(value)
    return ControlPlaneOutcome(
        caps_w=tuple(caps),
        budget_w=budget_w,
        safe_cap_w=controller.safe_cap_w,
        max_total_cap_w=max_total,
        node_epochs=tuple(agent.epoch for agent in agents),
        final_epoch=controller.epoch,
        zombie_free=zombie_free,
        net_stats=network.stats.to_dict(),
    )
