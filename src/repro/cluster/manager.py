"""Cluster-manager policy evaluators.

The Fig. 12 experiment replays a day-long cap series. Simulating every
server tick-by-tick for 24 hours is wasteful: within one cap *bin* (the cap
quantized to a grid) every policy reaches a steady state, so the cluster
simulator decomposes the trace into bins, evaluates each (policy, bin) once,
and time-weights the results by bin residency. This module provides the
per-bin evaluators:

* :func:`evaluate_equal_policy_bin` - even per-server split, each server
  simulated under a server policy (Util-Unaware for Equal(RAPL),
  App+Res+ESD-Aware for Equal(Ours)); results are cached per
  (mix, policy, per-server cap) since servers with the same mix and cap
  behave identically.
* :func:`evaluate_consolidation_bin` - the analytic consolidation packing
  (uncapped servers have no control dynamics worth simulating).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.cluster.migration import ConsolidationPlan, ConsolidationPlanner
from repro.core.simulation import run_mix_experiment
from repro.server.config import ServerConfig
from repro.workloads.mixes import Mix
from repro.workloads.profiles import WorkloadProfile

#: The Fig. 12 strategies.
CLUSTER_POLICY_NAMES = ("equal-rapl", "equal-ours", "consolidation-migration")

#: Server policy each "equal" cluster strategy runs on every server.
_SERVER_POLICY_OF = {
    "equal-rapl": "util-unaware",
    "equal-ours": "app+res+esd-aware",
}


@dataclass(frozen=True)
class BinEvaluation:
    """Steady-state outcome of one (policy, cap-bin) evaluation.

    Attributes:
        aggregate_perf: Sum over all applications of ``Perf/Perf_nocap``.
        cluster_power_w: Mean cluster wall draw.
        migrations: Placement changes charged when *entering* this bin
            (consolidation only).
    """

    aggregate_perf: float
    cluster_power_w: float
    migrations: int = 0


def evaluate_equal_policy_bin(
    cluster_policy: str,
    mixes: list[Mix],
    per_server_cap_w: float,
    *,
    config: ServerConfig,
    cache: dict[tuple[int, str, float], tuple[float, float]],
    loaded_powers_w: list[float] | None = None,
    duration_s: float = 40.0,
    warmup_s: float = 15.0,
    dt_s: float = 0.1,
    seed: int = 0,
    engine: str = "scalar",
) -> BinEvaluation:
    """Evaluate an even-split strategy at one per-server cap.

    Args:
        cluster_policy: ``"equal-rapl"`` or ``"equal-ours"``.
        mixes: One mix per loaded server.
        per_server_cap_w: The loaded servers' share of the cluster cap.
        config: Server hardware.
        cache: Cross-bin memo ``(mix_id, policy, cap) -> (perf, power)``;
            the caller owns it so it persists across bins and shaving
            levels. Entries are engine-independent (the engines are
            bit-identical), so one cache may serve both.
        loaded_powers_w: Uncapped draw per mix, aligned with ``mixes``.
            When the cap is at or above a server's uncapped draw it is
            non-binding: the server runs uncapped (perf 2.0) without
            simulation.
        duration_s / warmup_s / dt_s / seed: Forwarded to the server
            experiment.
        engine: Server model implementation forwarded to the experiment.

    Raises:
        ConfigurationError: for unknown strategies.
    """
    try:
        server_policy = _SERVER_POLICY_OF[cluster_policy]
    except KeyError:
        raise ConfigurationError(
            f"unknown equal-split strategy {cluster_policy!r}; "
            f"expected one of {sorted(_SERVER_POLICY_OF)}"
        ) from None
    total_perf = 0.0
    total_power = 0.0
    for idx, mix in enumerate(mixes):
        uncapped_w = loaded_powers_w[idx] if loaded_powers_w is not None else None
        if uncapped_w is not None and per_server_cap_w >= uncapped_w - 1e-9:
            total_perf += float(len(mix.profiles()))
            total_power += uncapped_w
            continue
        key = (mix.mix_id, server_policy, round(per_server_cap_w, 3))
        if key not in cache:
            if per_server_cap_w <= config.p_idle_w:
                # No policy can push a server below its idle draw; the
                # server parks at idle with nothing running. (Per-server
                # caps this deep only arise from extreme shaving.)
                cache[key] = (0.0, config.p_idle_w)
            else:
                result = run_mix_experiment(
                    list(mix.profiles()),
                    server_policy,
                    per_server_cap_w,
                    mix_id=mix.mix_id,
                    config=config,
                    duration_s=duration_s,
                    warmup_s=warmup_s,
                    dt_s=dt_s,
                    seed=seed,
                    engine=engine,
                )
                cache[key] = (result.server_throughput, result.mean_wall_power_w)
        perf, power = cache[key]
        total_perf += perf
        total_power += power
    return BinEvaluation(aggregate_perf=total_perf, cluster_power_w=total_power)


def evaluate_consolidation_bin(
    planner: ConsolidationPlanner,
    apps: list[WorkloadProfile],
    cluster_cap_w: float,
    *,
    n_servers: int,
    previous_plan: ConsolidationPlan | None,
    bin_duration_s: float,
) -> tuple[BinEvaluation, ConsolidationPlan]:
    """Evaluate consolidation+migration at one cluster cap.

    Migration downtime is charged against the bin's aggregate performance:
    each moved application loses ``migration_downtime_s`` of execution out
    of ``bin_duration_s``.

    Returns the evaluation and the plan (for migration accounting at the
    next bin).
    """
    plan = planner.plan(apps, cluster_cap_w, n_servers=n_servers)
    migrations = planner.migrations_between(previous_plan, plan)
    perf = plan.aggregate_perf
    if migrations and bin_duration_s > 0:
        lost_fraction = min(1.0, planner.migration_downtime_s / bin_duration_s)
        # Downtime hits the migrated apps only; approximate their share of
        # the aggregate by the mean per-app perf.
        per_app = perf / max(1, len(apps))
        perf = max(0.0, perf - migrations * per_app * lost_fraction)
    return (
        BinEvaluation(
            aggregate_perf=perf,
            cluster_power_w=plan.total_power_w,
            migrations=migrations,
        ),
        plan,
    )
