"""Power-aware job placement: the paper's future-work item (i).

"This paper has opened doors to further research into ... (i) integration
with cluster/datacenter level scheduling and job allocation mechanisms to
individual servers" - Section VI.

This module implements that integration: a cluster-level scheduler that
decides *which server* an arriving application should join by asking each
candidate server's allocator what the marginal effect on objective (1)
would be - i.e. placement decisions that anticipate the power struggle the
newcomer will cause, instead of only counting free cores.

The score of placing application ``X`` on server ``s`` is::

    score(X, s) = objective_s(apps_s + {X}) - objective_s(apps_s)

where ``objective_s`` is the knapsack optimum under ``s``'s dynamic budget.
A server whose cap is tight (its incumbents already struggle) scores low
even with cores to spare; a server with budget slack scores high. Classic
baselines (first-fit, least-loaded, round-robin) are provided for
comparison; the benchmark shows the power-aware placement winning exactly
when caps are heterogeneous - the regime cluster-level peak shaving
creates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError
from repro.core.allocator import PowerAllocator
from repro.core.utility import CandidateSet
from repro.server.config import ServerConfig
from repro.server.power_model import PowerModel
from repro.workloads.profiles import WorkloadProfile

#: The placement strategies the benchmark compares.
PLACEMENT_POLICIES = ("power-aware", "first-fit", "least-loaded", "round-robin")


@dataclass
class ServerSlot:
    """The scheduler's view of one server.

    Attributes:
        index: Server id within the cluster.
        p_cap_w: The server's current power cap.
        capacity: Core groups available (2 on the Table I platform).
        apps: Profiles currently placed here.
    """

    index: int
    p_cap_w: float
    capacity: int = 2
    apps: list[WorkloadProfile] = field(default_factory=list)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.apps)


@dataclass(frozen=True)
class Placement:
    """One placement decision.

    Attributes:
        app: The placed application's name.
        server: Chosen server index, or ``None`` when no server had room.
        score: The scheduler's score for the chosen server (strategy
            -specific; marginal objective for the power-aware strategy).
    """

    app: str
    server: int | None
    score: float


class PowerAwareScheduler:
    """Places applications onto mediated servers, anticipating struggles.

    Args:
        config: Server hardware (all servers are assumed homogeneous; caps
            may differ per server).
        caps_w: Per-server power caps.
        capacity: Core groups per server.
        strategy: One of :data:`PLACEMENT_POLICIES`.
    """

    def __init__(
        self,
        config: ServerConfig,
        caps_w: list[float],
        *,
        capacity: int = 2,
        strategy: str = "power-aware",
    ) -> None:
        if not caps_w:
            raise ConfigurationError("need at least one server")
        if any(c <= 0 for c in caps_w):
            raise ConfigurationError("caps must be positive")
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if strategy not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; expected one of {PLACEMENT_POLICIES}"
            )
        self._config = config
        self._power_model = PowerModel(config)
        self._allocator = PowerAllocator()
        self._servers = [
            ServerSlot(index=i, p_cap_w=cap, capacity=capacity)
            for i, cap in enumerate(caps_w)
        ]
        self._strategy = strategy
        self._rr_cursor = 0
        self._cset_cache: dict[str, CandidateSet] = {}

    @property
    def servers(self) -> list[ServerSlot]:
        return self._servers

    @property
    def strategy(self) -> str:
        return self._strategy

    def set_cap(self, server: int, p_cap_w: float) -> None:
        """Update one server's cap (cluster-level re-budgeting)."""
        if p_cap_w <= 0:
            raise ConfigurationError("cap must be positive")
        self._servers[server].p_cap_w = p_cap_w

    # -------------------------------------------------------------- scoring

    def _candidates_of(self, profile: WorkloadProfile) -> CandidateSet:
        if profile.name not in self._cset_cache:
            self._cset_cache[profile.name] = CandidateSet.from_models(
                profile, self._config, power_model=self._power_model
            )
        return self._cset_cache[profile.name]

    def server_objective(self, slot: ServerSlot) -> float:
        """The knapsack optimum of a server's current tenancy."""
        if not slot.apps:
            return 0.0
        candidates = {p.name: self._candidates_of(p) for p in slot.apps}
        budget = self._config.dynamic_budget_w(slot.p_cap_w)
        if budget <= 0:
            return 0.0
        return self._allocator.allocate(candidates, budget).objective

    def marginal_gain(self, slot: ServerSlot, profile: WorkloadProfile) -> float:
        """Objective gain of adding ``profile`` to ``slot`` - the newcomer's
        achievable performance *minus* what it squeezes out of incumbents."""
        before = self.server_objective(slot)
        candidates = {p.name: self._candidates_of(p) for p in slot.apps}
        candidates[profile.name] = self._candidates_of(profile)
        budget = self._config.dynamic_budget_w(slot.p_cap_w)
        if budget <= 0:
            return 0.0
        after = self._allocator.allocate(candidates, budget).objective
        return after - before

    # ------------------------------------------------------------ placement

    def place(self, profile: WorkloadProfile) -> Placement:
        """Choose a server for ``profile`` and record the placement.

        Raises:
            SchedulingError: when the application (by name) is already
                placed somewhere.
        """
        for slot in self._servers:
            if any(p.name == profile.name for p in slot.apps):
                raise SchedulingError(f"{profile.name!r} is already placed")
        open_slots = [s for s in self._servers if s.free_slots > 0]
        if not open_slots:
            return Placement(app=profile.name, server=None, score=0.0)
        if self._strategy == "power-aware":
            chosen = max(open_slots, key=lambda s: self.marginal_gain(s, profile))
            score = self.marginal_gain(chosen, profile)
        elif self._strategy == "first-fit":
            chosen = open_slots[0]
            score = float(chosen.free_slots)
        elif self._strategy == "least-loaded":
            chosen = min(open_slots, key=lambda s: (len(s.apps), s.index))
            score = float(-len(chosen.apps))
        else:  # round-robin
            ordered = sorted(open_slots, key=lambda s: (s.index - self._rr_cursor) % len(self._servers))
            chosen = ordered[0]
            self._rr_cursor = (chosen.index + 1) % len(self._servers)
            score = 0.0
        chosen.apps.append(profile)
        return Placement(app=profile.name, server=chosen.index, score=score)

    def remove(self, app: str) -> None:
        """Remove a placed application (its departure)."""
        for slot in self._servers:
            for profile in slot.apps:
                if profile.name == app:
                    slot.apps.remove(profile)
                    return
        raise SchedulingError(f"{app!r} is not placed on any server")

    def cluster_objective(self) -> float:
        """Sum of per-server knapsack optima - the quantity placement
        decisions ultimately move."""
        return sum(self.server_objective(slot) for slot in self._servers)
