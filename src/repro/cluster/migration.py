"""Consolidation + migration: the no-capping cluster baseline.

"The cluster manager powers only as many servers as possible as allowed by
the cluster level power budget. Hence, a power cap is not imposed on any
active server. The cluster manager migrates applications to these servers
considering direct resource interference. It is more efficient as it incurs
less P_idle + P_cm. However, it may not be feasible in the presence of
large application states or network bottlenecks."

The planner packs applications onto the servers the budget can power at
*rated* draw (uncapped servers can spike to it). Packing honours the
paper's direct-resource isolation premise: one application per socket by
default, so a dual-socket server hosts at most two. Migration costs
downtime: an application moving between servers loses
``migration_downtime_s`` of execution - the churn the paper warns about
when caps change frequently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class PackedServer:
    """One powered server in a consolidation plan.

    Attributes:
        apps: Application names placed here (at most 4: two per socket).
        power_w: Uncapped server draw with this placement.
        relative_perf: Per-app ``Perf/Perf_nocap`` at the packed knob.
    """

    apps: tuple[str, ...]
    power_w: float
    relative_perf: dict[str, float]


@dataclass(frozen=True)
class ConsolidationPlan:
    """A full placement for one cap level.

    Attributes:
        servers: The powered servers.
        dropped: Applications that did not fit any powered server.
        total_power_w: Cluster draw (off servers draw nothing).
        aggregate_perf: Sum of per-app relative performance.
    """

    servers: tuple[PackedServer, ...]
    dropped: tuple[str, ...]
    total_power_w: float
    aggregate_perf: float


class ConsolidationPlanner:
    """Packs applications onto the fewest uncapped servers within a budget.

    Args:
        config: Server hardware description.
        max_apps_per_socket: Isolation limit. The paper's premise is that
            co-located applications do not share direct resources; its
            migration "considers direct resource interference", i.e. keeps
            one application per socket (own cores, LLC, DIMM). Raising this
            allows denser, interference-oblivious packing.
        migration_downtime_s: Execution lost per migrated application when
            the placement changes (stop-and-copy of application state over
            the cluster network).
    """

    def __init__(
        self,
        config: ServerConfig,
        *,
        max_apps_per_socket: int = 1,
        migration_downtime_s: float = 90.0,
    ) -> None:
        if max_apps_per_socket < 1:
            raise ConfigurationError("max_apps_per_socket must be at least 1")
        if migration_downtime_s < 0:
            raise ConfigurationError("migration_downtime_s must be non-negative")
        self._config = config
        self._perf = PerformanceModel(config)
        self._power = PowerModel(config, self._perf)
        self._max_per_socket = max_apps_per_socket
        self.migration_downtime_s = migration_downtime_s

    def packed_knob(self, apps_on_socket: int) -> KnobSetting:
        """The knob a packed application runs at: full frequency and DRAM,
        cores divided evenly across the socket's tenants."""
        cores = max(
            self._config.cores_min, self._config.cores_per_socket // max(1, apps_on_socket)
        )
        cores = min(cores, self._config.cores_max)
        return KnobSetting(
            self._config.freq_max_ghz, cores, self._config.dram_power_max_w
        )

    def server_load(
        self, apps: list[WorkloadProfile]
    ) -> tuple[float, dict[str, float]]:
        """Uncapped draw and per-app relative perf of one packed server.

        Applications are balanced across the two sockets; DRAM allocation is
        shared when a socket hosts two tenants (each gets half the DIMM
        power - the direct-resource cost of packing).
        """
        if len(apps) > self._config.sockets * self._max_per_socket:
            raise ConfigurationError(
                f"cannot pack {len(apps)} apps onto one server "
                f"(limit {self._config.sockets * self._max_per_socket})"
            )
        # Round-robin placement across sockets.
        sockets: list[list[WorkloadProfile]] = [[] for _ in range(self._config.sockets)]
        for i, profile in enumerate(apps):
            sockets[i % self._config.sockets].append(profile)
        total = self._config.p_idle_w + (self._config.p_cm_w if apps else 0.0)
        perfs: dict[str, float] = {}
        for tenants in sockets:
            for profile in tenants:
                knob = self.packed_knob(len(tenants))
                if len(tenants) > 1:
                    # Halve the DIMM allocation per tenant, on the grid.
                    half = max(
                        self._config.dram_power_min_w,
                        round(self._config.dram_power_max_w / len(tenants)),
                    )
                    knob = KnobSetting(knob.freq_ghz, knob.cores, float(half))
                total += self._power.app_power_w(profile, knob)
                perfs[profile.name] = self._perf.rate(profile, knob) / self._perf.peak_rate(
                    profile
                )
        return total, perfs

    def plan(
        self, apps: list[WorkloadProfile], cluster_cap_w: float, *, n_servers: int
    ) -> ConsolidationPlan:
        """Pack ``apps`` onto the servers the budget can power, uncapped.

        Because no active server is capped, the manager must budget each
        powered server at its *rated* draw - an uncapped server can spike to
        it at any time - so ``n_active = floor(cap / rated)``. Applications
        spread evenly (round-robin) over the powered servers: the manager
        "powers as many servers as possible", preferring shallow packing
        for performance. Applications beyond the powered capacity are
        dropped (they wait, contributing zero performance) - the stranded
        -budget cost of rated-power quantization that the paper's proposal
        avoids by capping instead.
        """
        if cluster_cap_w <= 0:
            raise ConfigurationError("cluster_cap_w must be positive")
        rated = self._config.uncapped_power_w
        n_active = min(n_servers, int(cluster_cap_w // rated))
        if n_active <= 0 or not apps:
            return ConsolidationPlan(
                servers=(),
                dropped=tuple(p.name for p in apps),
                total_power_w=0.0,
                aggregate_perf=0.0,
            )
        capacity = n_active * self._config.sockets * self._max_per_socket
        placed = list(apps[:capacity])
        dropped = tuple(p.name for p in apps[capacity:])
        # Native density is one app per socket; consolidate to that density
        # when the budget allows, deeper only when it does not (fewer
        # powered servers means less P_idle + P_cm - the strategy's whole
        # point).
        native = -(-len(placed) // self._config.sockets)  # ceil division
        n_used = min(n_active, max(1, native))
        servers: list[PackedServer] = []
        for i in range(n_used):
            group = placed[i::n_used]
            power, perfs = self.server_load(group)
            servers.append(
                PackedServer(
                    apps=tuple(p.name for p in group),
                    power_w=power,
                    relative_perf=perfs,
                )
            )
        return ConsolidationPlan(
            servers=tuple(servers),
            dropped=dropped,
            total_power_w=sum(s.power_w for s in servers),
            aggregate_perf=sum(sum(s.relative_perf.values()) for s in servers),
        )

    def migrations_between(
        self, before: "ConsolidationPlan | None", after: ConsolidationPlan
    ) -> int:
        """Count applications whose server index changed between plans."""
        if before is None:
            return 0
        old_home = {
            name: idx for idx, srv in enumerate(before.servers) for name in srv.apps
        }
        new_home = {
            name: idx for idx, srv in enumerate(after.servers) for name in srv.apps
        }
        return sum(
            1
            for name, home in new_home.items()
            if name in old_home and old_home[name] != home
        )


class ConsolidationWalker:
    """Stateful trace replay of the consolidation+migration strategy.

    Migration is not free or instantaneous, and this walker charges the
    operational costs the paper's discussion calls out:

    * **Replan hysteresis** - the manager recomputes placement at most every
      ``replan_interval_s`` (migrating the fleet every trace minute is not
      operable). Between replans, newly offered applications wait.
    * **Boot latency** - powering a server that was off takes
      ``boot_latency_s``; applications placed on it produce nothing until it
      is up.
    * **Emergency shedding** - when the cap falls below the current
      placement's rated budget the manager cannot wait for the next replan:
      it powers servers down immediately, and their applications stall
      until a replan re-places them.
    * **Migration downtime** - each re-placed application loses the
      planner's ``migration_downtime_s``.

    The paper's proposal avoids all four by capping servers in place - this
    walker is what makes that comparison fair.

    Args:
        planner: Packing/migration cost model.
        n_servers: Fleet size.
        replan_interval_s: Minimum time between placement recomputations.
        boot_latency_s: Power-on latency of a server that was off.
    """

    def __init__(
        self,
        planner: ConsolidationPlanner,
        n_servers: int,
        *,
        replan_interval_s: float = 600.0,
        boot_latency_s: float = 180.0,
    ) -> None:
        if n_servers < 1:
            raise ConfigurationError("n_servers must be at least 1")
        if replan_interval_s < 0 or boot_latency_s < 0:
            raise ConfigurationError("intervals must be non-negative")
        self._planner = planner
        self._n_servers = n_servers
        self._replan_interval_s = replan_interval_s
        self._boot_latency_s = boot_latency_s
        self._plan: ConsolidationPlan | None = None
        self._since_replan_s = float("inf")
        self._powered = 0
        self.total_migrations = 0

    def step(
        self,
        apps: list[WorkloadProfile],
        cap_w: float,
        step_s: float,
        *,
        n_available: int | None = None,
    ) -> tuple[float, float]:
        """Advance one trace step; returns ``(aggregate_perf, power_w)``.

        ``aggregate_perf`` is the time-average over the step, including
        migration/boot/shedding losses.

        Args:
            apps: Applications offered this step.
            cap_w: Cluster cap in force.
            step_s: Step duration.
            n_available: Servers currently healthy (node failures shrink
                the fleet). A failure is felt immediately - servers beyond
                the healthy count shed their placement and those apps stall
                - but re-placing the stalled work waits for the replan
                hysteresis, the same operational cost migrations pay.
        """
        if step_s <= 0:
            raise ConfigurationError("step_s must be positive")
        avail = (
            self._n_servers
            if n_available is None
            else max(0, min(n_available, self._n_servers))
        )
        self._since_replan_s += step_s
        offered = {p.name for p in apps}
        rated = self._planner._config.uncapped_power_w  # noqa: SLF001

        replan_due = self._plan is None or self._since_replan_s >= self._replan_interval_s
        if replan_due:
            cold_start = self._plan is None
            new_plan = self._planner.plan(apps, cap_w, n_servers=avail)
            migrations = self._planner.migrations_between(self._plan, new_plan)
            self.total_migrations += migrations
            # Booting applies only when an established fleet grows; at cold
            # start the experiment begins with the placement already up.
            newly_powered = (
                0 if cold_start else max(0, len(new_plan.servers) - self._powered)
            )
            migration_loss_s = min(step_s, self._planner.migration_downtime_s)
            self._plan = new_plan
            self._powered = len(new_plan.servers)
            self._since_replan_s = 0.0
            perf = new_plan.aggregate_perf
            # Charge migration downtime against the migrated apps' share and
            # boot latency against the newly powered servers' share. Loss
            # beyond one step is dropped - optimistic for the baseline.
            if migrations and new_plan.servers:
                per_app = perf / max(1, sum(len(s.apps) for s in new_plan.servers))
                perf -= migrations * per_app * (migration_loss_s / step_s)
            if newly_powered and new_plan.servers:
                boot_loss = min(1.0, self._boot_latency_s / step_s)
                booted = new_plan.servers[-newly_powered:]
                perf -= boot_loss * sum(sum(s.relative_perf.values()) for s in booted)
            return max(0.0, perf), new_plan.total_power_w

        # Between replans: run the standing placement for whatever of it is
        # still offered; emergency-shed servers if the cap fell below the
        # placement's rated budget.
        assert self._plan is not None
        servers = list(self._plan.servers)
        while servers and len(servers) * rated > cap_w + 1e-9:
            servers.pop()  # power down, apps stall until the next replan
        while len(servers) > avail:
            servers.pop()  # node failure: its placement stalls until replan
        perf = sum(
            sum(v for name, v in s.relative_perf.items() if name in offered)
            for s in servers
        )
        power = sum(s.power_w for s in servers)
        self._powered = len(servers)
        return perf, power
