"""The Fig. 12 cluster experiment: peak shaving over a diurnal trace.

:class:`ClusterSimulator` replays a day against a 10-server cluster under
the three cluster strategies and reports aggregate performance and power
efficiency normalized to uncapped operation.

**Load following.** The demand trace is a *load* signal: the cluster of the
paper's source trace serves connection-intensive traffic whose intensity
swings diurnally. We invert the demand curve into an offered load - how many
servers carry their two-application mix at each instant (the rest idle) -
so that the uncapped cluster draw reproduces the trace. Peak shaving then
caps the cluster exactly where the paper's Fig. 12a does: the cap equals
demand off-peak (non-binding) and plateaus at ``(1 - shave) * peak`` during
peak hours (binding).

**Evaluation.** Within one (offered load, cap) bin every strategy reaches a
steady state, so each distinct bin is evaluated once - the equal-split
strategies by simulating each loaded server's mix under its cap share, the
consolidation baseline analytically - and results are time-weighted by bin
residency. Consolidation walks the trace in order so migration churn is
charged whenever its packing changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.controlplane import ControlPlaneConfig, run_control_plane
from repro.cluster.manager import (
    CLUSTER_POLICY_NAMES,
    evaluate_equal_policy_bin,
)
from repro.cluster.migration import ConsolidationPlanner, ConsolidationWalker
from repro.netsim import NetConfig
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.server.config import ServerConfig, DEFAULT_SERVER_CONFIG
from repro.workloads.mixes import Mix, all_mixes
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.traces import ClusterPowerTrace, peak_shaving_caps


@dataclass(frozen=True)
class NodeOutage:
    """One server's failure interval over the demand trace.

    Steps are indices into the trace (half-open: the server is down for
    ``start_step <= t < end_step``). A failed server powers off entirely -
    its applications produce nothing and it draws nothing - and its share
    of the cluster cap is redistributed to the surviving loaded servers
    until the step it recovers.

    Attributes:
        server: Index of the failed server (0-based home-server index).
        start_step: First trace step of the outage.
        end_step: First trace step after recovery.
    """

    server: int
    start_step: int
    end_step: int

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError("outage server index must be non-negative")
        if self.start_step < 0:
            raise ConfigurationError("outage start_step must be non-negative")
        if self.end_step <= self.start_step:
            raise ConfigurationError("outage end_step must exceed start_step")

    def down_at(self, step: int) -> bool:
        return self.start_step <= step < self.end_step


def validate_outages(
    outages: tuple[NodeOutage, ...],
    *,
    n_steps: int,
    n_servers: int,
) -> tuple[NodeOutage, ...]:
    """Normalize an outage schedule against a concrete trace and fleet.

    Three rules, matching how the rest of the schedule machinery behaves:

    * An outage naming a server that does not exist in the topology raises
      :class:`~repro.errors.ConfigurationError` naming the id - a typo'd
      schedule silently doing nothing is how fault drills get skipped.
      Outages starting at or past the end of the trace are still dropped
      (schedules can be shared across trace lengths).
    * An outage extending past the trace is clamped to the trace end - the
      extra steps can never be observed, so they are not an error.
    * Two outages for the *same* server whose intervals overlap are
      contradictory (is the server down once or twice?) and raise
      :class:`~repro.errors.ConfigurationError`, naming the offending
      field ``outages[i].start_step`` the way the persistence schema
      validators name theirs.
    """
    if n_steps <= 0:
        raise ConfigurationError("outage validation needs a non-empty trace")
    kept: list[NodeOutage] = []
    seen: dict[int, list[tuple[int, int, int]]] = {}
    for index, outage in enumerate(outages):
        if outage.server >= n_servers:
            raise ConfigurationError(
                f"outages[{index}].server: server {outage.server} does not "
                f"exist in a {n_servers}-server fleet"
            )
        if outage.start_step >= n_steps:
            continue
        end_step = min(outage.end_step, n_steps)
        for start2, end2, index2 in seen.get(outage.server, []):
            if outage.start_step < end2 and start2 < end_step:
                raise ConfigurationError(
                    f"outages[{index}].start_step: overlaps outages[{index2}] "
                    f"for server {outage.server}"
                )
        seen.setdefault(outage.server, []).append(
            (outage.start_step, end_step, index)
        )
        if end_step != outage.end_step:
            outage = NodeOutage(
                server=outage.server,
                start_step=outage.start_step,
                end_step=end_step,
            )
        kept.append(outage)
    return tuple(kept)


def outages_from_fault_plan(plan, *, step_s: float) -> tuple[NodeOutage, ...]:
    """Convert a :class:`~repro.faults.plan.FaultPlan`'s ``node`` specs into
    :class:`NodeOutage` windows.

    One plan file can then describe single-server substrate faults *and*
    cluster-level node kills: the per-server injector skips ``node`` specs,
    this converter skips everything else. Windows are conservative - the
    outage covers every trace step the fault window touches (floor start,
    ceil end).
    """
    if step_s <= 0:
        raise ConfigurationError("step_s must be positive")
    outages = []
    for spec in plan.specs:
        if spec.kind != "node":
            continue
        start_step = int(np.floor(spec.start_s / step_s))
        end_step = max(start_step + 1, int(np.ceil(spec.end_s / step_s)))
        outages.append(
            NodeOutage(
                server=int(spec.target),
                start_step=start_step,
                end_step=end_step,
            )
        )
    return tuple(outages)


@dataclass(frozen=True)
class ClusterPolicyResult:
    """Trace-aggregate outcome for one strategy at one shaving level.

    Attributes:
        policy: Strategy name.
        shave_fraction: Peak-shaving level (0.15 / 0.30 / 0.45).
        aggregate_performance: Time-weighted aggregate performance over the
            uncapped aggregate (the Fig. 12b y-axis).
        mean_power_w: Time-weighted mean cluster draw.
        power_efficiency: Normalized performance per normalized *consumed*
            watt (1.0 = the uncapped cluster).
        budget_efficiency: Normalized performance per normalized *available*
            watt - the budget the cap grants, whether or not a strategy can
            use it. This is the paper's "higher performance per available
            watt" metric: consolidation strands budget through rated-power
            quantization, capping strategies do not. The paper's +4%/+12%
            efficiency claims compare these values.
        migrations: Total placement changes (consolidation only).
        lost_node_steps: Sum over trace steps of the number of failed
            servers (node-steps of lost capacity under the run's
            :class:`NodeOutage` schedule; 0 in a fault-free run).
    """

    policy: str
    shave_fraction: float
    aggregate_performance: float
    mean_power_w: float
    power_efficiency: float
    budget_efficiency: float
    migrations: int = 0
    lost_node_steps: int = 0


@dataclass(frozen=True)
class ClusterExperiment:
    """All strategies at all shaving levels, plus the cap traces (Fig. 12a).

    Attributes:
        results: ``{shave_fraction: {policy: result}}``.
        cap_traces: ``{shave_fraction: ClusterPowerTrace}`` - the Fig. 12a
            series.
    """

    results: dict[float, dict[str, ClusterPolicyResult]]
    cap_traces: dict[float, ClusterPowerTrace]


class ClusterSimulator:
    """Ten servers, three strategies, a diurnal trace (Fig. 12).

    Args:
        config: Per-server hardware (Table I defaults).
        mixes: One mix per server; defaults to Table II mixes 1-10. Offered
            load ``k`` activates the first ``k`` mixes.
        cap_grid_w: Quantization grid for the cluster cap when binning the
            trace (coarser = faster; 20 W is 2 W per server).
        unloaded_server_power_w: Draw of a server with no load. The cluster
            manager parks empty servers in a standby state (suspend-to-RAM
            class, ~10 W) rather than burning full idle power - standard
            practice for diurnal fleets since the energy-proportionality
            literature the paper builds on.
        engine: Server model implementation (``"scalar"``/``"vector"``)
            forwarded to every per-bin server simulation; bit-identical
            results either way, so it only changes sweep wall-clock.
    """

    def __init__(
        self,
        config: ServerConfig = DEFAULT_SERVER_CONFIG,
        *,
        mixes: list[Mix] | None = None,
        cap_grid_w: float = 20.0,
        unloaded_server_power_w: float = 10.0,
        engine: str = "scalar",
    ) -> None:
        from repro.engine import validate_engine

        if cap_grid_w <= 0:
            raise ConfigurationError("cap_grid_w must be positive")
        if unloaded_server_power_w < 0:
            raise ConfigurationError("unloaded_server_power_w must be non-negative")
        self._unloaded_w = unloaded_server_power_w
        self._engine = validate_engine(engine)
        self._config = config
        self._mixes = mixes if mixes is not None else all_mixes()[:10]
        if not self._mixes:
            raise ConfigurationError("need at least one mix")
        self._cap_grid_w = cap_grid_w
        self._planner = ConsolidationPlanner(config)
        self._equal_cache: dict[tuple[int, str, float], tuple[float, float]] = {}
        self._loaded_power_cache: dict[int, float] = {}
        self._trace: TraceBus = NULL_TRACE_BUS
        self._metrics = MetricsRegistry()

    @property
    def n_servers(self) -> int:
        return len(self._mixes)

    def state_dict(self) -> dict:
        """Snapshot the memoized per-bin evaluations (JSON-serializable).

        Cluster sweeps spend nearly all their time filling these caches;
        checkpointing them lets a restarted sweep skip straight to the
        unevaluated bins. Keys are flattened to ``"k|policy|cap"`` strings
        so the snapshot round-trips through JSON.
        """
        return {
            "equal": {
                f"{k}|{policy}|{cap!r}": list(value)
                for (k, policy, cap), value in self._equal_cache.items()
            },
            "loaded_power": {
                str(idx): power for idx, power in self._loaded_power_cache.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (caches only; the mixes and
        config come from the constructor and must match)."""
        equal: dict[tuple[int, str, float], tuple[float, float]] = {}
        for key, value in state["equal"].items():
            k, policy, cap = key.split("|")
            equal[(int(k), policy, float(cap))] = (float(value[0]), float(value[1]))
        self._equal_cache = equal
        self._loaded_power_cache = {
            int(idx): float(power) for idx, power in state["loaded_power"].items()
        }

    def loaded_server_power_w(self, index: int) -> float:
        """Uncapped draw of server ``index`` carrying its mix."""
        if index not in self._loaded_power_cache:
            power, _ = self._planner.server_load(list(self._mixes[index].profiles()))
            self._loaded_power_cache[index] = power
        return self._loaded_power_cache[index]

    def uncapped_cluster_power_w(self) -> float:
        """Cluster draw with every server loaded and uncapped (trace peak)."""
        return sum(self.loaded_server_power_w(i) for i in range(self.n_servers))

    def apps_for_load(self, k: int) -> list[WorkloadProfile]:
        """The applications offered when ``k`` servers are loaded, with
        names suffixed by home-server index (packing must tell them apart)."""
        result: list[WorkloadProfile] = []
        for idx in range(k):
            for profile in self._mixes[idx].profiles():
                result.append(
                    WorkloadProfile.from_dict(
                        {**profile.to_dict(), "name": f"{profile.name}@{idx}"}
                    )
                )
        return result

    def offered_load(self, demand_w: float) -> int:
        """Invert the demand curve into loaded-server count ``k``.

        Uncapped draw with ``k`` loaded servers is
        ``sum_{i<k} loaded_i + (n - k) * standby``; the inversion picks
        the ``k`` whose draw is closest to the demand sample.
        """
        best_k, best_err = 0, float("inf")
        for k in range(0, self.n_servers + 1):
            draw = sum(self.loaded_server_power_w(i) for i in range(k))
            draw += (self.n_servers - k) * self._unloaded_w
            err = abs(draw - demand_w)
            if err < best_err:
                best_k, best_err = k, err
        return best_k

    # ------------------------------------------------------------------ run

    def run(
        self,
        *,
        shave_fractions: tuple[float, ...] = (0.15, 0.30, 0.45),
        trace: ClusterPowerTrace | None = None,
        duration_s: float = 40.0,
        warmup_s: float = 15.0,
        dt_s: float = 0.1,
        seed: int = 0,
        outages: tuple[NodeOutage, ...] = (),
        trace_bus: TraceBus | None = None,
        metrics: MetricsRegistry | None = None,
        netsim: NetConfig | None = None,
        controlplane: ControlPlaneConfig | None = None,
    ) -> ClusterExperiment:
        """Evaluate every strategy at every shaving level.

        Args:
            shave_fractions: Peak-shaving levels (paper: 15/30/45%).
            trace: Demand trace; defaults to a synthetic diurnal trace whose
                peak equals this cluster's fully loaded draw and whose
                trough matches the published characterization (~55%).
            duration_s / warmup_s / dt_s: Per-bin steady-state simulation
                parameters for the equal-split strategies.
            seed: Forwarded to the server simulations.
            outages: Node-failure intervals. While a server is down the
                equal-split strategies redistribute its cap share over the
                survivors (``(ceiling - idle) / n_alive`` per server) and
                restore the even split at recovery; consolidation replans
                against the shrunken fleet.
            trace_bus: Optional sink for ``cluster-bin`` (one per fresh bin
                evaluation) and ``cluster-level`` (one per shave level)
                events; the sweep is seed-deterministic, so these hash
                stably like any other sim events.
            metrics: Optional registry receiving the
                ``cluster.bins_evaluated`` / ``cluster.bin_cache_hits``
                counters that quantify how much the memoization saved.
            netsim: When set, the equal-split strategies stop being
                oracles: per-server caps are whatever the lease/epoch
                control plane (:mod:`repro.cluster.controlplane`) actually
                got enforced over this lossy network, with outages
                *inferred* from missed heartbeats rather than read from the
                schedule. Consolidation keeps its oracle placement (its
                migration machinery is a baseline, not the system under
                test). ``None`` (the default) preserves the oracle path
                bit-for-bit.
            controlplane: Protocol tunables for the netsim path.
        """
        self._trace = trace_bus if trace_bus is not None else NULL_TRACE_BUS
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        peak_w = self.uncapped_cluster_power_w()
        if trace is None:
            trace = ClusterPowerTrace.synthetic_diurnal(peak_w=peak_w, seed=seed)
        outages = validate_outages(
            outages, n_steps=len(trace.demand_w), n_servers=self.n_servers
        )
        results: dict[float, dict[str, ClusterPolicyResult]] = {}
        cap_traces: dict[float, ClusterPowerTrace] = {}
        for shave in shave_fractions:
            caps = peak_shaving_caps(trace, shave)
            cap_traces[shave] = caps
            results[shave] = self._run_one_level(
                trace,
                caps,
                shave,
                duration_s=duration_s,
                warmup_s=warmup_s,
                dt_s=dt_s,
                seed=seed,
                outages=outages,
                netsim=netsim,
                controlplane=controlplane,
            )
        return ClusterExperiment(results=results, cap_traces=cap_traces)

    # ------------------------------------------------------------ internals

    def _quantize_per_server(self, cap_w: float) -> float:
        """Snap a per-server cap to the grid, downward (never evaluate
        above the true cap). The configured grid is cluster-wide; the
        per-server grid is its even share."""
        grid = self._cap_grid_w / self.n_servers
        return max(grid, float(np.floor(cap_w / grid)) * grid)

    def _run_one_level(
        self,
        demand: ClusterPowerTrace,
        caps: ClusterPowerTrace,
        shave: float,
        *,
        duration_s: float,
        warmup_s: float,
        dt_s: float,
        seed: int,
        outages: tuple[NodeOutage, ...] = (),
        netsim: NetConfig | None = None,
        controlplane: ControlPlaneConfig | None = None,
    ) -> dict[str, ClusterPolicyResult]:
        step_s = demand.step_s
        ceiling_w = (1.0 - shave) * demand.peak_w
        loads = [self.offered_load(d) for d in demand.demand_w]
        # Which servers are down at each trace step (indices past the fleet
        # are ignored rather than rejected: outage schedules can be shared
        # across cluster sizes).
        failed_sets = [
            frozenset(
                o.server for o in outages if o.down_at(t) and o.server < self.n_servers
            )
            for t in range(len(loads))
        ]
        lost_node_steps = sum(len(f) for f in failed_sets)
        # Uncapped draw for each offered load (model-exact, so the
        # normalization and the caps agree with the policies' physics).
        uncapped_draw = {
            k: sum(self.loaded_server_power_w(i) for i in range(k))
            + (self.n_servers - k) * self._unloaded_w
            for k in set(loads)
        }
        # Peak shaving binds only when the load's draw would exceed the
        # ceiling; off-peak the cluster runs uncapped (the Fig. 12a cap
        # series equals demand there merely because capping is inactive).
        # Normalization is always against the *fault-free* uncapped cluster,
        # so node outages show up as lost performance, not a moved baseline.
        binding = [uncapped_draw[k] > ceiling_w + 1e-9 for k in loads]
        uncapped_perf_time = sum(2.0 * k for k in loads) * step_s
        uncapped_power_time = sum(uncapped_draw[k] for k in loads) * step_s
        available_power_time = sum(
            (ceiling_w if binds else uncapped_draw[k])
            for k, binds in zip(loads, binding)
        ) * step_s
        if uncapped_perf_time <= 0:
            raise ConfigurationError("trace offers no load at all")

        out: dict[str, ClusterPolicyResult] = {}
        if netsim is not None:
            # Non-oracle path: per-server caps come from the lease/epoch
            # control plane replayed over the lossy network.
            out.update(
                self._equal_policies_netsim(
                    loads=loads,
                    failed_sets=failed_sets,
                    ceiling_w=ceiling_w,
                    shave=shave,
                    step_s=step_s,
                    netsim=netsim,
                    controlplane=controlplane,
                    duration_s=duration_s,
                    warmup_s=warmup_s,
                    dt_s=dt_s,
                    seed=seed,
                    uncapped_perf_time=uncapped_perf_time,
                    uncapped_power_time=uncapped_power_time,
                    available_power_time=available_power_time,
                    lost_node_steps=lost_node_steps,
                )
            )
        equal_policies = ("equal-rapl", "equal-ours") if netsim is None else ()
        for policy in equal_policies:
            perf_time = 0.0
            power_time = 0.0
            bin_cache: dict[tuple[int, frozenset[int]], tuple[float, float]] = {}
            for k, failed in zip(loads, failed_sets):
                alive_loaded = [i for i in range(k) if i not in failed]
                alive_unloaded = (self.n_servers - k) - sum(
                    1 for f in failed if f >= k
                )
                idle_w = alive_unloaded * self._unloaded_w
                draw = (
                    sum(self.loaded_server_power_w(i) for i in alive_loaded) + idle_w
                )
                if not alive_loaded:
                    power_time += idle_w * step_s
                    continue
                if draw <= ceiling_w + 1e-9:
                    # Cap non-binding on the (possibly degraded) fleet: the
                    # surviving loaded servers run uncapped.
                    perf_time += 2.0 * len(alive_loaded) * step_s
                    power_time += draw * step_s
                    continue
                key = (k, failed)
                if key not in bin_cache:
                    # The failed servers' cap share is redistributed: the
                    # whole ceiling (minus standby idle) splits evenly over
                    # the survivors, and reverts when the node returns.
                    per_server = self._quantize_per_server(
                        max(0.0, ceiling_w - idle_w) / len(alive_loaded)
                    )
                    evaluation = evaluate_equal_policy_bin(
                        policy,
                        [self._mixes[i] for i in alive_loaded],
                        per_server,
                        config=self._config,
                        cache=self._equal_cache,
                        loaded_powers_w=[
                            self.loaded_server_power_w(i) for i in alive_loaded
                        ],
                        duration_s=duration_s,
                        warmup_s=warmup_s,
                        dt_s=dt_s,
                        seed=seed,
                        engine=self._engine,
                    )
                    bin_cache[key] = (
                        evaluation.aggregate_perf,
                        evaluation.cluster_power_w + idle_w,
                    )
                    self._metrics.counter("cluster.bins_evaluated").inc()
                    self._trace.emit(
                        "cluster-bin",
                        {
                            "policy": policy,
                            "shave": shave,
                            "loaded": k,
                            "failed": sorted(failed),
                            "per_server_cap_w": per_server,
                            "aggregate_perf": evaluation.aggregate_perf,
                            "cluster_power_w": evaluation.cluster_power_w + idle_w,
                        },
                    )
                else:
                    self._metrics.counter("cluster.bin_cache_hits").inc()
                perf, power = bin_cache[key]
                perf_time += perf * step_s
                power_time += power * step_s
            out[policy] = ClusterPolicyResult(
                policy=policy,
                shave_fraction=shave,
                aggregate_performance=perf_time / uncapped_perf_time,
                mean_power_w=power_time / (len(loads) * step_s),
                power_efficiency=_efficiency(
                    perf_time / uncapped_perf_time, power_time / uncapped_power_time
                ),
                budget_efficiency=_efficiency(
                    perf_time / uncapped_perf_time,
                    available_power_time / uncapped_power_time,
                ),
                lost_node_steps=lost_node_steps,
            )

        walker = ConsolidationWalker(self._planner, self.n_servers)
        perf_time = 0.0
        power_time = 0.0
        rated_cluster_w = self._config.uncapped_power_w * self.n_servers
        apps_cache = {k: self.apps_for_load(k) for k in set(loads)}
        for k, binds, failed in zip(loads, binding, failed_sets):
            cap_w = ceiling_w if binds else rated_cluster_w
            perf, power = walker.step(
                apps_cache[k],
                cap_w,
                step_s,
                n_available=self.n_servers - len(failed),
            )
            perf_time += perf * step_s
            power_time += power * step_s
        migrations = walker.total_migrations
        out["consolidation-migration"] = ClusterPolicyResult(
            policy="consolidation-migration",
            shave_fraction=shave,
            aggregate_performance=perf_time / uncapped_perf_time,
            mean_power_w=power_time / (len(loads) * step_s),
            power_efficiency=_efficiency(
                perf_time / uncapped_perf_time, power_time / uncapped_power_time
            ),
            budget_efficiency=_efficiency(
                perf_time / uncapped_perf_time,
                available_power_time / uncapped_power_time,
            ),
            migrations=migrations,
            lost_node_steps=lost_node_steps,
        )
        assert set(out) == set(CLUSTER_POLICY_NAMES)
        self._trace.emit(
            "cluster-level",
            {
                "shave": shave,
                "migrations": migrations,
                "lost_node_steps": lost_node_steps,
                "policies": {
                    name: {
                        "aggregate_performance": result.aggregate_performance,
                        "power_efficiency": result.power_efficiency,
                        "budget_efficiency": result.budget_efficiency,
                    }
                    for name, result in sorted(out.items())
                },
            },
        )
        return out

    def _equal_policies_netsim(
        self,
        *,
        loads: list[int],
        failed_sets: list[frozenset[int]],
        ceiling_w: float,
        shave: float,
        step_s: float,
        netsim: NetConfig,
        controlplane: ControlPlaneConfig | None,
        duration_s: float,
        warmup_s: float,
        dt_s: float,
        seed: int,
        uncapped_perf_time: float,
        uncapped_power_time: float,
        available_power_time: float,
        lost_node_steps: int,
    ) -> dict[str, ClusterPolicyResult]:
        """Equal-split strategies under the distributed control plane.

        One control-plane replay per shaving level produces the per-step
        per-server cap schedule (both equal strategies enforce the *same*
        caps - they differ in what each server does under its cap, not in
        how watts move between servers). Each loaded surviving server is
        then evaluated under the cap it actually held, reusing the shared
        per-(mix, policy, cap) bin cache; grants are grid-quantized, so the
        distinct cap set stays small.

        Two honest costs versus the oracle path appear here by design:
        unloaded and dead nodes keep their unconditional safe caps reserved
        (those watts are stranded, not redistributed), and caps bind
        whenever the *granted* share is below a server's draw - even at
        steps where the oracle would have been non-binding cluster-wide.
        """
        outcome = run_control_plane(
            n_nodes=self.n_servers,
            budget_w=ceiling_w,
            loaded_counts=loads,
            down_sets=failed_sets,
            net=netsim,
            config=controlplane,
            quantum_w=self._cap_grid_w / self.n_servers,
            rated_cap_w=self._config.uncapped_power_w,
            trace_bus=self._trace,
            metrics=self._metrics,
        )
        self._trace.emit(
            "cluster-controlplane",
            {
                "shave": shave,
                "budget_w": outcome.budget_w,
                "safe_cap_w": outcome.safe_cap_w,
                "max_total_cap_w": outcome.max_total_cap_w,
                "final_epoch": outcome.final_epoch,
                "net": outcome.net_stats,
            },
        )
        out: dict[str, ClusterPolicyResult] = {}
        for policy in ("equal-rapl", "equal-ours"):
            perf_time = 0.0
            power_time = 0.0
            for t, (k, failed) in enumerate(zip(loads, failed_sets)):
                alive_unloaded = (self.n_servers - k) - sum(
                    1 for f in failed if f >= k
                )
                power_time += alive_unloaded * self._unloaded_w * step_s
                for i in range(k):
                    if i in failed:
                        continue
                    evaluation = evaluate_equal_policy_bin(
                        policy,
                        [self._mixes[i]],
                        outcome.caps_w[t][i],
                        config=self._config,
                        cache=self._equal_cache,
                        loaded_powers_w=[self.loaded_server_power_w(i)],
                        duration_s=duration_s,
                        warmup_s=warmup_s,
                        dt_s=dt_s,
                        seed=seed,
                        engine=self._engine,
                    )
                    perf_time += evaluation.aggregate_perf * step_s
                    power_time += evaluation.cluster_power_w * step_s
            out[policy] = ClusterPolicyResult(
                policy=policy,
                shave_fraction=shave,
                aggregate_performance=perf_time / uncapped_perf_time,
                mean_power_w=power_time / (len(loads) * step_s),
                power_efficiency=_efficiency(
                    perf_time / uncapped_perf_time,
                    power_time / uncapped_power_time,
                ),
                budget_efficiency=_efficiency(
                    perf_time / uncapped_perf_time,
                    available_power_time / uncapped_power_time,
                ),
                lost_node_steps=lost_node_steps,
            )
        return out


def _efficiency(norm_perf: float, norm_power: float) -> float:
    """Normalized performance per normalized watt (1.0 = uncapped)."""
    if norm_power <= 0:
        return 0.0
    return norm_perf / norm_power
