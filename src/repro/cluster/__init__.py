"""Cluster-scale power management (Section IV-D, Fig. 12).

Ten servers replay dynamic cluster power caps derived from a diurnal demand
trace at 15/30/45% peak shaving. Three cluster-manager strategies are
compared:

* **Equal(RAPL)** - the cap is split evenly; each server enforces its share
  with RAPL (the Util-Unaware server policy). State of the art [Dynamo].
* **Equal(Ours)** - even split; each server runs the paper's
  App+Res+ESD-Aware policy.
* **Consolidation+Migration(no cap)** - power only as many servers as the
  budget allows, migrate applications onto them (packing up to two per
  socket), cap nobody.

Public API: :class:`~repro.cluster.cluster.ClusterSimulator` and the policy
evaluators in :mod:`~repro.cluster.manager`.
"""

from repro.cluster.cluster import (
    ClusterSimulator,
    ClusterPolicyResult,
    ClusterExperiment,
    NodeOutage,
    outages_from_fault_plan,
    validate_outages,
)
from repro.cluster.controlplane import (
    ClusterController,
    ControlPlaneConfig,
    ControlPlaneOutcome,
    NodeAgent,
    run_control_plane,
)
from repro.cluster.manager import (
    CLUSTER_POLICY_NAMES,
    evaluate_equal_policy_bin,
    evaluate_consolidation_bin,
)
from repro.cluster.migration import ConsolidationPlanner, ConsolidationWalker, PackedServer
from repro.cluster.scheduler import (
    PowerAwareScheduler,
    Placement,
    ServerSlot,
    PLACEMENT_POLICIES,
)

__all__ = [
    "ClusterSimulator",
    "ClusterPolicyResult",
    "ClusterExperiment",
    "ClusterController",
    "ControlPlaneConfig",
    "ControlPlaneOutcome",
    "NodeAgent",
    "NodeOutage",
    "outages_from_fault_plan",
    "run_control_plane",
    "validate_outages",
    "CLUSTER_POLICY_NAMES",
    "evaluate_equal_policy_bin",
    "evaluate_consolidation_bin",
    "ConsolidationPlanner",
    "ConsolidationWalker",
    "PackedServer",
    "PowerAwareScheduler",
    "Placement",
    "ServerSlot",
    "PLACEMENT_POLICIES",
]
