"""Replay a budget tree over a load/fault schedule, invariant-checked.

:class:`BudgetTreeSimulator` steps every level of the tree in lockstep -
all uplink agents first (deepest after shallowest within a step, ids in
order, exactly the flat runner's ordering when the tree has one level),
then every controller root-first - and proves, at **every interior node on
every step**, that the children's enforced budgets sum to at most the
node's own enforced budget. A violation raises
:class:`~repro.errors.SimulationError`: like the flat plane, the hierarchy
is budget-safe by construction, and the check is there to catch protocol
bugs, not to paper over them.

:func:`run_budget_tree` is the batch entry point mirroring
:func:`~repro.cluster.controlplane.run_control_plane`; a degenerate
single-level tree replays that function bit-identically (same seeds, same
step order, same arithmetic - the regression suite pins it). The
step-at-a-time simulator API exists so the chaos harness can kill interior
controllers mid-run and restore them from stale checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np
from numpy.random import SeedSequence

from repro.cluster.controlplane import ControlPlaneConfig, NodeAgent
from repro.errors import NetworkError, SimulationError
from repro.hierarchy.node import MediationNode, SubtreeAgent
from repro.hierarchy.tree import (
    Path,
    SubtreeOutage,
    TreeSpec,
    TreeTopology,
    format_path,
    validate_subtree_outages,
)
from repro.netsim.network import NetConfig
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACE_BUS, TraceBus

__all__ = ["BudgetTreeSimulator", "HierarchyOutcome", "run_budget_tree"]

_EPS = 1e-6


def _derived_seed(base_seed: int, path: Path) -> int:
    """A stable per-network seed: the root keeps ``base_seed`` verbatim
    (depth-1 bit-identity with the flat plane), deeper networks mix the
    path in through a SeedSequence so sibling fabrics are decorrelated."""
    if not path:
        return base_seed
    return int(SeedSequence((base_seed,) + tuple(path)).generate_state(1)[0])


@dataclass(frozen=True)
class HierarchyOutcome:
    """One budget-tree replay over a load/fault schedule.

    Attributes:
        caps_w: Per step, per leaf: the cap in force at that server.
        budget_w: The datacenter budget the run delegated.
        n_leaves / depth: Tree shape.
        safe_caps_by_level_w: The static unconditional cap at each level
            below the root (uniform within a level by construction).
        max_total_cap_w: Largest observed leaf-cap sum (<= ``budget_w``).
        leaf_epochs: Final accepted epoch per leaf.
        node_epochs: Final accepted epoch per interior (non-root) agent,
            keyed by dotted path.
        final_epochs: Final controller epoch per interior node (root
            included), keyed by dotted path.
        zombie_free: Whether every endpoint's final live extra is covered
            by its parent controller's outstanding accounting.
        fallbacks / heals: Interior subtrees that lost an upstream lease
            (entered autonomous safe-cap mode) and re-acquired one.
        restarts: Interior controllers warm-restarted from checkpoints.
        net_stats: Message accounting summed across every level's network.
    """

    caps_w: tuple[tuple[float, ...], ...]
    budget_w: float
    n_leaves: int
    depth: int
    safe_caps_by_level_w: tuple[float, ...]
    max_total_cap_w: float
    leaf_epochs: tuple[int, ...]
    node_epochs: dict[str, int]
    final_epochs: dict[str, int]
    zombie_free: bool
    fallbacks: int
    heals: int
    restarts: int
    net_stats: dict[str, int]


class BudgetTreeSimulator:
    """A stepping budget tree (the chaos harness's kill/restore surface).

    Args:
        spec: Tree shape and budget.
        net: Network behaviour. Applied at every level; ``net.partitions``
            cut the ROOT fabric (window node ids are level-local), use
            ``partitions`` for deeper fabrics. Non-root levels get seeds
            derived from ``net.seed`` and the node path.
        config: Protocol tunables shared by every level.
        partitions: Optional extra partition schedules keyed by dotted
            interior path (``{"0": (PartitionWindow(...),)}``).
        rated_leaf_cap_w: Physical per-server clamp (default none).
    """

    def __init__(
        self,
        spec: TreeSpec,
        *,
        net: NetConfig,
        config: ControlPlaneConfig | None = None,
        partitions: Mapping[str, tuple] | None = None,
        rated_leaf_cap_w: float | None = None,
        trace_bus: TraceBus = NULL_TRACE_BUS,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._config = config if config is not None else ControlPlaneConfig()
        self.topology = TreeTopology(spec=spec, config=self._config)
        self._trace = trace_bus
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._rated = (
            float("inf") if rated_leaf_cap_w is None else rated_leaf_cap_w
        )
        partitions = dict(partitions or {})
        known = {format_path(p) for p in self.topology.interior_paths()}
        for key in partitions:
            if key not in known or key == "root":
                raise NetworkError(
                    f"partition key {key!r} does not name a non-root "
                    "interior node of this tree"
                )
        flat = self.topology.depth == 1  # degenerate: no scope labels

        self.nodes: dict[Path, MediationNode] = {}
        for path in self.topology.interior_paths():
            level_net = net
            if path:
                level_net = replace(
                    net,
                    partitions=tuple(partitions.get(format_path(path), ())),
                    seed=_derived_seed(net.seed, path),
                )
            self.nodes[path] = MediationNode(
                path,
                self.topology,
                net=level_net,
                config=self._config,
                trace_bus=trace_bus,
                metrics=self._metrics,
                scope="" if flat else format_path(path),
                rated_leaf_cap_w=self._rated,
            )
        # Uplink endpoints: interior agents defer shrinks, leaves are plain.
        for path, node in self.nodes.items():
            if not path:
                continue
            agent = SubtreeAgent(
                path[-1],
                safe_cap_w=self.topology.safe_caps_w[path],
                rated_cap_w=float("inf"),
                config=self._config,
                trace_bus=trace_bus,
                metrics=self._metrics,
                scope="" if flat else format_path(path[:-1]),
            )
            controller = node.controller
            # Adopting (extra', expiry') is safe iff the level's outstanding
            # watts fit the new budget now AND nothing outlives the new
            # horizon beyond the unconditional pool - the two ways a lease
            # can shrink (see the module docstring of hierarchy.node). Both
            # bounds read the controller's outstanding accounting, which
            # UNDER-counts reality while a stale-checkpoint restore is in
            # its safe hold (forgotten grants are still live downstream),
            # so no shrink may be adopted until the hold expires.
            agent.downstream_fits = (
                lambda extra_w, expiry_step, step, _c=controller: (
                    not _c.in_safe_hold(step)
                    and _c.total_outstanding_w(step)
                    <= _c.extras_pool_w + extra_w + _EPS
                    and _c.total_outstanding_w(max(step, expiry_step))
                    <= _c.extras_pool_w + _EPS
                )
            )
            node.agent = agent
        self.leaf_agents: list[NodeAgent] = []
        for leaf in self.topology.leaf_paths():
            self.leaf_agents.append(
                NodeAgent(
                    leaf[-1],
                    safe_cap_w=self.topology.safe_caps_w[leaf],
                    rated_cap_w=self._rated,
                    config=self._config,
                    trace_bus=trace_bus,
                    metrics=self._metrics,
                    scope="" if flat else format_path(leaf[:-1]),
                )
            )
        self._leaf_paths = self.topology.leaf_paths()
        #: Leaf flat-id ranges per node path, for loaded/outage lookups.
        self._leaf_ranges = {
            path: self.topology.leaves_under(path)
            for path in self.topology.safe_caps_w
        }
        self._had_extra: dict[Path, bool] = {
            path: False for path in self.nodes if path
        }
        self._fell_back: set[Path] = set()
        self.fallbacks = 0
        self.heals = 0
        self.restarts = 0
        self.max_total_cap_w = 0.0
        #: Per-leaf nominal demand carried upward as telemetry.
        self._leaf_demand_w = spec.budget_w / spec.n_leaves

    # ------------------------------------------------------------- plumbing

    @property
    def config(self) -> ControlPlaneConfig:
        return self._config

    def leaf_agent(self, flat_id: int) -> NodeAgent:
        return self.leaf_agents[flat_id]

    def _domain_down(
        self, path: Path, step: int, outages: Sequence[SubtreeOutage]
    ) -> bool:
        return any(
            o.start_step <= step < o.end_step
            and path[: len(o.path)] == o.path
            for o in outages
        )

    # ----------------------------------------------------------------- step

    def step(
        self,
        step: int,
        loaded_leaves: frozenset[int],
        *,
        leaf_down: frozenset[int] = frozenset(),
        outages: Sequence[SubtreeOutage] = (),
    ) -> tuple[float, ...]:
        """Advance every level by one step and check the invariant.

        Returns the per-leaf effective caps; raises
        :class:`~repro.errors.SimulationError` when any interior node's
        children collectively out-cap its enforced budget.
        """
        # Uplink agents first, shallow to deep, ids in order - within any
        # single fabric this is exactly the flat runner's "agents then
        # controller" ordering.
        for path, node in self.nodes.items():
            agent = node.agent
            if agent is None:
                continue
            agent.demand_w = node.controller.total_reported_demand_w()
            agent.up = not self._domain_down(path, step, outages)
            parent = self.nodes[path[:-1]]
            agent.step(step, parent.network)
        for flat_id, agent in enumerate(self.leaf_agents):
            leaf_path = self._leaf_paths[flat_id]
            agent.demand_w = (
                self._leaf_demand_w if flat_id in loaded_leaves else 0.0
            )
            agent.up = flat_id not in leaf_down and not self._domain_down(
                leaf_path, step, outages
            )
            parent = self.nodes[leaf_path[:-1]]
            agent.step(step, parent.network)

        # Controllers root-first, each with its bonus refreshed from the
        # freshly stepped uplink agent.
        for path, node in self.nodes.items():
            up = not self._domain_down(path, step, outages)
            loaded_children = frozenset(
                child[-1]
                for child in self.topology.children(path)
                if any(
                    leaf in loaded_leaves
                    for leaf in self._leaf_ranges[child]
                )
            )
            node.step_controller(step, loaded_children, up=up)

        self._track_fallbacks(step)
        row = tuple(
            agent.effective_cap_w(step) for agent in self.leaf_agents
        )
        self._check_invariant(step, row)
        return row

    def _track_fallbacks(self, step: int) -> None:
        for path, node in self.nodes.items():
            if not path:
                continue
            agent = node.agent
            has_extra = agent is not None and agent.live_extra_w(step) > _EPS
            before = self._had_extra[path]
            if before and not has_extra:
                self.fallbacks += 1
                self._fell_back.add(path)
                self._metrics.counter("hierarchy.fallbacks").inc()
                self._trace.emit(
                    "hier-fallback",
                    {
                        "path": format_path(path),
                        "safe_cap_w": self.topology.safe_caps_w[path],
                        "step": step,
                    },
                )
            elif has_extra and not before:
                # The very first grant is delegation, not a heal: only a
                # node that previously fell back to its safe tier heals.
                if path in self._fell_back:
                    self._fell_back.discard(path)
                    self.heals += 1
                    self._metrics.counter("hierarchy.heals").inc()
                    self._trace.emit(
                        "hier-heal",
                        {"path": format_path(path), "step": step},
                    )
            self._had_extra[path] = has_extra

    def _check_invariant(self, step: int, leaf_row: tuple[float, ...]) -> None:
        for path, node in self.nodes.items():
            budget = node.enforced_budget_w(step)
            total = 0.0
            for child in self.topology.children(path):
                if child in self.nodes:
                    total += self.nodes[child].enforced_budget_w(step)
                else:
                    total += leaf_row[self.topology.leaf_index(child)]
            if total > budget + _EPS * max(1, node.n_children):
                raise SimulationError(
                    f"hierarchy invariant violated at step {step}, node "
                    f"{format_path(path)}: children enforce {total:.6f} W "
                    f"against an enforced budget of {budget:.6f} W"
                )
        root_total = sum(leaf_row)
        self.max_total_cap_w = max(self.max_total_cap_w, root_total)
        if root_total > self.topology.spec.budget_w + _EPS * len(leaf_row):
            raise SimulationError(
                f"hierarchy invariant violated at step {step}: leaf caps "
                f"sum to {root_total:.6f} W against the datacenter budget "
                f"{self.topology.spec.budget_w:.6f} W"
            )

    # ------------------------------------------------------- crash/restore

    def checkpoint(self, path: Path) -> dict:
        """Snapshot one interior node (PR 2 codec convention)."""
        return self.nodes[path].state_dict()

    def restore(
        self, path: Path, state: dict, step: int, *, checkpoint_age_steps: int
    ) -> None:
        """Warm-restart an interior controller from a (possibly stale)
        checkpoint.

        The agent half is journaled synchronously (flat-plane convention:
        a :class:`NodeAgent`'s epoch survives crashes), so only the
        controller is rolled back; it re-enters service in the safe-hold
        posture with its epoch counter bumped past anything the dead
        incarnation could have issued.
        """
        node = self.nodes[path]
        node.controller.load_state_dict(state["controller"])
        node.controller.restart(
            step,
            epochs_to_skip=(checkpoint_age_steps + 1) * node.n_children,
        )
        self.restarts += 1
        self._metrics.counter("hierarchy.restarts").inc()
        self._trace.emit(
            "hier-restart",
            {
                "path": format_path(path),
                "step": step,
                "checkpoint_age_steps": checkpoint_age_steps,
            },
        )

    # -------------------------------------------------------------- summary

    def zombie_free(self, final_step: int) -> bool:
        """No endpoint enforces an extra its parent stopped accounting."""
        for path, node in self.nodes.items():
            for child in self.topology.children(path):
                if child in self.nodes:
                    agent = self.nodes[child].agent
                else:
                    agent = self.leaf_agents[self.topology.leaf_index(child)]
                if agent is None:
                    continue
                if (
                    agent.live_extra_w(final_step)
                    > node.controller.outstanding_w(child[-1], final_step)
                    + _EPS
                ):
                    return False
        return True

    def net_stats(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for node in self.nodes.values():
            for key, value in node.network.stats.to_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals


def run_budget_tree(
    spec: TreeSpec,
    loaded_counts: Sequence[int],
    *,
    net: NetConfig,
    config: ControlPlaneConfig | None = None,
    leaf_down_sets: Sequence[frozenset[int]] | None = None,
    subtree_outages: tuple[SubtreeOutage, ...] = (),
    partitions: Mapping[str, tuple] | None = None,
    rated_leaf_cap_w: float | None = None,
    drain_steps: int = 0,
    trace_bus: TraceBus = NULL_TRACE_BUS,
    metrics: MetricsRegistry | None = None,
) -> HierarchyOutcome:
    """Replay a budget tree over a load/outage schedule.

    Args:
        loaded_counts: Offered load per step; the first ``k`` leaves are
            loaded (the flat runner's inversion, so a depth-1 tree replays
            :func:`~repro.cluster.controlplane.run_control_plane`
            bit-identically).
        leaf_down_sets: Dead leaf servers per step (flat ids).
        subtree_outages: Failure-domain (PDU/rack) windows; validated
            against the tree and trace.
        partitions: Extra partition schedules for non-root fabrics, keyed
            by dotted interior path.
        drain_steps: Clean extra steps after the schedule (final load, no
            faults) so leases renew and retries settle; their caps are not
            part of ``caps_w``.

    Raises:
        SimulationError: if the budget invariant is violated at any node
            on any step (a protocol bug by definition).
        NetworkError / ConfigurationError: for malformed schedules.
    """
    steps = len(loaded_counts)
    if steps == 0:
        raise NetworkError("budget-tree schedule needs at least one step")
    if any(not 0 <= k <= spec.n_leaves for k in loaded_counts):
        raise NetworkError("loaded_counts entries must be in [0, n_leaves]")
    if leaf_down_sets is None:
        leaf_down_sets = [frozenset()] * steps
    if len(leaf_down_sets) != steps:
        raise NetworkError(
            f"leaf_down_sets has {len(leaf_down_sets)} entries for "
            f"{steps} steps"
        )
    registry = metrics if metrics is not None else MetricsRegistry()
    sim = BudgetTreeSimulator(
        spec,
        net=net,
        config=config,
        partitions=partitions,
        rated_leaf_cap_w=rated_leaf_cap_w,
        trace_bus=trace_bus,
        metrics=registry,
    )
    outages = validate_subtree_outages(
        subtree_outages, sim.topology, n_steps=steps
    )

    caps: list[tuple[float, ...]] = []
    last_loaded = frozenset(range(loaded_counts[-1]))
    for step in range(steps + drain_steps):
        if step < steps:
            loaded = frozenset(range(loaded_counts[step]))
            down = leaf_down_sets[step]
            active = outages
        else:
            loaded, down, active = last_loaded, frozenset(), ()
        row = sim.step(step, loaded, leaf_down=down, outages=active)
        if step < steps:
            caps.append(row)

    final_step = steps + drain_steps - 1
    for key, value in sim.net_stats().items():
        registry.counter(f"netsim.{key}").inc(value)
    registry.gauge("hierarchy.levels").set(float(spec.depth))
    registry.gauge("hierarchy.leaves").set(float(spec.n_leaves))
    registry.gauge("hierarchy.nodes").set(float(len(sim.nodes)))
    registry.gauge("hierarchy.max_utilization").set(
        sim.max_total_cap_w / spec.budget_w
    )
    safe_by_level = tuple(
        sim.topology.safe_caps_w[(0,) * depth]
        for depth in range(1, spec.depth + 1)
    )
    if sim.topology.depth > 1:
        for depth in range(spec.depth):
            trace_bus.emit(
                "hier-level",
                {
                    "level": spec.level_names[depth],
                    "depth": depth,
                    "n_nodes": int(np.prod(spec.fanouts[:depth])) if depth else 1,
                    "node_budget_w": sim.topology.safe_caps_w[(0,) * depth],
                    "child_safe_cap_w": safe_by_level[depth],
                },
            )
    return HierarchyOutcome(
        caps_w=tuple(caps),
        budget_w=spec.budget_w,
        n_leaves=spec.n_leaves,
        depth=spec.depth,
        safe_caps_by_level_w=safe_by_level,
        max_total_cap_w=sim.max_total_cap_w,
        leaf_epochs=tuple(agent.epoch for agent in sim.leaf_agents),
        node_epochs={
            format_path(p): node.agent.epoch
            for p, node in sim.nodes.items()
            if node.agent is not None
        },
        final_epochs={
            format_path(p): node.controller.epoch
            for p, node in sim.nodes.items()
        },
        zombie_free=sim.zombie_free(final_step),
        fallbacks=sim.fallbacks,
        heals=sim.heals,
        restarts=sim.restarts,
        net_stats=sim.net_stats(),
    )
