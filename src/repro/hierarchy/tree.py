"""Budget-tree topology: static safe tiers and failure domains.

A budget tree turns the flat cluster control plane into a datacenter:
the root (datacenter) level leases watts to PDU-level controllers, PDUs
lease to racks, racks to servers - every edge running the *same*
epoch/lease protocol over its own :class:`~repro.netsim.network.SimNetwork`.

The structural decision that makes the fallback waterfall compose is that
the **safe tier is static**: every node's unconditional safe cap is a pure
function of the tree shape, computed here once at build time.

    ``S(root) = B``;  ``S(child) = quantize((1 - g) * S(parent) / fanout)``

A node that hears nothing from its parent - partition, parent crash,
lease expiry - may always distribute its safe cap among its children,
whose own safe caps were carved from exactly that number. Summing the
recurrence level by level gives ``sum of leaf safe caps <= B`` no matter
how many levels are partitioned at once; dynamic extras ride on top as
leases and die with their upstream lease (the bonus clamp in
:class:`~repro.cluster.controlplane.ClusterController`).

Nodes are addressed by **paths**: the root is ``()``, its children
``(0,)``, ``(1,)``, ..., a rack under PDU 2 is ``(2, 0)``. The dotted
string form (``"2.0"``) is the CLI / fault-plan spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.controlplane import ControlPlaneConfig
from repro.errors import ConfigurationError, NetworkError

__all__ = [
    "SubtreeOutage",
    "TreeSpec",
    "TreeTopology",
    "format_path",
    "parse_path",
    "subtree_outages_from_fault_plan",
    "validate_subtree_outages",
]

#: Hard ceiling on mediation levels (deeper than rack -> server has no
#: physical analogue and the step cost grows with every level).
MAX_DEPTH = 6

_DEFAULT_LEVEL_NAMES = {
    1: ("datacenter", "server"),
    2: ("datacenter", "pdu", "server"),
    3: ("datacenter", "pdu", "rack", "server"),
}

Path = tuple[int, ...]


def parse_path(text: str) -> Path:
    """Parse the dotted node-path spelling (``"2.0"`` -> ``(2, 0)``).

    Raises:
        ConfigurationError: for an empty or non-numeric path.
    """
    parts = text.split(".") if text else []
    if not parts or not all(p.isdigit() for p in parts):
        raise ConfigurationError(
            f"node path must be dot-separated indices like '2.0', got {text!r}"
        )
    return tuple(int(p) for p in parts)


def format_path(path: Path) -> str:
    """The dotted spelling of ``path`` (root is ``"root"``)."""
    return ".".join(str(p) for p in path) if path else "root"


@dataclass(frozen=True)
class TreeSpec:
    """Shape and budget of one mediation tree.

    Attributes:
        fanouts: Children per node at each interior level, root first -
            ``(4, 5, 10)`` is 4 PDUs x 5 racks x 10 servers = 200 leaves.
            A single entry is the flat cluster (and replays bit-identically
            to :func:`~repro.cluster.controlplane.run_control_plane`).
        budget_w: The datacenter budget delegated from the root.
        quantum_w: Cap grid used by every level's controller.
        level_names: Optional display names, one per level including the
            leaf level (``len(fanouts) + 1`` entries); sensible defaults
            up to datacenter/pdu/rack/server.
    """

    fanouts: tuple[int, ...]
    budget_w: float
    quantum_w: float = 2.0
    level_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.fanouts:
            raise NetworkError("a budget tree needs at least one level")
        if len(self.fanouts) > MAX_DEPTH:
            raise NetworkError(
                f"tree depth {len(self.fanouts)} exceeds the maximum {MAX_DEPTH}"
            )
        if any(f < 1 for f in self.fanouts):
            raise NetworkError("every fanout must be >= 1")
        if self.budget_w <= 0:
            raise NetworkError("tree budget must be positive")
        if self.quantum_w <= 0:
            raise NetworkError("cap quantum must be positive")
        names = self.level_names
        if not names:
            names = _DEFAULT_LEVEL_NAMES.get(
                len(self.fanouts),
                tuple(f"level{i}" for i in range(len(self.fanouts)))
                + ("server",),
            )
            object.__setattr__(self, "level_names", names)
        if len(self.level_names) != len(self.fanouts) + 1:
            raise NetworkError(
                f"level_names needs {len(self.fanouts) + 1} entries "
                f"(levels including the leaf level), got {len(self.level_names)}"
            )

    @property
    def depth(self) -> int:
        return len(self.fanouts)

    @property
    def n_leaves(self) -> int:
        return int(np.prod(self.fanouts))

    def to_dict(self) -> dict:
        return {
            "fanouts": list(self.fanouts),
            "budget_w": self.budget_w,
            "quantum_w": self.quantum_w,
            "level_names": list(self.level_names),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TreeSpec":
        try:
            return cls(
                fanouts=tuple(int(f) for f in doc["fanouts"]),
                budget_w=float(doc["budget_w"]),
                quantum_w=float(doc.get("quantum_w", 2.0)),
                level_names=tuple(doc.get("level_names", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed tree spec: {exc}") from None


@dataclass(frozen=True)
class TreeTopology:
    """The computed static structure of a :class:`TreeSpec`.

    Everything safety-critical is decided here, once: which paths exist
    and every node's unconditional safe cap. The runner and the chaos
    harness consult the topology; they never re-derive shares.
    """

    spec: TreeSpec
    config: ControlPlaneConfig
    #: Every node path -> its static safe cap (the root maps to the budget).
    safe_caps_w: dict[Path, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.safe_caps_w:
            return
        quantum = self.spec.quantum_w
        guard = self.config.safe_guard_band

        def quantize(value: float) -> float:
            return max(0.0, float(np.floor(value / quantum)) * quantum)

        caps: dict[Path, float] = {(): self.spec.budget_w}
        frontier: list[Path] = [()]
        for level, fanout in enumerate(self.spec.fanouts):
            next_frontier: list[Path] = []
            for path in frontier:
                child_cap = quantize((1.0 - guard) * caps[path] / fanout)
                if child_cap <= 0:
                    raise NetworkError(
                        f"budget {self.spec.budget_w} W leaves no safe cap at "
                        f"{self.spec.level_names[level + 1]} level "
                        f"(node {format_path(path)} share quantizes to 0 "
                        f"at quantum {quantum} W)"
                    )
                for i in range(fanout):
                    child = path + (i,)
                    caps[child] = child_cap
                    next_frontier.append(child)
            frontier = next_frontier
        object.__setattr__(self, "safe_caps_w", caps)

    # --------------------------------------------------------------- queries

    @property
    def depth(self) -> int:
        return self.spec.depth

    @property
    def n_leaves(self) -> int:
        return self.spec.n_leaves

    def fanout_at(self, path: Path) -> int:
        """Children of the node at ``path`` (0 for leaves)."""
        if len(path) >= self.depth:
            return 0
        return self.spec.fanouts[len(path)]

    def exists(self, path: Path) -> bool:
        return path in self.safe_caps_w

    def is_interior(self, path: Path) -> bool:
        """Whether ``path`` runs a controller (root included)."""
        return self.exists(path) and len(path) < self.depth

    def interior_paths(self) -> list[Path]:
        """Every controller-bearing path, BFS order, root first."""
        return sorted(
            (p for p in self.safe_caps_w if len(p) < self.depth),
            key=lambda p: (len(p), p),
        )

    def children(self, path: Path) -> list[Path]:
        return [path + (i,) for i in range(self.fanout_at(path))]

    def leaf_paths(self) -> list[Path]:
        return sorted(p for p in self.safe_caps_w if len(p) == self.depth)

    def leaf_index(self, path: Path) -> int:
        """Flat leaf id (row-major over the fanouts) of a leaf path."""
        if len(path) != self.depth:
            raise ConfigurationError(
                f"{format_path(path)} is not a leaf path"
            )
        index = 0
        for level, part in enumerate(path):
            stride = int(np.prod(self.spec.fanouts[level + 1 :], initial=1))
            index += part * stride
        return index

    def leaves_under(self, path: Path) -> range:
        """Flat leaf ids inside the subtree rooted at ``path``."""
        if not self.exists(path):
            raise ConfigurationError(
                f"node {format_path(path)} does not exist in this tree"
            )
        stride = int(np.prod(self.spec.fanouts[len(path) :], initial=1))
        start = 0
        for level, part in enumerate(path):
            start += part * int(
                np.prod(self.spec.fanouts[level + 1 :], initial=1)
            )
        return range(start, start + stride)


# -------------------------------------------------------- failure domains


@dataclass(frozen=True)
class SubtreeOutage:
    """A whole failure domain (PDU, rack) dark for a step window.

    Every node in the subtree - the interior controller, its agents, and
    all leaves below - is down for ``[start_step, end_step)``. The parent
    sees silence, suspects, and reclaims leases as they provably expire;
    sibling subtrees keep mediating (that containment is what the chaos
    suite asserts).
    """

    path: Path
    start_step: int
    end_step: int

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError(
                "a subtree outage cannot target the root "
                "(that is a datacenter blackout, not a failure domain)"
            )
        if self.start_step < 0 or self.end_step <= self.start_step:
            raise ConfigurationError(
                f"subtree outage window [{self.start_step}, {self.end_step}) "
                "must be non-empty and non-negative"
            )


def validate_subtree_outages(
    outages: tuple[SubtreeOutage, ...],
    topology: TreeTopology,
    *,
    n_steps: int,
) -> tuple[SubtreeOutage, ...]:
    """Check a failure-domain schedule against a concrete tree and trace.

    Mirrors :func:`~repro.cluster.cluster.validate_outages`: unknown or
    leaf paths raise a one-line :class:`~repro.errors.ConfigurationError`
    naming the path, windows past the trace are dropped, overhanging
    windows are clamped, and overlapping windows for the same path (or a
    nested ancestor/descendant pair) are contradictory.
    """
    kept: list[SubtreeOutage] = []
    seen: list[tuple[Path, int, int, int]] = []
    for index, outage in enumerate(outages):
        if not topology.exists(outage.path):
            raise ConfigurationError(
                f"outages[{index}].path: node {format_path(outage.path)} "
                "does not exist in this tree"
            )
        if not topology.is_interior(outage.path):
            raise ConfigurationError(
                f"outages[{index}].path: {format_path(outage.path)} is a "
                "leaf; use a node outage for single servers"
            )
        if outage.start_step >= n_steps:
            continue
        end_step = min(outage.end_step, n_steps)
        for path2, start2, end2, index2 in seen:
            nested = (
                outage.path[: len(path2)] == path2
                or path2[: len(outage.path)] == outage.path
            )
            if nested and outage.start_step < end2 and start2 < end_step:
                raise ConfigurationError(
                    f"outages[{index}].start_step: overlaps outages[{index2}] "
                    f"for subtree {format_path(outage.path)}"
                )
        seen.append((outage.path, outage.start_step, end_step, index))
        if end_step != outage.end_step:
            outage = SubtreeOutage(
                path=outage.path,
                start_step=outage.start_step,
                end_step=end_step,
            )
        kept.append(outage)
    return tuple(kept)


def subtree_outages_from_fault_plan(
    plan, *, step_s: float, topology: TreeTopology
) -> tuple[SubtreeOutage, ...]:
    """Convert a fault plan's ``pdu``/``rack`` specs into subtree outages.

    The companion of :func:`~repro.cluster.cluster.outages_from_fault_plan`:
    that converter takes the ``node`` specs, this one takes the
    failure-domain specs, and the per-server injector skips all three. A
    ``pdu`` spec must name a depth-1 node; a ``rack`` spec a node at the
    deepest interior level. Unknown paths are rejected naming the path -
    the same contract the node-outage validator enforces for server ids.
    """
    if step_s <= 0:
        raise ConfigurationError("step_s must be positive")
    depth_for = {"pdu": 1, "rack": topology.depth - 1}
    outages = []
    for spec in plan.specs:
        if spec.kind not in depth_for:
            continue
        want_depth = depth_for[spec.kind]
        if want_depth < 1:
            raise ConfigurationError(
                f"a {spec.kind} fault needs a tree with interior levels; "
                f"this tree has depth {topology.depth}"
            )
        path = parse_path(spec.target)
        if len(path) != want_depth or not topology.exists(path):
            raise ConfigurationError(
                f"{spec.kind} fault target {spec.target!r} does not name a "
                f"{topology.spec.level_names[want_depth]}-level node in "
                "this tree"
            )
        start = int(np.floor(spec.start_s / step_s))
        end = int(np.ceil((spec.start_s + spec.duration_s) / step_s))
        outages.append(
            SubtreeOutage(path=path, start_step=start, end_step=max(end, start + 1))
        )
    return tuple(outages)
