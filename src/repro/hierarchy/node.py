"""One budget-tree node: agent toward the parent, controller toward children.

An interior node of the tree is *both* halves of the flat control plane at
once: a :class:`SubtreeAgent` (a :class:`~repro.cluster.controlplane.NodeAgent`
subclass) speaking the lease protocol up to its parent, and an unmodified
:class:`~repro.cluster.controlplane.ClusterController` distributing the
node's budget down to its children over the node's own
:class:`~repro.netsim.network.SimNetwork`. :class:`MediationNode` glues the
two together, refreshing the controller's bonus lease from the agent's
journaled grant every step.

The one protocol difference an interior endpoint needs is the **deferred
shrink**: a leaf can adopt a smaller grant the instant it arrives, but an
interior node may have sub-leased the watts being taken away. Acking the
shrink immediately would let the parent redistribute those watts while
children still hold leases on them - a real double-spend. "Shrink" here
covers both dimensions of a lease: fewer watts, and an *earlier expiry* -
a grant that moves the lease horizon backward (the parent clamped it to
its own upstream bonus) would strand downstream grants that were clamped
to the old, later horizon. So the subtree agent keeps enforcing (and
reporting) the old grant until the new one is downstream-safe - the watts
outstanding fit the post-shrink budget AND nothing outstanding outlives
the new expiry beyond the node's unconditional pool - then adopts and
acks. The parent keeps the old grant in its outstanding accounting the
whole time (it was never acked away), so the global invariant never
wobbles; convergence takes at most one child-lease lifetime because
issuance immediately drops to the pending target
(:meth:`SubtreeAgent.issuance_extra_w`).
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.controlplane import (
    ClusterController,
    ControlPlaneConfig,
    NodeAgent,
    SetCapCmd,
)
from repro.hierarchy.tree import Path, TreeTopology, format_path
from repro.netsim.network import CONTROLLER, NetConfig, SimNetwork
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACE_BUS, TraceBus

__all__ = ["MediationNode", "SubtreeAgent"]

_EPS = 1e-6


class SubtreeAgent(NodeAgent):
    """An interior node's endpoint toward its parent.

    Identical to a leaf agent except for shrink deferral; grows and
    renewals apply immediately, so a tree of depth one behaves exactly
    like the flat plane (leaves never defer - they use the base class).
    """

    def __init__(
        self,
        node_id: int,
        *,
        safe_cap_w: float,
        rated_cap_w: float,
        config: ControlPlaneConfig,
        trace_bus: TraceBus = NULL_TRACE_BUS,
        metrics: MetricsRegistry | None = None,
        scope: str = "",
    ) -> None:
        super().__init__(
            node_id,
            safe_cap_w=safe_cap_w,
            rated_cap_w=rated_cap_w,
            config=config,
            trace_bus=trace_bus,
            metrics=metrics,
            scope=scope,
        )
        self._deferred: SetCapCmd | None = None
        #: ``(new_extra_w, new_expiry_step, step) -> bool`` - whether the
        #: node's own level can already live within the post-shrink budget
        #: and horizon. Wired by the owning :class:`MediationNode` (it needs
        #: the controller, which needs the network, which needs... so it
        #: cannot be a constructor argument).
        self.downstream_fits: Callable[[float, int, int], bool] | None = None

    @property
    def deferred_epoch(self) -> int | None:
        """Epoch of the shrink being deferred, if any (for tests/telemetry)."""
        return None if self._deferred is None else self._deferred.epoch

    def issuance_extra_w(self, step: int) -> float:
        """The bonus the node's controller may *issue against* at ``step``.

        While a shrink is deferred this is the post-shrink target (never
        hand out watts about to be reclaimed), though the node still
        *enforces* the old grant. Without a deferral it is simply the live
        extra.
        """
        live = self.live_extra_w(step)
        if self._deferred is not None:
            return min(live, self._deferred.extra_w)
        return live

    def _accept(self, message: SetCapCmd, step: int, network: SimNetwork) -> None:
        live = self.live_extra_w(step)
        grows = message.extra_w >= live - _EPS
        # A live lease's horizon must never move backward under the node's
        # feet: grants issued downstream were expiry-clamped to the horizon
        # in force, and a shorter one would strand them past the new lease.
        keeps_horizon = (
            live <= _EPS or message.lease_expiry_step >= self.lease_expiry_step
        )
        if grows and keeps_horizon:
            # Plain grow or renewal: adopt immediately, like any leaf. A
            # newer grow supersedes an older deferred shrink outright.
            if self._deferred is not None and message.epoch >= self._deferred.epoch:
                self._deferred = None
            super()._accept(message, step, network)
            return
        if self._deferred is None or message.epoch >= self._deferred.epoch:
            self._deferred = message
            self._metrics.counter("hierarchy.deferred_shrinks").inc()

    def _try_apply_deferred(self, step: int, network: SimNetwork) -> None:
        if self._deferred is None or not self.up:
            return
        cmd = self._deferred
        if cmd.epoch < self.epoch:
            self._deferred = None  # superseded while waiting
            return
        if self.downstream_fits is None or self.downstream_fits(
            cmd.extra_w, cmd.lease_expiry_step, step
        ):
            self._deferred = None
            super()._accept(cmd, step, network)

    def step(self, step: int, network: SimNetwork) -> None:
        if not self.up:
            # A crashed node's deferred command was process state, not
            # journal state: it dies with the process. The parent's retries
            # and anti-entropy will re-deliver the target after recovery.
            self._deferred = None
        super().step(step, network)
        self._try_apply_deferred(step, network)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["deferred"] = (
            None
            if self._deferred is None
            else {
                "node": self._deferred.node,
                "epoch": self._deferred.epoch,
                "extra_w": self._deferred.extra_w,
                "lease_expiry_step": self._deferred.lease_expiry_step,
            }
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        doc = state.get("deferred")
        self._deferred = (
            None
            if doc is None
            else SetCapCmd(
                node=int(doc["node"]),
                epoch=int(doc["epoch"]),
                extra_w=float(doc["extra_w"]),
                lease_expiry_step=int(doc["lease_expiry_step"]),
            )
        )


class MediationNode:
    """One interior node: its downlink network, controller, uplink agent.

    Args:
        path: The node's tree path (``()`` for the root).
        topology: The computed tree structure (safe tiers included).
        net: The downlink network behaviour for this node's children.
        config: Protocol tunables (shared by every level).
        scope: Trace-payload label; empty for degenerate depth-1 trees so
            they hash identically to the flat plane.
    """

    def __init__(
        self,
        path: Path,
        topology: TreeTopology,
        *,
        net: NetConfig,
        config: ControlPlaneConfig,
        trace_bus: TraceBus = NULL_TRACE_BUS,
        metrics: MetricsRegistry | None = None,
        scope: str = "",
        rated_leaf_cap_w: float = float("inf"),
    ) -> None:
        self.path = path
        self.scope = scope
        fanout = topology.fanout_at(path)
        child_safe = topology.safe_caps_w[path + (0,)]
        self.network = SimNetwork(net, fanout)
        self.controller = ClusterController(
            fanout,
            topology.safe_caps_w[path],
            quantum_w=topology.spec.quantum_w,
            rated_cap_w=(
                rated_leaf_cap_w
                if len(path) + 1 == topology.depth
                else float("inf")
            ),
            config=config,
            seed=net.seed,
            trace_bus=trace_bus,
            metrics=metrics,
            safe_cap_w=child_safe,
            scope=scope,
        )
        #: The uplink endpoint; ``None`` at the root (set by the builder).
        self.agent: SubtreeAgent | None = None
        self._config = config

    @property
    def n_children(self) -> int:
        return self.controller.n_nodes

    def enforced_budget_w(self, step: int) -> float:
        """The budget this node may distribute at ``step``.

        The root's budget is unconditional; everyone else's is their static
        safe cap plus whatever upstream lease their agent still enforces.
        """
        if self.agent is None:
            return self.controller.budget_w
        return self.agent.effective_cap_w(step)

    def step_controller(
        self, step: int, loaded_children: frozenset[int], *, up: bool = True
    ) -> None:
        """Advance the downlink half by one step.

        A down controller loses its inbox (the crashed process's memory)
        but the network keeps flowing - children heartbeat into the void
        and their leases keep expiring on their own clocks.
        """
        if not up:
            self.network.deliver(CONTROLLER, step)
            return
        if self.agent is not None:
            self.controller.set_bonus(
                self.agent.issuance_extra_w(step), self.agent.lease_expiry_step
            )
        self.controller.step(step, self.network, loaded_children)

    def state_dict(self) -> dict:
        return {
            "path": format_path(self.path),
            "controller": self.controller.state_dict(),
            "agent": None if self.agent is None else self.agent.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.controller.load_state_dict(state["controller"])
        if self.agent is not None and state.get("agent") is not None:
            self.agent.load_state_dict(state["agent"])
