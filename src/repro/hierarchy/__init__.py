"""Hierarchical budget mediation: datacenter -> PDU -> rack -> server.

A :class:`~repro.hierarchy.tree.TreeSpec` stacks the flat cluster control
plane (:mod:`repro.cluster.controlplane`) into levels: every interior node
leases watts downward over its own simulated network and aggregates
demand telemetry upward, and the whole tree degrades domain-by-domain -
a partitioned or orphaned subtree falls back to its statically carved
safe tier and keeps mediating its children.
"""

from repro.hierarchy.node import MediationNode, SubtreeAgent
from repro.hierarchy.runner import (
    BudgetTreeSimulator,
    HierarchyOutcome,
    run_budget_tree,
)
from repro.hierarchy.tree import (
    SubtreeOutage,
    TreeSpec,
    TreeTopology,
    format_path,
    parse_path,
    subtree_outages_from_fault_plan,
    validate_subtree_outages,
)

__all__ = [
    "BudgetTreeSimulator",
    "HierarchyOutcome",
    "MediationNode",
    "SubtreeAgent",
    "SubtreeOutage",
    "TreeSpec",
    "TreeTopology",
    "format_path",
    "parse_path",
    "run_budget_tree",
    "subtree_outages_from_fault_plan",
    "validate_subtree_outages",
]
