"""``repro.engine``: the vectorized fast path, pinned to the scalar reference.

Two layers:

* **Vector models** (:mod:`repro.engine.models`): drop-in subclasses of the
  scalar performance/power models that serve every query from precomputed
  full-knob-space response surfaces (:mod:`repro.engine.surface`). Selected
  with ``engine="vector"`` on :class:`~repro.server.server.SimulatedServer`
  and threaded through every experiment driver and the CLI (``--engine``).
  Bit-identical to the scalar path by construction - the golden-trace suite
  pins both, and ``tests/engine/test_differential.py`` fuzzes the claim.
* **Batch fleet** (:mod:`repro.engine.batch`): N servers advanced per tick
  with array operations, for fleet-scale throughput
  (``benchmarks/bench_engine_throughput.py``).
* **Mediated fleet** (:mod:`repro.engine.planner`): whole *mediated* ticks —
  planning stack included — replayed in horizon segments with closed-form
  accumulator kernels (``benchmarks/bench_mediator_throughput.py``).
  Exported lazily: the planner imports the mediator, which imports the
  server, which imports this package, so a top-level import here would be
  circular.

The scalar path remains the golden reference; the vector path exists to make
it affordable at scale, never to redefine it.
"""

from __future__ import annotations

from repro.engine.batch import BatchFleet
from repro.engine.models import VectorPerformanceModel, VectorPowerModel
from repro.engine.surface import ConfigGrid, ResponseSurface, grid_for, surface_for
from repro.errors import ConfigurationError

__all__ = [
    "ENGINE_KINDS",
    "BatchFleet",
    "ConfigGrid",
    "MediatedFleet",
    "ResponseSurface",
    "VectorPerformanceModel",
    "VectorPowerModel",
    "grid_for",
    "surface_for",
    "validate_engine",
]


def __getattr__(name: str):
    # PEP 562 lazy export: break the engine -> planner -> mediator ->
    # server -> engine import cycle by resolving MediatedFleet on first use.
    if name == "MediatedFleet":
        from repro.engine.planner import MediatedFleet

        return MediatedFleet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: The engine switch's accepted values, in reference-first order.
ENGINE_KINDS = ("scalar", "vector")


def validate_engine(engine: str) -> str:
    """Normalize/validate an ``engine=`` argument.

    Raises:
        ConfigurationError: for anything but the supported kinds.
    """
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINE_KINDS}"
        )
    return engine
