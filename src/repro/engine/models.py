"""Vector drop-in models: the scalar API served from cached surfaces.

:class:`VectorPerformanceModel` and :class:`VectorPowerModel` subclass the
scalar models and answer every per-``(profile, knob)`` query as a gather
from the :mod:`repro.engine.surface` tables. Because the tables are built
with identical operation ordering (see that module's docstring), each
answer is bit-identical to the scalar computation - the engine, telemetry,
learn and defense phases all produce byte-identical traces either way.

Queries for knobs outside the discrete grid (none exist on the normal paths,
which validate knobs before actuation, but the API allows them) fall back to
the scalar superclass - the fallback is bitwise consistent with the tables
by construction, so mixing the two paths is safe.

Every returned value is a Python ``float`` (``float(np.float64)`` is exact),
so nothing downstream - JSON checkpoints, trace events, state dicts - ever
sees a numpy scalar.
"""

from __future__ import annotations

from repro.engine.surface import ConfigGrid, ResponseSurface, grid_for
from repro.server.config import KnobSetting, ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.profiles import WorkloadProfile

__all__ = ["VectorPerformanceModel", "VectorPowerModel"]


class VectorPerformanceModel(PerformanceModel):
    """Performance model backed by precomputed response surfaces."""

    def __init__(self, config: ServerConfig) -> None:
        super().__init__(config)
        self._grid: ConfigGrid = grid_for(config)
        #: Off-grid queries answered by the scalar superclass. Every unit
        #: here is a silent fast-path bypass; the mediator surfaces the sum
        #: as the ``engine.fallback`` metrics counter.
        self.fallbacks = 0

    @property
    def grid(self) -> ConfigGrid:
        """The shared knob grid (exposed for batch consumers)."""
        return self._grid

    def surface_of(self, profile: WorkloadProfile) -> ResponseSurface:
        """The profile's cached full-knob-space surface."""
        return self._grid.surface(profile)

    # Each override: O(1) gather on-grid, scalar-superclass off-grid.

    def compute_rate(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().compute_rate(profile, knob)
        return float(self._grid.surface(profile).compute_rate[idx])

    def usable_bandwidth_gbs(self, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().usable_bandwidth_gbs(knob)
        return float(self._grid.usable_bandwidth_gbs[idx])

    def memory_rate(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().memory_rate(profile, knob)
        return float(self._grid.surface(profile).memory_rate[idx])

    def rate(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().rate(profile, knob)
        return float(self._grid.surface(profile).rate[idx])

    def core_utilization(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().core_utilization(profile, knob)
        return float(self._grid.surface(profile).core_utilization[idx])

    def achieved_bandwidth_gbs(
        self, profile: WorkloadProfile, knob: KnobSetting
    ) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().achieved_bandwidth_gbs(profile, knob)
        return float(self._grid.surface(profile).achieved_bandwidth_gbs[idx])

    def peak_rate(self, profile: WorkloadProfile) -> float:
        return self._grid.surface(profile).peak_rate


class VectorPowerModel(PowerModel):
    """Power model backed by the same cached surfaces.

    Pass the :class:`VectorPerformanceModel` built for the *same config
    instance* (the superclass enforces the identity check); one is built
    implicitly when omitted.
    """

    def __init__(
        self, config: ServerConfig, perf_model: PerformanceModel | None = None
    ) -> None:
        if perf_model is None:
            perf_model = VectorPerformanceModel(config)
        super().__init__(config, perf_model)
        self._grid: ConfigGrid = grid_for(config)
        #: Off-grid queries answered by the scalar superclass (see
        #: :class:`VectorPerformanceModel`.fallbacks).
        self.fallbacks = 0

    def surface_of(self, profile: WorkloadProfile) -> ResponseSurface:
        """The profile's cached surface (the learn-path batch hook:
        :meth:`repro.core.utility.CandidateSet.from_models` gathers its
        power/perf columns instead of looping 432 scalar model calls)."""
        return self._grid.surface(profile)

    def core_power_w(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().core_power_w(profile, knob)
        return float(self._grid.surface(profile).core_power_w[idx])

    def dram_power_w(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().dram_power_w(profile, knob)
        return float(self._grid.surface(profile).dram_power_w[idx])

    def app_power_w(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        idx = self._grid.index_of(knob)
        if idx is None:
            self.fallbacks += 1
            return super().app_power_w(profile, knob)
        return float(self._grid.surface(profile).app_power_w[idx])
