"""Response surfaces: the whole knob space of one app, evaluated in one batch.

The scalar models (:mod:`repro.server.perf_model`,
:mod:`repro.server.power_model`) answer one ``(profile, knob)`` query at a
time with a chain of Python arithmetic. The PR 3 profiler shows the hot
phases (engine, telemetry, learn) spend their time re-running those chains
for the same few hundred points - the knob space has only 432 settings and a
profile's response over it never changes. A :class:`ResponseSurface`
evaluates every quantity the models expose over the *entire* knob space once,
with numpy array operations, and the vector models serve each subsequent
query as an O(1) gather.

**The equivalence contract.** The vector engine must reproduce the scalar
engine bit-for-bit - the golden-trace suite hashes every event, so "close"
is a failure. Two rules make that achievable:

1. *Identical operation ordering.* Every array expression below mirrors the
   scalar model's arithmetic term for term, in the same association order.
   IEEE-754 elementwise ``+ - * /``, ``minimum`` and ``maximum`` are
   correctly rounded in numpy exactly as in CPython, so an identically
   ordered expression produces identical bits.
2. *Scalar ``pow``.* ``**`` is the one operation numpy may route to a SIMD
   library (SVML et al.) that differs from CPython's ``libm`` ``pow`` by an
   ulp. :func:`_pow` therefore applies CPython's scalar ``float.__pow__``
   element by element. The knob space is small and surfaces are cached, so
   the cost is irrelevant.

When adding a new quantity to the batch path, follow the same recipe: copy
the scalar expression verbatim, replace branches with masks carrying the
exact branch values, route every ``**`` through :func:`_pow`, and extend the
differential suite to cover the new column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.server.config import KnobSetting, ServerConfig
from repro.workloads.profiles import WorkloadProfile

__all__ = ["ConfigGrid", "ResponseSurface", "grid_for", "surface_for"]


def _pow(base: np.ndarray, exponent: float) -> np.ndarray:
    """Elementwise ``base ** exponent`` via CPython's scalar ``pow``.

    numpy's ``**`` may dispatch to a vendor vector-math library whose results
    differ from ``libm`` by an ulp on some hosts; that single ulp would flip
    every downstream trace hash. Routing through ``float.__pow__`` keeps the
    vector path bit-identical to the scalar models on every platform.
    """
    return np.array([b ** exponent for b in base.tolist()], dtype=np.float64)


class ConfigGrid:
    """Profile-independent precomputation over one config's knob space.

    Holds the knob tuple in canonical order (f-major, then n, then m - the
    same order :meth:`ServerConfig.knob_space` defines), the knob -> index
    map used for O(1) lookups, and every array that depends on the knobs but
    not on the workload (usable bandwidth, per-core power). Profile surfaces
    built on this grid are cached here, keyed by the profile's numeric
    response-surface fields, so repeated runs over the catalog share them.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.knobs: tuple[KnobSetting, ...] = tuple(config.knob_space())
        self.index: dict[KnobSetting, int] = {k: i for i, k in enumerate(self.knobs)}
        self.cores = np.array([float(k.cores) for k in self.knobs], dtype=np.float64)
        self.dram_power_w = np.array(
            [k.dram_power_w for k in self.knobs], dtype=np.float64
        )
        freq = np.array([k.freq_ghz for k in self.knobs], dtype=np.float64)
        # Mirrors PerformanceModel.compute_rate / usable_bandwidth_gbs and
        # PowerModel.core_power_w term for term (see the module docstring).
        self.freq_ratio = freq / config.freq_max_ghz
        allocation_bw = (
            np.maximum(0.0, self.dram_power_w - config.dram_static_w)
            / config.dram_w_per_gbs
        )
        core_pull_bw = (
            self.cores * config.core_bw_gbs * (0.5 + 0.5 * self.freq_ratio)
        )
        self.usable_bandwidth_gbs = np.minimum(allocation_bw, core_pull_bw)
        self.per_core_power_w = config.p_core_peak_w * _pow(
            self.freq_ratio, config.core_power_exponent
        )
        self.max_index = self.index[config.max_knob]
        self._surfaces: dict[tuple, ResponseSurface] = {}

    def index_of(self, knob: KnobSetting) -> int | None:
        """Position of ``knob`` in the canonical order, ``None`` off-grid."""
        return self.index.get(knob)

    def surface(self, profile: WorkloadProfile) -> "ResponseSurface":
        """The (cached) response surface of ``profile`` on this grid.

        Keyed by the numeric fields that parameterize the response surface;
        ``name``/``total_work`` variants (``with_total_work``) share one
        surface, while ``scaled`` copies get their own.
        """
        key = (
            profile.parallel_fraction,
            profile.base_rate,
            profile.dvfs_sensitivity,
            profile.mem_gb_per_work,
            profile.activity_factor,
        )
        surface = self._surfaces.get(key)
        if surface is None:
            surface = _build_surface(self, profile)
            self._surfaces[key] = surface
        return surface


@dataclass(frozen=True)
class ResponseSurface:
    """Every model quantity of one profile, tabulated over the knob space.

    The arrays align with :attr:`ConfigGrid.knobs`; each entry is bitwise
    equal to what the scalar model returns for that knob.
    """

    grid: ConfigGrid
    compute_rate: np.ndarray
    memory_rate: np.ndarray
    rate: np.ndarray
    core_utilization: np.ndarray
    achieved_bandwidth_gbs: np.ndarray
    core_power_w: np.ndarray
    dram_power_w: np.ndarray
    app_power_w: np.ndarray
    peak_rate: float

    @property
    def knobs(self) -> tuple[KnobSetting, ...]:
        return self.grid.knobs


def _build_surface(grid: ConfigGrid, profile: WorkloadProfile) -> ResponseSurface:
    """Evaluate the full scalar model chain for one profile as array ops.

    Each block mirrors the corresponding scalar method; comments name them so
    drift between the two paths is reviewable side by side.
    """
    cfg = grid.config

    # PerformanceModel.compute_rate
    p = profile.parallel_fraction
    amdahl = 1.0 / ((1.0 - p) + p / grid.cores)
    freq_factor = _pow(grid.freq_ratio, profile.dvfs_sensitivity)
    compute_rate = profile.base_rate * amdahl * freq_factor

    # PerformanceModel.memory_rate / rate
    if profile.mem_gb_per_work == 0.0:
        memory_rate = np.full_like(compute_rate, np.inf)
        rate = compute_rate.copy()
    else:
        memory_rate = grid.usable_bandwidth_gbs / profile.mem_gb_per_work
        s = cfg.bottleneck_sharpness
        rate = np.zeros_like(compute_rate)
        valid = (memory_rate > 0.0) & (compute_rate > 0.0)
        blend = _pow(compute_rate[valid], -s) + _pow(memory_rate[valid], -s)
        rate[valid] = _pow(blend, -1.0 / s)

    # PerformanceModel.core_utilization
    core_utilization = np.zeros_like(compute_rate)
    positive = compute_rate > 0.0
    core_utilization[positive] = np.minimum(1.0, rate[positive] / compute_rate[positive])

    # PerformanceModel.achieved_bandwidth_gbs
    achieved_bandwidth_gbs = rate * profile.mem_gb_per_work

    # PowerModel.core_power_w / dram_power_w / app_power_w
    core_power_w = (
        grid.cores * grid.per_core_power_w * profile.activity_factor * core_utilization
    )
    dram_power_w = np.minimum(
        cfg.dram_static_w + achieved_bandwidth_gbs * cfg.dram_w_per_gbs,
        grid.dram_power_w,
    )
    app_power_w = cfg.p_app_floor_w + core_power_w + dram_power_w

    return ResponseSurface(
        grid=grid,
        compute_rate=compute_rate,
        memory_rate=memory_rate,
        rate=rate,
        core_utilization=core_utilization,
        achieved_bandwidth_gbs=achieved_bandwidth_gbs,
        core_power_w=core_power_w,
        dram_power_w=dram_power_w,
        app_power_w=app_power_w,
        peak_rate=float(rate[grid.max_index]),
    )


#: Grids cached per config instance: every run on the paper's Table I server
#: (the default config singleton) shares one grid and one surface per profile.
_GRIDS: dict[ServerConfig, ConfigGrid] = {}


def grid_for(config: ServerConfig) -> ConfigGrid:
    """The shared :class:`ConfigGrid` of ``config`` (built on first use)."""
    grid = _GRIDS.get(config)
    if grid is None:
        grid = ConfigGrid(config)
        _GRIDS[config] = grid
    return grid


def surface_for(config: ServerConfig, profile: WorkloadProfile) -> ResponseSurface:
    """Convenience: the cached surface of ``profile`` on ``config``'s grid."""
    return grid_for(config).surface(profile)
