"""Batched mediator-in-the-loop stepping: :class:`MediatedFleet`.

PR 8's :class:`~repro.engine.batch.BatchFleet` vectorized the *engine*
phase, but a mediated tick still walks the whole planning stack —
coordination, telemetry readback, heartbeat aggregation, cap policing,
defense scoring, event polling — in per-server Python, so end-to-end
runs capture only a sliver of the engine speedup. This module promotes
those phases into the batch path under the DESIGN.md §13 rules.

The key observation is that a mediated fleet in *steady state* (no
faults, no plan epochs, no phase edges, no trust transitions, no
arrivals/departures) executes ticks whose per-tick quantities are either
constant or constant-increment accumulators:

* simulated time, per-app work done, heartbeat totals, histogram sums,
  battery charge ledgers, ESD phase elapsed, PC6 residency — all of the
  form ``s += c`` with a constant ``c``;
* trust scores under zero violations — ``s *= decay``;
* RAPL energy counters — ``s = (s + c) % wrap``.

``np.cumsum`` / ``np.cumprod`` accumulate strictly sequentially in C, so
for a constant increment they reproduce the scalar fold *bit for bit*
(``tests/engine/test_planner.py`` pins this property directly).  The RAPL
modulo is handled by segmenting the cumsum at each (rare) wrap: ``fmod``
is exact, and for ``W <= x < 2W`` the float subtraction ``x - W`` equals
``fmod(x, W)`` exactly.

:class:`MediatedFleet` therefore advances each mediator in *horizon
segments*: it evaluates a set of steady-state entry gates, computes a
conservative tick horizon over which no branchy decision can fire
(completion, duty-phase edge, battery clip, E4 deviation threshold,
defense cooldown expiry, cap breach), replays that many ticks with the
closed-form kernel, and materializes exactly the state the scalar loop
would have produced — timeline records, metrics, heartbeat windows,
trust records, accountant counters, battery ledgers and all.  Whenever a
gate fails or the horizon is short, it falls back to the scalar
:meth:`~repro.core.mediator.PowerMediator.step` for one tick, so the
fleet is *always* bit-identical to a plain Python loop over its
mediators; the gates only decide how fast it gets there.

Rejected promotions (kept scalar by design, per §13): TIME-mode slot
rotation (branchy per-edge actuation with a carry-over elapsed cursor),
duty-cycle phase edges themselves, quarantine transitions, and every
fault/adversary/trace-active path.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.coordinator import CoordinationMode
from repro.core.mediator import PowerMediator, TickRecord
from repro.core.trust import TrustState
from repro.errors import ConfigurationError
from repro.esd.controller import Phase
from repro.observability.trace import NULL_TRACE_BUS
from repro.server.heartbeats import HeartbeatRecord
from repro.server.sleep import SleepState

__all__ = ["MediatedFleet", "MIN_FAST_TICKS", "MAX_SEGMENT_TICKS"]

#: Below this many safe ticks the flush overhead beats the win: go scalar.
MIN_FAST_TICKS = 8

#: Upper bound on one fast segment (keeps work arrays small and bounded).
MAX_SEGMENT_TICKS = 4096

#: Stop this many ticks before any predicted branch point; the scalar
#: path then walks through the edge itself.
_HORIZON_MARGIN = 2


def _seq_add(start: float, step: float, k: int) -> np.ndarray:
    """The fl-sequential fold ``start, start+step, ...`` (length ``k+1``).

    ``np.cumsum`` accumulates left-to-right in C, so ``out[i]`` is exactly
    the float the scalar loop holds after ``i`` repetitions of ``s += step``.
    """
    arr = np.empty(k + 1)
    arr[0] = start
    arr[1:] = step
    return np.cumsum(arr)


def _seq_add_final(start: float, step: float, k: int) -> float:
    return float(_seq_add(start, step, k)[-1])


def _seq_mul_final(start: float, factor: float, k: int) -> float:
    """Final value of ``k`` sequential ``s *= factor`` folds."""
    arr = np.empty(k + 1)
    arr[0] = start
    arr[1:] = factor
    return float(np.cumprod(arr)[-1])


def _rapl_march(e0: float, step_j: float, wrap_j: float, k: int) -> np.ndarray:
    """Per-tick counter values of ``k`` folds of ``e = (e + step) % wrap``.

    Requires ``0 <= step_j < wrap_j`` (callers gate on it): then each fold
    wraps at most once, ``%`` reduces to an exact ``x - wrap`` for
    ``wrap <= x < 2*wrap``, and the cumsum can simply be restarted at the
    folded value after each (rare) wrap.
    """
    arr = np.empty(k + 1)
    arr[0] = e0
    arr[1:] = step_j
    np.cumsum(arr, out=arr)
    start = 1
    while True:
        over = np.nonzero(arr[start:] >= wrap_j)[0]
        if over.size == 0:
            break
        j = start + int(over[0])
        arr[j] = arr[j] - wrap_j
        if j < k:
            arr[j + 1 :] = step_j
            arr[j:] = np.cumsum(arr[j:])
        start = j + 1
    return arr[1:]


def _flush_histogram(hist, value: float, k: int) -> None:
    """What ``k`` repeated ``hist.observe(value)`` calls would leave behind."""
    value = float(value)
    hist._window.extend([value] * k)  # deque(maxlen=...) keeps the tail
    hist.count += k
    hist.total = _seq_add_final(hist.total, value, k)
    if value < hist.minimum:
        hist.minimum = value
    if value > hist.maximum:
        hist.maximum = value


class MediatedFleet:
    """Advance many :class:`PowerMediator` instances through the fast path.

    Semantically equivalent to ``for m in mediators: m.run_for(...)`` —
    and pinned bit-identical to it by the differential suite — but steady
    stretches are replayed with the vectorized horizon kernel instead of
    per-tick Python.

    Args:
        mediators: The fleet; each mediator is advanced independently.
        min_fast_ticks: Smallest horizon worth entering the fast path for.
        max_segment_ticks: Cap on a single fast segment.

    Attributes:
        fast_ticks / scalar_ticks: How many ticks each path executed.
        fast_segments: Number of fast segments replayed.
        demotions: ``{reason: count}`` — why scalar ticks happened; the
            first failing entry gate (or ``"short-horizon"``) is charged.
    """

    def __init__(
        self,
        mediators: Iterable[PowerMediator],
        *,
        min_fast_ticks: int = MIN_FAST_TICKS,
        max_segment_ticks: int = MAX_SEGMENT_TICKS,
    ) -> None:
        self._mediators: list[PowerMediator] = list(mediators)
        if not self._mediators:
            raise ConfigurationError("MediatedFleet needs at least one mediator")
        for m in self._mediators:
            if not isinstance(m, PowerMediator):
                raise ConfigurationError(
                    f"MediatedFleet manages PowerMediator instances, got {type(m).__name__}"
                )
        if min_fast_ticks < 1:
            raise ConfigurationError("min_fast_ticks must be >= 1")
        if max_segment_ticks < min_fast_ticks:
            raise ConfigurationError("max_segment_ticks must be >= min_fast_ticks")
        self._min_fast = int(min_fast_ticks)
        self._max_segment = int(max_segment_ticks)
        self.fast_ticks = 0
        self.scalar_ticks = 0
        self.fast_segments = 0
        self.demotions: dict[str, int] = {}

    # -------------------------------------------------------------- accessors

    @property
    def mediators(self) -> Sequence[PowerMediator]:
        return self._mediators

    @property
    def fast_fraction(self) -> float:
        """Share of executed ticks that went through the fast path."""
        total = self.fast_ticks + self.scalar_ticks
        return self.fast_ticks / total if total else 0.0

    # -------------------------------------------------------------- stepping

    def run_for(self, duration_s: float) -> None:
        """Advance every mediator by ``duration_s`` simulated seconds.

        Mediators are independent single-server control loops, so each is
        advanced to its own end time in turn — exactly what a Python loop
        over ``PowerMediator.run_for`` does.

        Raises:
            ConfigurationError: on a non-positive duration.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        for m in self._mediators:
            self._advance(m, m.server.now_s + duration_s)

    def step_all(self) -> None:
        """One scalar tick on every mediator (the supervisor-grade unit)."""
        for m in self._mediators:
            m.step()
            self.scalar_ticks += 1

    def _advance(self, m: PowerMediator, end_s: float) -> None:
        while m.server.now_s < end_s - 1e-9:
            executed, reason = self._try_fast_segment(m, end_s)
            if executed:
                self.fast_ticks += executed
                self.fast_segments += 1
            else:
                self.demotions[reason] = self.demotions.get(reason, 0) + 1
                m.step()
                self.scalar_ticks += 1

    # ------------------------------------------------------------- fast path

    def _try_fast_segment(self, m: PowerMediator, end_s: float) -> tuple[int, str]:
        """Replay as many steady ticks as provably safe; ``(0, reason)`` if none.

        The method first checks the *entry gates* — conditions under which
        a scalar tick is pure steady-state replay — then derives a
        conservative horizon from every branch the scalar loop could take,
        and finally materializes the k-tick segment in closed form.
        """
        dt = m._dt_s
        server = m._server

        # --- global entry gates: anything event-driven forces scalar ticks.
        if m._injector is not None:
            return 0, "fault-injector"
        if m._adversary.specs():
            return 0, "adversary"
        if m._trace is not NULL_TRACE_BUS:
            return 0, "trace-attached"
        if m._calibration_pending_s > 0:
            return 0, "calibration"
        if m._safe_hold_ticks > 0:
            return 0, "safe-hold"
        if m._breach_last_tick:
            return 0, "breach-recovery"
        if m._watchdog.degraded:
            return 0, "watchdog-degraded"
        if server.knobs.failed_writes() or m._retrier._pending or m._actuation_faulted:
            return 0, "actuation-retry"
        hb = server._heartbeats
        if hb.in_blackout:
            return 0, "hb-blackout"
        plan = m._coordinator._plan
        if plan is None:
            return 0, "no-plan"
        mode = plan.mode
        if mode is CoordinationMode.TIME:
            # Rejected promotion (DESIGN.md §13): slot rotation actuates
            # knobs on every slot edge through a carry-over elapsed cursor.
            return 0, "time-rotation"
        if not m._timeline:
            return 0, "cold-start"
        sleep = server._sleep
        if sleep._pending_wake_penalty_s != 0.0:
            return 0, "wake-penalty"
        if server._parasitic_w or server._hb_inflation:
            return 0, "co-tenant-hooks"
        handles = server._handles
        for handle in handles.values():
            if handle.hung:
                return 0, "hung-app"
            if handle.resume_debt_s != 0.0:
                return 0, "resume-debt"
        for managed in m._managed.values():
            if managed.phased is not None:
                return 0, "phase-schedule"
        for name in handles:
            if name not in hb._last_emit_s:
                return 0, "cold-start"
        if m._last_psys_energy_j != server.rapl.read_energy_j("psys"):
            return 0, "telemetry-resync"

        battery = m._battery
        coord = m._coordinator
        active = server.active_applications()

        # --- per-mode coordinator action + battery/phase horizon constants.
        charge_w = 0.0
        discharge_w = 0.0
        deep_sleep = False
        batt_delta_j = 0.0  # per-tick _stored_j increment (signed, exact)
        batt_charged_j = 0.0
        batt_stored_j = 0.0
        batt_discharged_j = 0.0
        phase_horizon: float = math.inf
        batt_horizon: float = math.inf
        esd = None

        if mode is CoordinationMode.SPACE:
            if sleep._state is not SleepState.ACTIVE:
                return 0, "sleep-state"
        elif mode is CoordinationMode.IDLE:
            if active:
                return 0, "idle-active-apps"
            if sleep._state is not SleepState.PC6:
                return 0, "sleep-state"
            deep_sleep = True
        else:  # ESD duty cycle
            esd = coord._esd
            if esd is None or battery is None or esd._battery is not battery:
                return 0, "esd-wiring"
            if not battery._available:
                return 0, "battery-unavailable"
            cycle = esd._cycle
            elapsed0 = esd._phase_elapsed_s
            if esd._phase is Phase.OFF:
                if coord._esd_on or cycle.off_s <= 0:
                    return 0, "esd-edge"
                if active:
                    return 0, "esd-active-in-off"
                if sleep._state is not SleepState.PC6:
                    return 0, "sleep-state"
                deep_sleep = True
                phase_horizon = math.floor((cycle.off_s - elapsed0) / dt) - _HORIZON_MARGIN
                admissible = battery.admissible_charge_w(cycle.charge_w)
                eff = battery._efficiency
                storable_j = min(eff * admissible * dt, battery.headroom_j)
                if storable_j > 0.0:
                    if storable_j != eff * admissible * dt:
                        return 0, "battery-clip"  # partial fill: scalar walks the edge
                    wall_j = storable_j / eff
                    charge_w = wall_j / dt
                    batt_delta_j = storable_j
                    batt_charged_j = wall_j
                    batt_stored_j = storable_j
                    batt_horizon = (
                        math.floor(battery.headroom_j / storable_j) - _HORIZON_MARGIN
                    )
                # else: battery full (or zero admissible) — zero-flow banking.
            else:  # Phase.ON
                if not coord._esd_on:
                    return 0, "esd-edge"
                if sleep._state is not SleepState.ACTIVE:
                    return 0, "sleep-state"
                required_w = coord._esd_required_w(dt)
                if cycle.off_s > 0:
                    phase_horizon = (
                        math.floor((cycle.on_s - elapsed0) / dt) - _HORIZON_MARGIN
                    )
                if required_w > 0.0:
                    if required_w > battery._max_discharge_w:
                        return 0, "esd-underpowered"
                    deliverable_j = min(required_w * dt, battery.usable_j)
                    if deliverable_j != required_w * dt:
                        return 0, "battery-clip"
                    discharge_w = deliverable_j / dt
                    batt_delta_j = -deliverable_j
                    batt_discharged_j = deliverable_j
                    # Extra margin: can_boost also needs usable_j/dt > target.
                    batt_horizon = (
                        math.floor(battery.usable_j / deliverable_j)
                        - 2 * _HORIZON_MARGIN
                    )

        # --- engine constants: running set, work rates, completion horizon.
        knobs = server._knobs
        running = {
            name: (handles[name].profile, knobs.knob_of(name)) for name in active
        }
        completion_horizon: float = math.inf
        work_per_app: dict[str, float] = {}
        for name, (profile, knob) in running.items():
            work = server._perf.rate(profile, knob) * dt  # useful_s == dt exactly
            work_per_app[name] = work
            remaining = handles[name].remaining_work
            if work > 0.0 and math.isfinite(remaining):
                completion_horizon = min(
                    completion_horizon, math.floor(remaining / work) - _HORIZON_MARGIN
                )

        breakdown = server._power.server_breakdown(
            running,
            esd_charge_w=charge_w,
            esd_discharge_w=discharge_w,
            deep_sleep=deep_sleep and not active,
        )
        wall_w = breakdown.wall_w
        cap_w = m.p_cap_w
        if wall_w > cap_w + 1e-6:
            return 0, "cap-breach"

        # --- defense constants: a steady tick must be violation-free and
        # transition-free for every tenant, with the efficiency check either
        # statically unfirable or held off by the fingerprint cooldown.
        trust = m._trust
        defense_on = bool(trust.config.enabled and m._managed)
        defense_horizon: float = math.inf
        trust_flush: list[tuple[object, int]] = []  # (record, cooldown0)
        if defense_on:
            cfg = trust.config
            for record in trust._records.values():
                if record.state is not TrustState.TRUSTED:
                    return 0, "trust-state"
            window_s = hb._window_s
            for name in sorted(m._managed):
                managed = m._managed[name]
                knob = knobs.knob_of(name)
                run_flag = name in breakdown.app_w
                fingerprint = (knob.freq_ghz, knob.cores, knob.dram_power_w, run_flag, -1)
                record = trust._records.get(name)
                if record is None:
                    return 0, "trust-cold"
                if record.fingerprint != fingerprint:
                    return 0, "trust-fingerprint"
                if not record.score < cfg.suspect_threshold:
                    return 0, "trust-score"
                if run_flag:
                    attributed = breakdown.app_w.get(name, 0.0)
                    expected = server.power_model.app_power_w(managed.profile, knob)
                    if attributed > expected + cfg.overdraw_margin_w:
                        return 0, "trust-overdraw"
                    supported = server.perf_model.rate(managed.profile, knob)
                    limit = supported * (1.0 + cfg.efficiency_margin)
                    # Worst windowed rate: every slot filled with the largest
                    # beat the window can ever hold during the segment.
                    beats = work_per_app.get(name, 0.0)
                    history = hb._histories[name]
                    peak_beats = max(
                        beats, max((r.beats for r in history), default=0.0)
                    )
                    slots = math.floor(window_s / dt) + 2
                    if slots * peak_beats / window_s <= limit * (1.0 - 1e-9):
                        pass  # efficiency check can never fire at this knob
                    elif record.cooldown > 0:
                        defense_horizon = min(defense_horizon, record.cooldown - 1)
                    else:
                        return 0, "trust-efficiency"
                trust_flush.append((record, record.cooldown))

        # --- E4 deviation accounting (SPACE plans with an allocation).
        acct = m._accountant
        acct_plan = acct._plan
        e4_horizon: float = math.inf
        e4_writes: list[tuple[str, bool, int]] = []  # (name, deviating, count0)
        if (
            acct_plan is not None
            and acct_plan.mode is CoordinationMode.SPACE
            and acct_plan.allocation is not None
        ):
            for name, expected in acct_plan.allocation.apps.items():
                if expected.excluded or name in acct._suppressed:
                    continue
                if name not in breakdown.app_w:
                    continue
                observed = breakdown.app_w[name]
                if abs(observed - expected.power_w) > acct._threshold_w:
                    count0 = acct._deviation_counts.get(name, 0)
                    e4_horizon = min(
                        e4_horizon,
                        acct._deviation_polls - count0 - _HORIZON_MARGIN,
                    )
                    e4_writes.append((name, True, count0))
                else:
                    e4_writes.append((name, False, 0))

        # --- RAPL step constants (one wrap per tick at most, per domain).
        domain_powers = server._domain_powers(running, breakdown)
        rapl = server._rapl
        for name, dom in rapl._domains.items():
            power = domain_powers.get(name, 0.0)
            if power < 0 or power * dt >= dom.wrap_range_j:
                return 0, "rapl-step"

        # --- the horizon: stop before the first branch any phase could take.
        horizon = min(
            completion_horizon,
            phase_horizon,
            batt_horizon,
            defense_horizon,
            e4_horizon,
            float(self._max_segment),
        )
        if horizon < self._min_fast:
            return 0, "short-horizon"
        k_cap = int(horizon)

        # End-of-run trim: tick i runs iff its start time is < end - 1e-9,
        # evaluated on the exact fl time sequence the scalar loop holds.
        times = _seq_add(server._now_s, dt, k_cap)
        k = int(np.count_nonzero(times[:k_cap] < end_s - 1e-9))
        if k < self._min_fast:
            return 0, "short-window"
        times = times[: k + 1]

        self._flush_segment(
            m,
            k,
            times=times,
            mode=mode,
            breakdown=breakdown,
            wall_w=wall_w,
            cap_w=cap_w,
            charge_w=charge_w,
            discharge_w=discharge_w,
            deep_sleep=deep_sleep,
            work_per_app=work_per_app,
            running=running,
            domain_powers=domain_powers,
            batt_delta_j=batt_delta_j,
            batt_charged_j=batt_charged_j,
            batt_stored_j=batt_stored_j,
            batt_discharged_j=batt_discharged_j,
            esd=esd,
            trust_flush=trust_flush,
            e4_writes=e4_writes,
        )
        return k, ""

    # ----------------------------------------------------------------- flush

    def _flush_segment(
        self,
        m: PowerMediator,
        k: int,
        *,
        times: np.ndarray,
        mode: CoordinationMode,
        breakdown,
        wall_w: float,
        cap_w: float,
        charge_w: float,
        discharge_w: float,
        deep_sleep: bool,
        work_per_app: dict[str, float],
        running: dict,
        domain_powers: dict[str, float],
        batt_delta_j: float,
        batt_charged_j: float,
        batt_stored_j: float,
        batt_discharged_j: float,
        esd,
        trust_flush: list,
        e4_writes: list,
    ) -> None:
        """Materialize ``k`` steady ticks exactly as the scalar loop would."""
        server = m._server
        dt = m._dt_s
        battery = m._battery

        # RAPL counters: march every powered domain; psys per-tick values
        # feed the wall-power telemetry samples below.
        rapl = server._rapl
        psys_values: np.ndarray | None = None
        for name, dom in rapl._domains.items():
            power = domain_powers.get(name, 0.0)
            step_j = power * dt
            if name == "psys":
                psys_values = _rapl_march(dom.energy_j, step_j, dom.wrap_range_j, k)
                dom.energy_j = float(psys_values[-1])
            elif step_j != 0.0:
                dom.energy_j = float(
                    _rapl_march(dom.energy_j, step_j, dom.wrap_range_j, k)[-1]
                )
            # else: (e + 0.0) % wrap is the identity on in-range counters.
            dom.last_power_w = power

        assert psys_values is not None
        deltas = np.diff(np.concatenate(([m._last_psys_energy_j], psys_values)))
        wrap = rapl._domains["psys"].wrap_range_j
        deltas = np.where(deltas < 0, deltas + wrap, deltas)
        observed = deltas / dt
        m._last_psys_energy_j = float(psys_values[-1])

        # Watchdog saw k fresh samples; the retry loop idled k ticks.
        m._watchdog._consecutive_good += k
        m._watchdog._consecutive_bad = 0
        m._retrier._tick += k

        # Engine state: time, work ledgers, heartbeat windows.
        server._now_s = float(times[k])
        for name in running:
            handle = server._handles[name]
            handle.work_done = _seq_add_final(handle.work_done, work_per_app[name], k)
        hb = server._heartbeats
        window_s = hb._window_s
        final_t = float(times[k])
        cutoff = final_t - window_s
        for name in server._handles:
            beats = work_per_app.get(name, 0.0)
            history = hb._histories[name]
            while history and history[0].time_s <= cutoff:
                history.popleft()
            # Only records that survive the final cutoff are ever observed
            # again; eviction cutoffs are monotone, so appending just the
            # survivors matches emit-then-evict tick by tick.
            start = int(np.searchsorted(times[1:], cutoff, side="right")) + 1
            history.extend(
                HeartbeatRecord(float(times[i]), beats) for i in range(start, k + 1)
            )
            hb._last_emit_s[name] = final_t
            if beats != 0.0:
                hb._totals[name] = _seq_add_final(hb._totals[name], beats, k)
        if deep_sleep:
            sleep = server._sleep
            sleep._time_in_pc6_s = _seq_add_final(sleep._time_in_pc6_s, dt, k)

        # Battery ledgers and the ESD phase cursor.
        soc_values: np.ndarray | None = None
        if batt_delta_j != 0.0:
            stored = _seq_add(battery._stored_j, batt_delta_j, k)
            battery._stored_j = float(stored[-1])
            soc_values = stored[1:] / battery._capacity_j
            if batt_charged_j != 0.0:
                battery._total_charged_j = _seq_add_final(
                    battery._total_charged_j, batt_charged_j, k
                )
            if batt_stored_j != 0.0:
                battery._total_stored_j = _seq_add_final(
                    battery._total_stored_j, batt_stored_j, k
                )
            if batt_discharged_j != 0.0:
                battery._total_discharged_j = _seq_add_final(
                    battery._total_discharged_j, batt_discharged_j, k
                )
        if esd is not None:
            esd._phase_elapsed_s = _seq_add_final(esd._phase_elapsed_s, dt, k)

        # Timeline records — the exact TickRecords the scalar loop builds.
        soc_const = battery.soc if battery is not None else None
        app_knobs = {
            name: server._knobs.knob_of(name) for name in breakdown.app_w
        }
        app_power = breakdown.app_w
        progressed = {name: work_per_app[name] for name in running}
        timeline = m._timeline
        for i in range(1, k + 1):
            timeline.append(
                TickRecord(
                    time_s=float(times[i]),
                    p_cap_w=cap_w,
                    wall_w=wall_w,
                    mode=mode,
                    app_power_w=dict(app_power),
                    app_knobs=dict(app_knobs),
                    progressed=dict(progressed),
                    battery_soc=(
                        float(soc_values[i - 1]) if soc_values is not None else soc_const
                    ),
                    observed_wall_w=float(observed[i - 1]),
                    degraded=False,
                    breach=False,
                )
            )

        # Metrics: k observations of constant values, in closed form.
        registry = m._metrics
        registry.counter("mediator.ticks").inc(k)
        _flush_histogram(registry.histogram("mediator.wall_w"), wall_w, k)
        _flush_histogram(registry.histogram("mediator.headroom_w"), cap_w - wall_w, k)
        if charge_w > 0:
            _flush_histogram(registry.histogram("esd.charge_w"), charge_w, k)
        if discharge_w > 0:
            _flush_histogram(registry.histogram("esd.discharge_w"), discharge_w, k)

        # Trust: zero violations — scores decay, cooldowns drain.
        decay = m._trust.config.score_decay
        for record, cooldown0 in trust_flush:
            record.cooldown = max(cooldown0 - k, 0)
            if record.score != 0.0:
                record.score = _seq_mul_final(record.score, decay, k)

        # Accountant: E4 streak counters advance (or reset) per poll.
        for name, deviating, count0 in e4_writes:
            m._accountant._deviation_counts[name] = count0 + k if deviating else 0
