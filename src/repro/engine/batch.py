"""Batch fleet engine: advance N servers' engine phase as one numpy tick.

:class:`BatchFleet` is the fleet-scale fast path. Where a loop of
:class:`~repro.server.server.SimulatedServer` instances re-runs the Python
model chains for every app on every server every tick, the fleet flattens
all ``(server, app)`` pairs into arrays - per-app rates and attributable
powers gathered once from the cached response surfaces - and advances the
whole fleet with a handful of elementwise operations per tick. That turns
the per-tick cost from O(servers x apps x model-chain) Python work into a
few array ops whose cost is dominated by numpy's fixed per-op overhead,
which is exactly what amortizes at 100-1000 servers
(``benchmarks/bench_engine_throughput.py`` records the trajectory).

The fleet mirrors the scalar engine's arithmetic exactly, under the same
equivalence contract as the vector models (see :mod:`repro.engine.surface`):

* per-app work is ``rate * dt`` clamped to remaining work, the scalar tick's
  expression in the scalar order;
* per-server dynamic power accumulates with ``np.bincount`` over apps in
  sorted-name order - a single in-order C pass, i.e. a strictly sequential
  left-to-right sum per server, matching ``sum(breakdown.app_w.values())``
  over the scalar engine's sorted running dict (numpy's pairwise ``sum``
  would differ for 8+ apps; ``bincount`` never does);
* the psys energy counter accumulates ``(e + wall * dt) % wrap`` exactly
  like :class:`~repro.server.rapl.RaplDomain`.

Scope: the batch path covers the *engine phase* - power breakdown, work
progression, completion, energy accounting - for honest, always-on fleets
(no deep sleep, resume debt, parasitic draw or ESD flows; those belong to
the per-server mediator stack, which uses the vector models instead).
``tests/engine/test_batch.py`` pins the fleet bit-for-bit against a loop of
scalar servers.
"""

from __future__ import annotations

import numpy as np

from repro.engine.surface import grid_for
from repro.errors import ConfigurationError, SchedulingError
from repro.server.config import KnobSetting, ServerConfig, DEFAULT_SERVER_CONFIG
from repro.server.rapl import ENERGY_WRAP_J
from repro.workloads.profiles import WorkloadProfile

__all__ = ["BatchFleet"]


class BatchFleet:
    """N independent servers advanced in lockstep with array operations.

    Args:
        config: Shared hardware description (all servers identical).
        mixes: One list of workload profiles per server. Apps on a server
            must have unique names; per-server accounting follows
            sorted-name order exactly like the scalar engine's running set.
        group_width: Core-group width per app (as in
            :meth:`SimulatedServer.admit`); the default initial knob follows
            the same rule - the uncapped maximum, clamped to the width.
        dt_s: Tick duration used by :meth:`advance`.
    """

    def __init__(
        self,
        config: ServerConfig = DEFAULT_SERVER_CONFIG,
        mixes: list[list[WorkloadProfile]] | None = None,
        *,
        group_width: int | None = None,
        dt_s: float = 0.1,
    ) -> None:
        if not mixes:
            raise ConfigurationError("a fleet needs at least one server mix")
        if dt_s <= 0:
            raise ConfigurationError("tick duration must be positive")
        width = config.cores_max if group_width is None else group_width
        if not config.cores_min <= width <= config.cores_max:
            raise ConfigurationError(
                f"group width {width} outside [{config.cores_min}, {config.cores_max}]"
            )
        per_server = config.sockets * (config.cores_per_socket // width)
        self._config = config
        self._grid = grid_for(config)
        self._dt_s = dt_s
        self._n_servers = len(mixes)
        if width >= config.cores_max:
            initial_knob = config.max_knob
        else:
            initial_knob = KnobSetting(config.freq_max_ghz, width, config.dram_power_max_w)
        initial_idx = self._grid.index_of(initial_knob)
        assert initial_idx is not None  # grid always contains its own knobs

        profiles: list[WorkloadProfile] = []
        server_ids: list[int] = []
        self._flat_index: dict[tuple[int, str], int] = {}
        for server, mix in enumerate(mixes):
            ordered = sorted(mix, key=lambda prof: prof.name)
            if len(ordered) > per_server:
                raise SchedulingError(
                    f"server {server}: {len(ordered)} apps exceed the "
                    f"{per_server} core groups of width {width}"
                )
            for profile in ordered:
                key = (server, profile.name)
                if key in self._flat_index:
                    raise SchedulingError(
                        f"application {profile.name!r} is already on server {server}"
                    )
                self._flat_index[key] = len(profiles)
                profiles.append(profile)
                server_ids.append(server)
        if not profiles:
            raise ConfigurationError("a fleet needs at least one application")

        self._profiles = tuple(profiles)
        self._server_ids = np.array(server_ids, dtype=np.intp)
        n_apps = len(profiles)
        self._knob_idx = np.full(n_apps, initial_idx, dtype=np.intp)
        self._rate = np.array(
            [self._grid.surface(prof).rate[initial_idx] for prof in profiles]
        )
        self._app_power_w = np.array(
            [self._grid.surface(prof).app_power_w[initial_idx] for prof in profiles]
        )
        self._total_work = np.array([prof.total_work for prof in profiles])
        self._work_done = np.zeros(n_apps)
        self._active = np.ones(n_apps, dtype=bool)
        self._energy_j = np.zeros(self._n_servers)
        self._last_wall_w = np.zeros(self._n_servers)
        self._now_s = 0.0

    # ------------------------------------------------------------ accessors

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def n_servers(self) -> int:
        return self._n_servers

    @property
    def n_apps(self) -> int:
        return len(self._profiles)

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def dt_s(self) -> float:
        return self._dt_s

    def wall_power_w(self) -> np.ndarray:
        """Per-server wall power of the last tick (copy)."""
        return self._last_wall_w.copy()

    def energy_j(self) -> np.ndarray:
        """Per-server psys energy counters, modulo the RAPL wrap (copy)."""
        return self._energy_j.copy()

    def work_done(self, server: int, app: str) -> float:
        """Work units one app has completed so far."""
        return float(self._work_done[self._index(server, app)])

    def is_active(self, server: int, app: str) -> bool:
        """``False`` once the app ran out of work (scalar: suspended)."""
        return bool(self._active[self._index(server, app)])

    def total_work_done(self) -> float:
        """Fleet-wide completed work (reporting; order-sensitive consumers
        should read per-app values instead)."""
        return float(np.sum(self._work_done))

    def _index(self, server: int, app: str) -> int:
        try:
            return self._flat_index[(server, app)]
        except KeyError:
            raise SchedulingError(
                f"application {app!r} is not on server {server}"
            ) from None

    # ------------------------------------------------------------ actuation

    def set_knob(self, server: int, app: str, knob: KnobSetting) -> None:
        """Re-point one app's gathered rate/power at a new knob setting."""
        self._config.validate_knob(knob)
        idx = self._grid.index_of(knob)
        if idx is None:
            raise ConfigurationError(f"{knob} is not on the discrete grid")
        flat = self._index(server, app)
        self._knob_idx[flat] = idx
        surface = self._grid.surface(self._profiles[flat])
        self._rate[flat] = surface.rate[idx]
        self._app_power_w[flat] = surface.app_power_w[idx]

    def knob_of(self, server: int, app: str) -> KnobSetting:
        """The app's current knob setting."""
        return self._grid.knobs[int(self._knob_idx[self._index(server, app)])]

    # ------------------------------------------------------------- the tick

    def tick(self) -> None:
        """Advance every server by one ``dt_s`` tick.

        Mirrors :meth:`SimulatedServer.tick` for the covered scope: power is
        charged for apps active at tick start (an app finishing this tick
        still drew its allocation), then work progresses and exhausted apps
        deactivate.
        """
        dt = self._dt_s
        cfg = self._config
        active = self._active

        # PowerBreakdown: wall = (idle + cm) + dynamic, dynamic summed
        # sequentially over sorted-name app order (bincount is an in-order
        # C pass, so each server's sum associates left to right exactly like
        # the scalar sum over its running dict).
        contrib = np.where(active, self._app_power_w, 0.0)
        dynamic = np.bincount(
            self._server_ids, weights=contrib, minlength=self._n_servers
        )
        wall = (cfg.p_idle_w + cfg.p_cm_w) + dynamic

        # Work loop: rate * dt clamped to remaining work, as in the scalar
        # engine (no sleep/resume debt in the batch scope: useful_s == dt).
        work = np.where(active, self._rate * dt, 0.0)
        remaining = np.maximum(0.0, self._total_work - self._work_done)
        work = np.minimum(work, remaining)
        self._work_done = self._work_done + work
        exhausted = np.maximum(0.0, self._total_work - self._work_done) <= 0.0
        self._active = active & ~exhausted

        # RaplDomain.advance for the psys plane, elementwise.
        self._energy_j = (self._energy_j + wall * dt) % ENERGY_WRAP_J
        self._last_wall_w = wall
        self._now_s = self._now_s + dt

    def advance(self, n_ticks: int) -> None:
        """Run ``n_ticks`` consecutive ticks."""
        if n_ticks < 0:
            raise ConfigurationError("n_ticks must be non-negative")
        for _ in range(n_ticks):
            self.tick()
