"""Lead-Acid battery model: SoC dynamics under power limits and efficiency.

The model is the standard energy-reservoir abstraction used by the
datacenter energy-storage literature the paper builds on ([30, 31, 37, 38]):

* stored energy evolves as ``E += eta * P_charge * dt`` and
  ``E -= P_discharge * dt`` - the full round-trip loss is booked at charge
  time, which matches Eq. (5)'s placement of ``eta`` against the charging
  headroom term;
* charge and discharge power are bounded (Lead-Acid C-rates are modest - the
  defaults allow the paper's 20 W banking / 40 W boost regime comfortably);
* depth-of-discharge is bounded: Lead-Acid cells are not drained below a
  reserve floor, both for cycle life and because the UPS must retain backup
  charge (the paper notes the ESD is "used only under very stringent power
  budget" partly for this reason);
* throughput is tracked to report equivalent full cycles - supporting the
  paper's closing observation that this duty barely dents cycle life.

Electrochemical detail (Peukert effect, voltage sag, temperature) is out of
scope: Requirement R4 depends only on conservation, efficiency and power
limits. See DESIGN.md section 6.

Fault surface (see DESIGN.md "Fault model and degraded modes"): real UPS
strings fade (:meth:`LeadAcidBattery.apply_capacity_fade`), lose discharge
capability when cells age or run hot (:meth:`LeadAcidBattery.derate_discharge`),
and drop off the bus entirely during BMS resets
(:meth:`LeadAcidBattery.set_available`). While unavailable both admissible
powers are zero and charge/discharge are no-ops, so an ESD controller that
pre-clamps with the admissible queries degrades gracefully without special
cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BatteryError, ConfigurationError


@dataclass(frozen=True)
class BatteryStats:
    """Lifetime counters of a battery instance.

    Attributes:
        total_charged_j: Energy drawn from the wall into the battery
            (pre-efficiency, i.e. what the wall saw).
        total_stored_j: Energy actually banked (post-efficiency).
        total_discharged_j: Energy delivered from the battery.
        equivalent_cycles: Discharged energy over usable capacity.
    """

    total_charged_j: float
    total_stored_j: float
    total_discharged_j: float
    equivalent_cycles: float


class LeadAcidBattery:
    """An energy reservoir with efficiency, power limits and a DoD floor.

    Args:
        capacity_j: Nameplate capacity in joules. The paper's worked example
            (Fig. 5) banks 200 J over a 10 s window; a real server UPS holds
            hundreds of kilojoules - both work here.
        efficiency: Round-trip efficiency ``eta`` in ``(0, 1]``, booked at
            charge time. Lead-Acid at the paper's rates is ~0.70, which is
            what makes Eq. (5) yield the paper's 60-40 OFF-ON split at the
            80 W cap.
        max_charge_w / max_discharge_w: Power limits (C-rate proxies).
        reserve_fraction: Fraction of capacity never discharged (UPS backup
            reserve + Lead-Acid DoD floor).
        initial_soc: Starting state of charge in ``[reserve, 1]``.
    """

    def __init__(
        self,
        capacity_j: float,
        *,
        efficiency: float = 0.70,
        max_charge_w: float = 50.0,
        max_discharge_w: float = 60.0,
        reserve_fraction: float = 0.0,
        initial_soc: float | None = None,
    ) -> None:
        if capacity_j <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_j}")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError(f"efficiency must be in (0, 1], got {efficiency}")
        if max_charge_w <= 0 or max_discharge_w <= 0:
            raise ConfigurationError("power limits must be positive")
        if not 0.0 <= reserve_fraction < 1.0:
            raise ConfigurationError("reserve_fraction must be in [0, 1)")
        self._capacity_j = capacity_j
        self._efficiency = efficiency
        self._max_charge_w = max_charge_w
        self._max_discharge_w = max_discharge_w
        self._reserve_j = reserve_fraction * capacity_j
        soc = reserve_fraction if initial_soc is None else initial_soc
        if not reserve_fraction <= soc <= 1.0:
            raise ConfigurationError(
                f"initial_soc {soc} outside [{reserve_fraction}, 1.0]"
            )
        self._stored_j = soc * capacity_j
        self._total_charged_j = 0.0
        self._total_stored_j = 0.0
        self._total_discharged_j = 0.0
        self._nameplate_discharge_w = max_discharge_w
        self._available = True
        self._total_faded_j = 0.0

    # ------------------------------------------------------------ properties

    @property
    def capacity_j(self) -> float:
        return self._capacity_j

    @property
    def efficiency(self) -> float:
        return self._efficiency

    @property
    def max_charge_w(self) -> float:
        return self._max_charge_w

    @property
    def max_discharge_w(self) -> float:
        return self._max_discharge_w

    @property
    def stored_j(self) -> float:
        """Banked energy right now."""
        return self._stored_j

    @property
    def soc(self) -> float:
        """State of charge in ``[0, 1]``."""
        return self._stored_j / self._capacity_j

    @property
    def usable_j(self) -> float:
        """Energy available above the reserve floor."""
        return max(0.0, self._stored_j - self._reserve_j)

    @property
    def headroom_j(self) -> float:
        """Energy the battery can still absorb (post-efficiency)."""
        return max(0.0, self._capacity_j - self._stored_j)

    @property
    def available(self) -> bool:
        """Whether the battery is on the bus (``False`` during a BMS reset)."""
        return self._available

    @property
    def total_faded_j(self) -> float:
        """Stored energy lost to capacity fade (for conservation accounting)."""
        return self._total_faded_j

    @property
    def stats(self) -> BatteryStats:
        usable_capacity = self._capacity_j - self._reserve_j
        return BatteryStats(
            total_charged_j=self._total_charged_j,
            total_stored_j=self._total_stored_j,
            total_discharged_j=self._total_discharged_j,
            equivalent_cycles=(
                self._total_discharged_j / usable_capacity if usable_capacity > 0 else 0.0
            ),
        )

    # ------------------------------------------------------------ persistence

    def state_dict(self) -> dict:
        """Snapshot every mutable field for checkpointing.

        Captures fade (capacity and reserve shrink over a battery's life) and
        derating alongside the SoC and lifetime counters, so a restored
        battery is physically identical, not just equally charged.
        """
        return {
            "capacity_j": self._capacity_j,
            "efficiency": self._efficiency,
            "max_charge_w": self._max_charge_w,
            "max_discharge_w": self._max_discharge_w,
            "reserve_j": self._reserve_j,
            "stored_j": self._stored_j,
            "total_charged_j": self._total_charged_j,
            "total_stored_j": self._total_stored_j,
            "total_discharged_j": self._total_discharged_j,
            "nameplate_discharge_w": self._nameplate_discharge_w,
            "available": self._available,
            "total_faded_j": self._total_faded_j,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Fields are assigned directly (no re-derivation from fractions) so the
        restored floats are bit-identical to the checkpointed ones.
        """
        self._capacity_j = float(state["capacity_j"])
        self._efficiency = float(state["efficiency"])
        self._max_charge_w = float(state["max_charge_w"])
        self._max_discharge_w = float(state["max_discharge_w"])
        self._reserve_j = float(state["reserve_j"])
        self._stored_j = float(state["stored_j"])
        self._total_charged_j = float(state["total_charged_j"])
        self._total_stored_j = float(state["total_stored_j"])
        self._total_discharged_j = float(state["total_discharged_j"])
        self._nameplate_discharge_w = float(state["nameplate_discharge_w"])
        self._available = bool(state["available"])
        self._total_faded_j = float(state["total_faded_j"])

    # ------------------------------------------------------------ fault model

    def set_available(self, available: bool) -> None:
        """Connect or disconnect the battery from the power bus.

        While disconnected the admissible powers are zero and
        :meth:`charge`/:meth:`discharge` are no-ops, modelling a transient
        BMS reset or contactor trip. State of charge is preserved.
        """
        self._available = available

    def derate_discharge(self, scale: float) -> None:
        """Scale the maximum discharge power to ``scale`` x nameplate.

        Models aged or hot cells that can no longer sustain the rated
        C-rate. ``scale=1.0`` restores the nameplate limit.
        """
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"derate scale must be in (0, 1], got {scale}")
        self._max_discharge_w = scale * self._nameplate_discharge_w

    def restore_discharge(self) -> None:
        """Undo any discharge derating."""
        self._max_discharge_w = self._nameplate_discharge_w

    def apply_capacity_fade(self, fraction_lost: float) -> None:
        """Permanently shrink capacity by ``fraction_lost`` of its current value.

        The reserve floor shrinks proportionally (it is a fraction of
        capacity). Stored energy above the new capacity is written off and
        booked in :attr:`total_faded_j` so conservation accounting still
        closes: ``stored == eta*charged - discharged - faded`` (relative to
        the initial charge).
        """
        if not 0.0 <= fraction_lost < 1.0:
            raise ConfigurationError(
                f"fraction_lost must be in [0, 1), got {fraction_lost}"
            )
        keep = 1.0 - fraction_lost
        self._capacity_j *= keep
        self._reserve_j *= keep
        if self._stored_j > self._capacity_j:
            self._total_faded_j += self._stored_j - self._capacity_j
            self._stored_j = self._capacity_j

    # ------------------------------------------------------------- operations

    def admissible_charge_w(self, requested_w: float) -> float:
        """Largest charge power ``<= requested_w`` the battery accepts now.

        Limited by the charge-power bound; a nearly full battery still
        accepts the full power for one tick (capacity clipping happens in
        :meth:`charge`, which returns what was actually banked).
        """
        if requested_w < 0:
            raise BatteryError(f"negative charge power {requested_w}")
        if not self._available:
            return 0.0
        return min(requested_w, self._max_charge_w)

    def admissible_discharge_w(self, requested_w: float, dt_s: float) -> float:
        """Largest discharge power ``<= requested_w`` sustainable for ``dt_s``.

        Limited by both the discharge-power bound and the usable energy.
        """
        if requested_w < 0:
            raise BatteryError(f"negative discharge power {requested_w}")
        if dt_s <= 0:
            raise BatteryError("dt_s must be positive")
        if not self._available:
            return 0.0
        energy_limited = self.usable_j / dt_s
        return min(requested_w, self._max_discharge_w, energy_limited)

    def charge(self, power_w: float, dt_s: float) -> float:
        """Charge at ``power_w`` (wall side) for ``dt_s``; returns the wall
        power actually drawn.

        The wall draw may be clipped when the battery fills mid-tick. Energy
        banked is ``eta * wall_draw * dt``.

        Raises:
            BatteryError: for a negative power or when ``power_w`` exceeds
                the charge-power limit (the controller must pre-clamp with
                :meth:`admissible_charge_w`; silently absorbing an illegal
                request would hide scheduling bugs).
        """
        if dt_s <= 0:
            raise BatteryError("dt_s must be positive")
        if power_w < 0:
            raise BatteryError(f"negative charge power {power_w}")
        if power_w > self._max_charge_w + 1e-9:
            raise BatteryError(
                f"charge power {power_w} W exceeds limit {self._max_charge_w} W"
            )
        if not self._available:
            return 0.0
        storable_j = min(self._efficiency * power_w * dt_s, self.headroom_j)
        if storable_j <= 0.0:
            return 0.0
        wall_j = storable_j / self._efficiency
        self._stored_j += storable_j
        self._total_charged_j += wall_j
        self._total_stored_j += storable_j
        return wall_j / dt_s

    def discharge(self, power_w: float, dt_s: float) -> float:
        """Discharge at ``power_w`` for ``dt_s``; returns the power delivered.

        Delivery may be clipped when the usable energy runs out mid-tick.

        Raises:
            BatteryError: for a negative power or when ``power_w`` exceeds
                the discharge-power limit.
        """
        if dt_s <= 0:
            raise BatteryError("dt_s must be positive")
        if power_w < 0:
            raise BatteryError(f"negative discharge power {power_w}")
        if power_w > self._max_discharge_w + 1e-9:
            raise BatteryError(
                f"discharge power {power_w} W exceeds limit {self._max_discharge_w} W"
            )
        if not self._available:
            return 0.0
        deliverable_j = min(power_w * dt_s, self.usable_j)
        if deliverable_j <= 0.0:
            return 0.0
        self._stored_j -= deliverable_j
        self._total_discharged_j += deliverable_j
        return deliverable_j / dt_s
