"""ESD coordination: Eq. (5) duty cycles and per-tick power scheduling.

Requirement R4: when the power cap is too stringent for space coordination
(and sometimes even for alternate duty cycling), all applications go OFF
together - the package deep-sleeps and the cap headroom above idle charges
the battery - then all come ON together at full power, the battery covering
the overshoot. The OFF:ON ratio follows the paper's Eq. (5)::

    (d2 - d1) / (d3 - d2) = (P_idle + P_cm + sum(P_X) - P_cap)
                            / (eta * (P_cap - P_idle))

The numerator is the per-second battery energy the ON phase spends; the
denominator is the per-second energy the OFF phase banks (charging headroom
times efficiency). Equal energies per cycle make the schedule sustainable
indefinitely - the battery SoC returns to its starting point each period.

:class:`EsdController` executes that cycle tick by tick under a coordinator:
each tick the coordinator first asks :meth:`EsdController.begin_tick` which
phase applies (the controller refuses to enter ON until the battery can
actually sustain a full ON phase - cap adherence is a hard invariant, so a
dry battery extends the OFF phase rather than overshooting), then applies
the corresponding battery flow with :meth:`EsdController.bank` or
:meth:`EsdController.boost`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, PowerBudgetError
from repro.esd.battery import LeadAcidBattery


@dataclass(frozen=True)
class DutyCycle:
    """A consolidated OFF/ON schedule produced by Eq. (5).

    Attributes:
        off_s: Collective OFF (charging, deep sleep) duration per period.
        on_s: Collective ON (discharging, all apps at allocation) duration.
        charge_w: Wall power flowing into the battery during OFF.
        discharge_w: Battery power covering the overshoot during ON.
    """

    off_s: float
    on_s: float
    charge_w: float
    discharge_w: float

    @property
    def period_s(self) -> float:
        return self.off_s + self.on_s

    @property
    def on_fraction(self) -> float:
        """Fraction of wall-clock time the applications execute."""
        return self.on_s / self.period_s if self.period_s > 0 else 0.0

    @property
    def off_on_ratio(self) -> float:
        """The left-hand side of Eq. (5)."""
        if self.on_s <= 0:
            return float("inf")
        return self.off_s / self.on_s


class Phase(enum.Enum):
    """Where the controller currently is within the duty cycle."""

    OFF = "off"
    ON = "on"


def compute_duty_cycle(
    *,
    p_idle_w: float,
    p_cm_w: float,
    sum_app_w: float,
    p_cap_w: float,
    efficiency: float,
    period_s: float,
) -> DutyCycle:
    """Solve Eq. (5) for a sustainable consolidated duty cycle.

    Args:
        p_idle_w: Server idle power.
        p_cm_w: Chip-maintenance power (paid once during ON, zero during OFF
            thanks to PC6).
        sum_app_w: Total application power during ON (``sum P_X``).
        p_cap_w: The server power cap.
        efficiency: Battery round-trip efficiency ``eta``.
        period_s: Total cycle length ``off_s + on_s``.

    Returns:
        The schedule; when the ON draw already fits under the cap the OFF
        phase is zero (no ESD needed).

    Raises:
        PowerBudgetError: when ``p_cap_w <= p_idle_w`` (no charging headroom
            exists, so no duty cycle can sustain execution).
        ConfigurationError: on non-physical arguments.
    """
    if period_s <= 0:
        raise ConfigurationError("period_s must be positive")
    if not 0.0 < efficiency <= 1.0:
        raise ConfigurationError(f"efficiency must be in (0, 1], got {efficiency}")
    if min(p_idle_w, p_cm_w, sum_app_w) < 0:
        raise ConfigurationError("power terms must be non-negative")
    on_draw_w = p_idle_w + p_cm_w + sum_app_w
    overshoot_w = on_draw_w - p_cap_w
    if overshoot_w <= 0.0:
        # The cap already accommodates everyone: run continuously.
        return DutyCycle(off_s=0.0, on_s=period_s, charge_w=0.0, discharge_w=0.0)
    headroom_w = p_cap_w - p_idle_w
    if headroom_w <= 0.0:
        raise PowerBudgetError(
            f"cap {p_cap_w} W leaves no charging headroom above idle "
            f"{p_idle_w} W; even the ESD cannot mediate this struggle"
        )
    ratio = overshoot_w / (efficiency * headroom_w)  # Eq. (5)
    on_s = period_s / (1.0 + ratio)
    off_s = period_s - on_s
    return DutyCycle(
        off_s=off_s,
        on_s=on_s,
        charge_w=headroom_w,
        discharge_w=overshoot_w,
    )


class EsdController:
    """Executes a :class:`DutyCycle` against a physical battery.

    Per-tick protocol (driven by the coordinator):

    1. :meth:`begin_tick` - advances the phase machine and returns the phase
       that applies to this tick. The OFF -> ON transition additionally
       requires the battery to hold (nearly) a full ON phase of energy, so a
       cold start or a transient shortfall *extends* OFF instead of letting
       the server overshoot the cap mid-phase.
    2. :meth:`bank` (OFF) or :meth:`boost` (ON) - applies the battery flow
       for the tick and returns the realized wall/discharge power.

    Args:
        battery: The energy-storage device.
        cycle: The schedule to execute.
    """

    #: Fraction of a full ON phase's energy required before entering ON.
    _ON_ENERGY_MARGIN = 0.999

    def __init__(self, battery: LeadAcidBattery, cycle: DutyCycle) -> None:
        if cycle.period_s <= 0:
            raise ConfigurationError("duty cycle must have a positive period")
        self._battery = battery
        self._cycle = cycle
        self._phase = Phase.OFF if cycle.off_s > 0 else Phase.ON
        self._phase_elapsed_s = 0.0

    @property
    def battery(self) -> LeadAcidBattery:
        return self._battery

    @property
    def cycle(self) -> DutyCycle:
        return self._cycle

    @property
    def phase(self) -> Phase:
        return self._phase

    @property
    def in_on_phase(self) -> bool:
        """``True`` while applications should be executing."""
        return self._phase is Phase.ON

    def replace_cycle(self, cycle: DutyCycle) -> None:
        """Adopt a new schedule (after a re-allocation); the phase machine
        restarts in OFF when the new schedule has an OFF phase."""
        if cycle.period_s <= 0:
            raise ConfigurationError("duty cycle must have a positive period")
        self._cycle = cycle
        self._phase = Phase.OFF if cycle.off_s > 0 else Phase.ON
        self._phase_elapsed_s = 0.0

    def state_dict(self) -> dict:
        """Snapshot the schedule and phase machine for checkpointing."""
        return {
            "cycle": {
                "off_s": self._cycle.off_s,
                "on_s": self._cycle.on_s,
                "charge_w": self._cycle.charge_w,
                "discharge_w": self._cycle.discharge_w,
            },
            "phase": self._phase.value,
            "phase_elapsed_s": self._phase_elapsed_s,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        The phase is written directly rather than via :meth:`replace_cycle`,
        which would restart the machine in OFF regardless of where the
        checkpointed run actually was within its period.
        """
        cycle = state["cycle"]
        self._cycle = DutyCycle(
            off_s=float(cycle["off_s"]),
            on_s=float(cycle["on_s"]),
            charge_w=float(cycle["charge_w"]),
            discharge_w=float(cycle["discharge_w"]),
        )
        self._phase = Phase(state["phase"])
        self._phase_elapsed_s = float(state["phase_elapsed_s"])

    def begin_tick(self, dt_s: float) -> Phase:
        """Advance the phase machine; returns the phase for this tick.

        Raises:
            ConfigurationError: for a non-positive tick.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if self._cycle.off_s <= 0:
            self._phase = Phase.ON
            return self._phase
        if self._phase is Phase.OFF and self._phase_elapsed_s >= self._cycle.off_s:
            if self._on_phase_energy_available():
                self._phase = Phase.ON
                self._phase_elapsed_s = 0.0
            # else: stay OFF - keep banking until ON is sustainable.
        elif self._phase is Phase.ON and self._phase_elapsed_s >= self._cycle.on_s:
            self._phase = Phase.OFF
            self._phase_elapsed_s = 0.0
        return self._phase

    def bank(self, dt_s: float) -> float:
        """OFF-phase tick: charge the battery; returns wall power drawn.

        Raises:
            ConfigurationError: when called during the ON phase (the
                coordinator's phases and the controller's must agree).
        """
        if self._phase is not Phase.OFF:
            raise ConfigurationError("bank() called outside the OFF phase")
        admissible = self._battery.admissible_charge_w(self._cycle.charge_w)
        drawn = self._battery.charge(admissible, dt_s)
        self._phase_elapsed_s += dt_s
        return drawn

    def boost(self, dt_s: float, *, required_w: float | None = None) -> float:
        """ON-phase tick: discharge to cover the overshoot; returns the
        power actually delivered.

        Args:
            dt_s: Tick duration.
            required_w: The *measured* overshoot to cover this tick; the
                schedule's nominal ``discharge_w`` applies when omitted.
                (The nominal value came from power estimates; covering the
                measured draw is what keeps the wall within the cap when
                estimates err.)

        Raises:
            ConfigurationError: when called during the OFF phase.
        """
        if self._phase is not Phase.ON:
            raise ConfigurationError("boost() called outside the ON phase")
        target = self._cycle.discharge_w if required_w is None else max(0.0, required_w)
        admissible = self._battery.admissible_discharge_w(target, dt_s)
        delivered = self._battery.discharge(admissible, dt_s)
        self._phase_elapsed_s += dt_s
        return delivered

    def abort_on_phase(self) -> None:
        """Cut the ON phase short (battery exhausted mid-phase) and return
        to OFF so banking can resume. No-op outside the ON phase."""
        if self._phase is Phase.ON and self._cycle.off_s > 0:
            self._phase = Phase.OFF
            self._phase_elapsed_s = 0.0

    def can_boost(self, dt_s: float, *, required_w: float | None = None) -> bool:
        """Can the battery cover the *full* overshoot for one tick?

        Exact coverage is required - a partial boost would push the wall
        over the cap, and cap adherence is a hard invariant. A battery one
        tick short of energy aborts the ON phase instead.
        """
        target = self._cycle.discharge_w if required_w is None else max(0.0, required_w)
        if target <= 0:
            return True
        available = self._battery.admissible_discharge_w(target, dt_s)
        return available >= target - 1e-9

    def _on_phase_energy_available(self) -> bool:
        """Does the battery hold (nearly) a full ON phase of energy?"""
        needed_j = self._cycle.discharge_w * self._cycle.on_s * self._ON_ENERGY_MARGIN
        return self._battery.usable_j >= needed_j or needed_j <= 0.0
