"""Energy-storage chemistry presets.

The paper uses a Lead-Acid UPS; its own reference on datacenter energy
storage (Wang et al., SIGMETRICS 2012 - "Energy storage in datacenters:
what, where, and how much?") compares chemistries along exactly the axes
our battery model captures: round-trip efficiency, sustainable charge
/discharge rates, and usable depth of discharge. These presets let the
Fig. 5/10 experiments ask the natural follow-on question - what would a
different device on the same server buy?

Values are representative mid-points of the ranges in that literature,
scaled to a single-server device (~300 kJ, the class of the paper's UPS).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.esd.battery import LeadAcidBattery

#: Preset name -> constructor parameters.
_PRESETS: dict[str, dict[str, float]] = {
    # The paper's device: cheap, modest efficiency, shallow cycling.
    "lead-acid": dict(
        capacity_j=300_000.0,
        efficiency=0.70,
        max_charge_w=50.0,
        max_discharge_w=60.0,
        reserve_fraction=0.0,
    ),
    # Li-ion: high efficiency, higher sustainable rates, deeper cycling.
    "li-ion": dict(
        capacity_j=300_000.0,
        efficiency=0.92,
        max_charge_w=100.0,
        max_discharge_w=120.0,
        reserve_fraction=0.0,
    ),
    # Ultracapacitor bank: near-lossless and power-dense, with an energy
    # store two orders below the batteries - ample for the paper's 10 s
    # duty cycles (~200 J per burst), binding only for much longer phases.
    "ultracap": dict(
        capacity_j=8_000.0,
        efficiency=0.98,
        max_charge_w=200.0,
        max_discharge_w=250.0,
        reserve_fraction=0.0,
    ),
    # A conservative UPS policy on the same Lead-Acid cell: half the
    # capacity is reserved for outage backup (the dual-purposing question
    # of the paper's reference [32]).
    "lead-acid-backup-reserve": dict(
        capacity_j=300_000.0,
        efficiency=0.70,
        max_charge_w=50.0,
        max_discharge_w=60.0,
        reserve_fraction=0.5,
    ),
}

#: Public listing of available presets.
BATTERY_PRESETS = tuple(sorted(_PRESETS))


def make_battery(preset: str, *, initial_soc: float | None = None) -> LeadAcidBattery:
    """Construct a battery from a chemistry preset.

    Args:
        preset: One of :data:`BATTERY_PRESETS`.
        initial_soc: Starting state of charge; defaults to the preset's
            reserve floor (empty usable store, like the paper's cold start).

    Raises:
        ConfigurationError: for unknown preset names.
    """
    try:
        params = dict(_PRESETS[preset])
    except KeyError:
        raise ConfigurationError(
            f"unknown battery preset {preset!r}; available: {BATTERY_PRESETS}"
        ) from None
    if initial_soc is None:
        initial_soc = params["reserve_fraction"]
    return LeadAcidBattery(
        capacity_j=params["capacity_j"],
        efficiency=params["efficiency"],
        max_charge_w=params["max_charge_w"],
        max_discharge_w=params["max_discharge_w"],
        reserve_fraction=params["reserve_fraction"],
        initial_soc=initial_soc,
    )
