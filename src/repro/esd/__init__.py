"""Energy-storage device models and coordination (Requirement R4).

The paper's server carries a Lead-Acid UPS that the framework uses as a
power-management knob: bank energy during collective OFF periods (when the
cap leaves headroom above idle) and spend it during collective ON periods to
exceed the cap. This package provides:

* :class:`~repro.esd.battery.LeadAcidBattery` - SoC dynamics, round-trip
  efficiency, charge/discharge power limits, cycle accounting;
* :class:`~repro.esd.controller.EsdController` - the Eq. (5) duty-cycle
  computation and the per-tick charge/discharge scheduling that keeps wall
  power within the cap.
"""

from repro.esd.battery import LeadAcidBattery, BatteryStats
from repro.esd.controller import EsdController, DutyCycle, Phase, compute_duty_cycle
from repro.esd.presets import BATTERY_PRESETS, make_battery

__all__ = [
    "LeadAcidBattery",
    "BatteryStats",
    "EsdController",
    "DutyCycle",
    "Phase",
    "compute_duty_cycle",
    "BATTERY_PRESETS",
    "make_battery",
]
