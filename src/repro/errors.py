"""Exception hierarchy for the power-struggle mediation framework.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause. The sub-classes mirror
the major subsystems: server simulation, knob actuation, power accounting, energy
storage, learning, and allocation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was constructed or reconfigured with invalid parameters.

    Examples: a negative power cap, a DVFS frequency outside the hardware's
    supported range, a workload profile with a non-positive work size.
    """


class KnobError(ReproError):
    """A power-allocation knob was actuated with an unsupported setting.

    The knob space of the paper's platform is discrete: 9 DVFS steps between
    1.2 and 2.0 GHz, 1-6 cores per application, and 3-10 W of DRAM power in
    1 W units. Any setting outside these sets raises :class:`KnobError`.
    """


class PowerBudgetError(ReproError):
    """A requested allocation cannot be satisfied within the power budget.

    Raised, for example, when the server cap is below idle power (nothing the
    controller does can help) or when an allocator is asked to divide a budget
    that cannot sustain even the cheapest configuration of any application and
    no temporal-coordination fallback was permitted.
    """


class BatteryError(ReproError):
    """An energy-storage operation violated the device's physical limits.

    Examples: discharging an empty battery, charging above the maximum charge
    power, or constructing a battery with a non-positive capacity.
    """


class LearningError(ReproError):
    """A collaborative-filtering operation could not be performed.

    Examples: folding in an application with zero sampled configurations, or
    factorizing an empty preference matrix.
    """


class SchedulingError(ReproError):
    """An application lifecycle operation was invalid.

    Examples: starting an application that is already running on the server,
    removing an application that was never admitted, or admitting more
    applications than the server has isolable core groups for.
    """


class SimulationError(ReproError):
    """The discrete-time simulation reached an inconsistent state.

    This indicates a bug in a policy or in the engine itself - e.g. the power
    model reporting a draw above the enforced cap after coordination, or time
    moving backwards.
    """


class FaultError(ReproError):
    """A fault-injection plan or operation was invalid.

    Examples: a fault spec with an unknown kind, a negative start time, or an
    injector asked to act on a server component the fault class does not
    target. Note that *injected* faults never raise - they degrade the
    substrate; this exception covers misuse of the injection machinery itself.
    """


class TelemetryError(ReproError):
    """A telemetry reading could not be produced or trusted.

    Examples: reading a sensor that is inside a blackout window, or asking
    the watchdog for an observation when every recent sample was dropped and
    no model-predicted fallback was configured.
    """


class PersistenceError(ReproError):
    """Checkpoint/journal state could not be saved or restored.

    The message is always a single line naming what failed and where
    (schema version mismatch, offending field path, torn record index), so
    a CLI can surface it verbatim instead of a traceback.
    """


class CheckpointError(PersistenceError):
    """A checkpoint file is unreadable, corrupt, or version-incompatible."""


class JournalError(PersistenceError):
    """A write-ahead journal is corrupt beyond the torn-tail recovery rule.

    A malformed *final* record is expected after a crash (the torn tail) and
    silently dropped; a malformed record in the journal's interior means the
    file was damaged, and replaying past it would diverge from the run it
    records.
    """


class ObservabilityError(ReproError):
    """Observability data (trace or metrics JSON) is invalid or inconsistent.

    Like :class:`PersistenceError`, the message is always a single line
    naming what failed and where, so the CLI can surface it verbatim.
    """


class TraceError(ObservabilityError):
    """A trace file is unreadable, malformed, or violates a run invariant.

    Examples: a JSONL line that does not parse, a sequence-number gap, a
    tick event whose wall power exceeds the recorded cap without a breach
    flag, or a battery state of charge outside [0, 1].
    """


class ServiceError(ReproError):
    """The streaming service facade was misused or violated a stream invariant.

    Examples: submitting to a closed ingest buffer, a client session whose
    replay cursor points past the retained delivery window, or a delivery
    sequence gap detected on reconnect. Like :class:`PersistenceError`, the
    message is a single line suitable for verbatim CLI display.
    """


class NetworkError(ReproError):
    """A simulated-network or control-plane configuration is invalid.

    Examples: a loss probability outside [0, 1], a partition window that
    ends before it starts, a malformed ``--partition`` spec on the CLI, or
    a control-plane lease shorter than the heartbeat interval. Like
    :class:`PersistenceError`, the message is a single line suitable for
    verbatim CLI display.
    """


class AdversaryError(ReproError):
    """An adversary schedule or strategic-workload operation was invalid.

    Examples: an attack spec with an unknown kind, a non-positive magnitude,
    a probe whose burst is longer than its period, or registering an attack
    for an application twice. Note that *executed* attacks never raise - they
    degrade honest tenants until the defenses quarantine them; this exception
    covers misuse of the attack machinery itself. The message is a single
    line suitable for verbatim CLI display.
    """


class RetryExhaustedError(ReproError):
    """A retried operation ran out of its attempt or deadline budget.

    Raised by :meth:`repro.util.retry.RetryPolicy.require` when either the
    bounded attempt count or the total-deadline tick budget is spent. The
    message is a single line naming the operation and which budget ran out,
    so callers that degrade gracefully (actuation escalation, control-plane
    safe-cap fallback) can log it verbatim before parking the work.
    """


class ChaosError(ReproError):
    """A chaos-soak run violated a recovery invariant.

    Raised when a kill/restart schedule produces a sustained cap breach, a
    non-conserved battery ledger, or a final utility outside the configured
    tolerance of the uninterrupted baseline.
    """
