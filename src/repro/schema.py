"""Path-tracking validation helpers for JSON documents.

Every loader in the package that accepts external JSON (fault plans,
checkpoints, journals) funnels raw values through a :class:`Validator` bound
to the subsystem's exception class. Instead of a raw ``KeyError`` or
``TypeError`` deep inside a constructor, malformed input produces a single
line naming the offending field by its JSON path::

    faults[2].start_s: expected a number, got 'abc'

The helpers deliberately mirror the handful of shapes JSON can express
(object, array, string, number, integer, boolean) rather than a full schema
language - the documents involved are small and hand-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, NoReturn

from repro.errors import ReproError

__all__ = ["Validator"]


def _describe(value: Any) -> str:
    """A short, human-oriented description of a bad value."""
    if isinstance(value, bool):
        return f"boolean {value}"
    if value is None:
        return "null"
    if isinstance(value, (dict, list)):
        return f"a {type(value).__name__} of length {len(value)}"
    return repr(value)


@dataclass(frozen=True)
class Validator:
    """Validation helpers that raise ``error`` with a JSON-path message.

    Attributes:
        error: The :class:`~repro.errors.ReproError` subclass to raise; each
            loader binds its own (``FaultError`` for fault plans,
            ``CheckpointError`` for checkpoints, and so on).
    """

    error: type[ReproError]

    def fail(self, path: str, message: str) -> NoReturn:
        """Raise the bound error with a ``path: message`` one-liner."""
        raise self.error(f"{path}: {message}")

    def as_dict(self, value: Any, path: str) -> dict[str, Any]:
        if not isinstance(value, dict):
            self.fail(path, f"expected an object, got {_describe(value)}")
        return value

    def as_list(self, value: Any, path: str) -> list[Any]:
        if not isinstance(value, list):
            self.fail(path, f"expected an array, got {_describe(value)}")
        return value

    def as_str(self, value: Any, path: str) -> str:
        if not isinstance(value, str):
            self.fail(path, f"expected a string, got {_describe(value)}")
        return value

    def as_number(self, value: Any, path: str) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.fail(path, f"expected a number, got {_describe(value)}")
        return float(value)

    def as_int(self, value: Any, path: str) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            self.fail(path, f"expected an integer, got {_describe(value)}")
        return value

    def as_bool(self, value: Any, path: str) -> bool:
        if not isinstance(value, bool):
            self.fail(path, f"expected a boolean, got {_describe(value)}")
        return value

    def require(self, mapping: dict[str, Any], key: str, path: str) -> Any:
        """Fetch a required key, failing with the full path when missing."""
        if key not in mapping:
            self.fail(f"{path}.{key}" if path else key, "required field is missing")
        return mapping[key]

    def choice(self, value: Any, path: str, allowed: tuple[str, ...]) -> str:
        """A string constrained to an enumerated set."""
        text = self.as_str(value, path)
        if text not in allowed:
            self.fail(path, f"expected one of {list(allowed)}, got {text!r}")
        return text
