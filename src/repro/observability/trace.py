"""Structured per-run trace bus with a deterministic content hash.

A :class:`TraceBus` collects typed events as the simulation runs. Events come
in two flavours:

* **sim events** carry a monotone sequence number and are pure functions of
  simulation state — same seed, same events, byte for byte. The run's
  content hash (:func:`trace_hash`) covers exactly these.
* **meta events** (``seq`` is null) record facts about the *execution* of
  the run — checkpoints written, crashes observed, restores performed. They
  are kept in the file for forensics but excluded from the hash, so a
  crash-restart run stitches to the same hash as an uninterrupted one.

The mediator moves the bus's tick cursor at the top of every tick
(:meth:`TraceBus.begin_tick`); emitters then only name the event kind and
payload. The supervisor records :meth:`TraceBus.mark` alongside every
checkpoint; on recovery it calls :meth:`TraceBus.truncate_to_mark` with the
restored checkpoint's mark to drop every sim event emitted after that
snapshot - journal replay then deterministically re-emits identical events,
which is what makes the stitched stream replay-consistent. (Truncation is by
sequence number, not tick: commands journaled after a checkpoint are
replayed too, and their events carry the pre-crash tick cursor.)

Serialisation is canonical JSON (sorted keys, compact separators) one event
per line, so two identical runs produce byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import TraceError
from repro.schema import Validator

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "CONTROL_PLANE_KINDS",
    "ADVERSARY_KINDS",
    "HIERARCHY_KINDS",
    "TraceEvent",
    "TraceBus",
    "NullTraceBus",
    "NULL_TRACE_BUS",
    "canonical_line",
    "trace_hash",
    "write_trace",
    "read_trace",
    "verify_trace",
    "summarize_trace",
]

TRACE_SCHEMA_VERSION = 1

_VALIDATE = Validator(error=TraceError)

#: Event kinds emitted by the instrumented components. ``verify_trace``
#: rejects kinds outside this set so schema drift fails loudly.
SIM_KINDS = frozenset(
    {
        "tick",  # one per mediator tick: wall power, cap, mode, soc
        "battery",  # nonzero ESD charge/discharge flow this tick
        "allocation",  # an adopted allocation plan (per-app budgets, knobs)
        "mode-switch",  # coordination mode changed between plans
        "knob-actuation",  # a verified per-app knob write
        "suspend",  # an app transitioned running -> suspended
        "resume",  # an app transitioned suspended -> running
        "emergency-throttle",  # watchdog floor-throttle on a cap breach
        "cap-change",  # E1: the provisioner moved the server cap
        "arrival",  # E2: an application was admitted
        "departure",  # E3: an application finished or was removed
        "phase-change",  # E4: the accountant flagged a phase change
        "fault",  # F: a fault-injection episode began
        "recovery",  # R: a fault episode ended
        "cluster-bin",  # cluster search evaluated a (cap, count) bin
        "cluster-level",  # cluster search finished one shave level
        "cluster-controlplane",  # one control-plane replay summary per level
        "cp-command",  # controller sent a SetCap grant (fresh or retry)
        "cp-ack",  # controller received a node's acknowledgement
        "cp-epoch-reject",  # a node rejected a stale-epoch command
        "cp-lease-expired",  # a node's lease lapsed; it fell to its safe cap
        "cp-suspect",  # heartbeat loss made the controller suspect a node
        "cp-reintegrate",  # a suspect node's heartbeat returned
        "cp-reconcile",  # anti-entropy reissued state after a heal
        "cp-restart",  # a controller came back from a checkpoint (safe hold)
        "hier-fallback",  # a subtree lost its upstream lease (autonomous mode)
        "hier-heal",  # a fallen-back subtree re-acquired an upstream lease
        "hier-outage",  # a pdu/rack failure-domain outage window opened
        "hier-recover",  # a failure-domain outage window closed
        "hier-restart",  # an interior controller warm-restarted from checkpoint
        "hier-level",  # one budget-tree run summary per level
        "client-connect",  # a service client session opened (or churned in)
        "client-disconnect",  # a client session dropped (churned out)
        "client-replay",  # a reconnecting client replayed missed deliveries
        "ingest-shed",  # backpressure shed the oldest buffered arrival
        "ingest-reject",  # backpressure NACKed a new arrival at the door
        "overload-enter",  # ingest occupancy crossed the overload watermark
        "overload-exit",  # ingest occupancy fell back below the watermark
        "adv-attack-start",  # an adversary spec's attack window opened
        "adv-attack-stop",  # an attack window closed (or the attacker left)
        "adv-suspect",  # the TrustScorer moved an app to SUSPECT
        "adv-quarantine",  # an app was quarantined (suspended + excluded)
        "adv-probation",  # a quarantine expired into PROBATION
        "adv-trusted",  # an app regained full trust
    }
)

#: Control-plane event kinds (the ``cp-`` prefix), for display grouping.
CONTROL_PLANE_KINDS = frozenset(k for k in SIM_KINDS if k.startswith("cp-"))

#: Adversary/defense event kinds (the ``adv-`` prefix), for display grouping.
ADVERSARY_KINDS = frozenset(k for k in SIM_KINDS if k.startswith("adv-"))

#: Budget-tree event kinds (the ``hier-`` prefix), for display grouping.
HIERARCHY_KINDS = frozenset(k for k in SIM_KINDS if k.startswith("hier-"))

META_KINDS = frozenset({"trace-header", "checkpoint", "crash", "restore", "replayed"})


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        seq: Monotone index among sim events; ``None`` marks a meta event.
        tick: The mediator tick the event belongs to (cursor at emit time).
        time_s: Simulation time of the owning tick, seconds.
        kind: Event type, one of ``SIM_KINDS`` or ``META_KINDS``.
        payload: JSON-native details; keys depend on ``kind``.
    """

    seq: int | None
    tick: int
    time_s: float
    kind: str
    payload: dict[str, Any]

    @property
    def is_meta(self) -> bool:
        return self.seq is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "tick": self.tick,
            "time_s": self.time_s,
            "kind": self.kind,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "event") -> "TraceEvent":
        doc = _VALIDATE.as_dict(data, path)
        raw_seq = doc.get("seq", _MISSING)
        if raw_seq is _MISSING:
            _VALIDATE.fail(f"{path}.seq", "missing field")
        seq = None if raw_seq is None else _VALIDATE.as_int(raw_seq, f"{path}.seq")
        tick = _VALIDATE.as_int(doc.get("tick"), f"{path}.tick")
        time_s = _VALIDATE.as_number(doc.get("time_s"), f"{path}.time_s")
        kind = _VALIDATE.as_str(doc.get("kind"), f"{path}.kind")
        payload = _VALIDATE.as_dict(doc.get("payload"), f"{path}.payload")
        return cls(seq=seq, tick=tick, time_s=float(time_s), kind=kind, payload=payload)


_MISSING = object()


def _jsonable(value: Any, path: str) -> Any:
    """Coerce a payload value to JSON-native types, rejecting surprises.

    Numpy scalars are converted through their Python equivalents so the
    canonical encoding (and therefore the hash) never depends on numpy's
    repr. Non-finite floats are rejected: they would round-trip through
    JSON as ``NaN``/``Infinity`` extensions, which are not portable.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise TraceError(f"{path}: non-finite float {value!r} in trace payload")
        return float(value)  # demote float subclasses (numpy) to the builtin
    if hasattr(value, "item") and not isinstance(value, (list, dict)):  # numpy scalar
        return _jsonable(value.item(), path)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise TraceError(f"{path}: non-string payload key {key!r}")
            out[key] = _jsonable(val, f"{path}.{key}")
        return out
    raise TraceError(f"{path}: value of type {type(value).__name__} is not JSON-native")


class TraceBus:
    """In-memory collector of :class:`TraceEvent` records for one run."""

    #: Distinguishes a live bus from the shared no-op singleton.
    active = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._next_seq = 0
        self._tick = 0
        self._time_s = 0.0
        self.emit_meta("trace-header", {"schema": TRACE_SCHEMA_VERSION})

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def sim_events(self) -> Iterator[TraceEvent]:
        return (event for event in self._events if not event.is_meta)

    def begin_tick(self, tick: int, time_s: float) -> None:
        """Move the tick cursor; emitters inherit it until the next call."""
        self._tick = int(tick)
        self._time_s = float(time_s)

    def emit(self, kind: str, payload: dict[str, Any] | None = None) -> TraceEvent:
        """Record a sim event at the current tick cursor."""
        if kind not in SIM_KINDS:
            raise TraceError(f"unknown sim event kind {kind!r}")
        event = TraceEvent(
            seq=self._next_seq,
            tick=self._tick,
            time_s=self._time_s,
            kind=kind,
            payload=_jsonable(payload or {}, kind),
        )
        self._next_seq += 1
        self._events.append(event)
        return event

    def emit_meta(self, kind: str, payload: dict[str, Any] | None = None) -> TraceEvent:
        """Record a meta event (excluded from the content hash)."""
        if kind not in META_KINDS:
            raise TraceError(f"unknown meta event kind {kind!r}")
        event = TraceEvent(
            seq=None,
            tick=self._tick,
            time_s=self._time_s,
            kind=kind,
            payload=_jsonable(payload or {}, kind),
        )
        self._events.append(event)
        return event

    def mark(self) -> int:
        """The sequence number the *next* sim event will receive.

        The supervisor snapshots this alongside every checkpoint; handing
        the same value back to :meth:`truncate_to_mark` rewinds the sim
        stream to exactly the checkpointed prefix.
        """
        return self._next_seq

    def truncate_to_mark(self, mark: int) -> int:
        """Drop sim events with ``seq >= mark``; keep all meta events.

        Called on recovery before replay: everything emitted after the
        restored checkpoint's mark - late ticks *and* the sim events of
        commands journaled after it - will be deterministically re-emitted
        by journal replay, so the stitched sim stream matches an
        uninterrupted run. Returns the number of events dropped.
        """
        if mark < 0:
            raise TraceError(f"trace mark must be non-negative, got {mark}")
        kept: list[TraceEvent] = []
        dropped = 0
        for event in self._events:
            if event.is_meta or event.seq < mark:  # type: ignore[operator]
                kept.append(event)
            else:
                dropped += 1
        self._events = kept
        self._next_seq = min(self._next_seq, mark)
        return dropped

    def content_hash(self) -> str:
        return trace_hash(self._events)


class NullTraceBus(TraceBus):
    """No-op bus: every emit is discarded. Shared default for all components."""

    active = False

    def __init__(self) -> None:
        self._events = []
        self._next_seq = 0
        self._tick = 0
        self._time_s = 0.0

    def begin_tick(self, tick: int, time_s: float) -> None:
        pass

    def emit(self, kind: str, payload: dict[str, Any] | None = None) -> TraceEvent:
        return _NULL_EVENT

    def emit_meta(self, kind: str, payload: dict[str, Any] | None = None) -> TraceEvent:
        return _NULL_EVENT


_NULL_EVENT = TraceEvent(seq=None, tick=0, time_s=0.0, kind="trace-header", payload={})

#: Shared stateless no-op bus; components default to this.
NULL_TRACE_BUS = NullTraceBus()


def canonical_line(event: TraceEvent) -> str:
    """The canonical JSON encoding of one event: sorted keys, no spaces."""
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


def trace_hash(events: Iterable[TraceEvent]) -> str:
    """sha256 over the canonical sim-event lines (meta events excluded)."""
    digest = hashlib.sha256()
    for event in events:
        if event.is_meta:
            continue
        digest.update(canonical_line(event).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def write_trace(path: str | os.PathLike, source: TraceBus | Iterable[TraceEvent]) -> str:
    """Write events as canonical JSONL; returns the content hash."""
    events = source.events if isinstance(source, TraceBus) else list(source)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(canonical_line(event))
            handle.write("\n")
    return trace_hash(events)


def read_trace(path: str | os.PathLike) -> list[TraceEvent]:
    """Parse a JSONL trace file; raises one-line :class:`TraceError` on damage."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc.strerror or exc}") from exc
    events: list[TraceEvent] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: line {index + 1} is not valid JSON: {exc.msg}") from exc
        events.append(TraceEvent.from_dict(doc, path=f"{path}: line {index + 1}"))
    return events


def verify_trace(
    events: list[TraceEvent],
    cap_tolerance_w: float = 1e-6,
    *,
    strict_kinds: bool = True,
) -> dict[str, int]:
    """Check run invariants on a trace; raises :class:`TraceError` on violation.

    The checks are exactly the ones a stitched (crash-restart) trace must
    also satisfy: a schema header, gap-free sim sequence numbers,
    non-decreasing tick cursor, one consecutive ``tick`` event per tick
    with non-decreasing sim time, wall power within the recorded cap unless
    the event is breach-flagged, and battery state of charge in [0, 1].

    With ``strict_kinds=False`` unknown event kinds are tolerated (counted
    in the returned ``unknown_kinds``) instead of raising - a newer writer's
    trace should still verify its structural invariants on an older reader.
    """
    if not events:
        raise TraceError("trace is empty")
    header = events[0]
    if header.kind != "trace-header":
        raise TraceError(f"first event is {header.kind!r}, expected 'trace-header'")
    schema = header.payload.get("schema")
    if schema != TRACE_SCHEMA_VERSION:
        raise TraceError(f"unsupported trace schema {schema!r} (expected {TRACE_SCHEMA_VERSION})")

    next_seq = 0
    last_tick = -1
    last_tick_event: TraceEvent | None = None
    breach_ticks = 0
    tick_events = 0
    unknown_kinds = 0
    for event in events:
        if event.kind not in SIM_KINDS and event.kind not in META_KINDS:
            if strict_kinds:
                raise TraceError(f"seq {event.seq}: unknown event kind {event.kind!r}")
            unknown_kinds += 1
        if event.is_meta:
            continue
        if event.seq != next_seq:
            raise TraceError(f"sequence gap: expected seq {next_seq}, found {event.seq}")
        next_seq += 1
        if event.tick < last_tick:
            raise TraceError(
                f"seq {event.seq}: tick cursor moved backwards ({last_tick} -> {event.tick})"
            )
        last_tick = event.tick
        if event.kind == "tick":
            tick_events += 1
            if last_tick_event is not None:
                if event.tick != last_tick_event.tick + 1:
                    raise TraceError(
                        f"seq {event.seq}: tick event jumped "
                        f"{last_tick_event.tick} -> {event.tick}"
                    )
                if event.time_s < last_tick_event.time_s:
                    raise TraceError(f"seq {event.seq}: simulation time moved backwards")
            last_tick_event = event
            wall_w = event.payload.get("wall_w")
            cap_w = event.payload.get("cap_w")
            breach = bool(event.payload.get("breach", False))
            if breach:
                breach_ticks += 1
            if (
                isinstance(wall_w, (int, float))
                and isinstance(cap_w, (int, float))
                and not breach
                and wall_w > cap_w + cap_tolerance_w
            ):
                raise TraceError(
                    f"seq {event.seq}: wall power {wall_w:.6f} W exceeds cap "
                    f"{cap_w:.6f} W without a breach flag"
                )
        if event.kind in ("tick", "battery"):
            soc = event.payload.get("soc")
            if isinstance(soc, (int, float)) and not -1e-9 <= soc <= 1.0 + 1e-9:
                raise TraceError(f"seq {event.seq}: state of charge {soc} outside [0, 1]")
    return {
        "events": len(events),
        "sim_events": next_seq,
        "ticks": tick_events,
        "breach_ticks": breach_ticks,
        "unknown_kinds": unknown_kinds,
    }


def summarize_trace(events: list[TraceEvent]) -> dict[str, Any]:
    """Aggregate a trace for display: kind counts, mode residency, span, hash.

    Kinds outside the known sim/meta sets are still counted in ``kinds``
    and tallied under ``other`` - summarization must never crash on a trace
    written by a newer schema.
    """
    kinds: dict[str, int] = {}
    modes: dict[str, int] = {}
    other = 0
    ticks = 0
    first_tick: int | None = None
    last_tick: int | None = None
    first_time = 0.0
    last_time = 0.0
    restarts = 0
    meta_events = 0
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.kind not in SIM_KINDS and event.kind not in META_KINDS:
            other += 1
        if event.is_meta:
            meta_events += 1
            if event.kind == "restore":
                restarts += 1
            continue
        if event.kind == "tick":
            ticks += 1
            if first_tick is None:
                first_tick = event.tick
                first_time = event.time_s
            last_tick = event.tick
            last_time = event.time_s
            mode = event.payload.get("mode")
            if isinstance(mode, str):
                modes[mode] = modes.get(mode, 0) + 1
    return {
        "events": len(events),
        "sim_events": len(events) - meta_events,
        "meta_events": meta_events,
        "ticks": ticks,
        "first_tick": first_tick,
        "last_tick": last_tick,
        "duration_s": (last_time - first_time) if ticks else 0.0,
        "kinds": dict(sorted(kinds.items())),
        "modes": dict(sorted(modes.items())),
        "other": other,
        "restarts": restarts,
        "hash": trace_hash(events),
    }
