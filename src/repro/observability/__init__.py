"""Observability: structured tracing, metrics, and phase profiling.

Three cooperating layers, all optional and zero-cost when unused:

* :mod:`repro.observability.trace` — a per-run :class:`TraceBus` collecting
  typed per-tick events (knob actuation, allocation decisions, coordination
  mode switches, battery flow, faults/recoveries, checkpoint/replay
  markers) written as canonical JSONL with a content hash. Same seed ⇒
  byte-identical trace; the golden-trace suite pins that.
* :mod:`repro.observability.metrics` — a :class:`MetricsRegistry` of
  counters, gauges, and windowed histograms, exportable to JSON for the
  benchmark trajectory.
* :mod:`repro.observability.profiling` — :class:`PhaseProfiler` wall-clock
  timers around the mediator's learn/allocate/coordinate/actuate phases.
  Timings go into the metrics JSON only, never into the trace, so the
  trace hash stays deterministic.
"""

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.profiling import PhaseProfiler
from repro.observability.streaming import StreamingTraceBus
from repro.observability.trace import (
    NULL_TRACE_BUS,
    TRACE_SCHEMA_VERSION,
    NullTraceBus,
    TraceBus,
    TraceEvent,
    read_trace,
    summarize_trace,
    trace_hash,
    verify_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "NULL_TRACE_BUS",
    "NullTraceBus",
    "StreamingTraceBus",
    "TRACE_SCHEMA_VERSION",
    "TraceBus",
    "TraceEvent",
    "read_trace",
    "summarize_trace",
    "trace_hash",
    "verify_trace",
    "write_trace",
]
