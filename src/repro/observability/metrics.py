"""Counters, gauges, and windowed histograms behind a mergeable registry.

Replaces the ad-hoc integer counters that grew inside ``core/resilience.py``
and the chaos harness with three small primitives:

* :class:`Counter` — monotone; ``inc`` rejects negative deltas, so a counter
  read is always a lower bound on events seen.
* :class:`Gauge` — last-write-wins scalar (state of charge, tick count).
* :class:`Histogram` — a bounded observation window for quantiles plus
  *cumulative* count/sum/min/max, so long runs keep exact totals while the
  window stays O(1) memory.

Registries serialise to JSON (:meth:`MetricsRegistry.to_json`) for the
``BENCH_*.json`` trajectory and merge associatively: merging two registries
is observationally equal to replaying both observation streams into one —
the property the hypothesis suite pins.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from typing import Any, Iterable

from repro.errors import ObservabilityError
from repro.schema import Validator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS_SCHEMA_VERSION"]

METRICS_SCHEMA_VERSION = 1

_VALIDATE = Validator(error=ObservabilityError)

_DEFAULT_WINDOW = 512
_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def inc(self, delta: float = 1) -> None:
        if delta < 0:
            raise ObservabilityError(
                f"counter {self.name!r}: negative increment {delta} (counters are monotone)"
            )
        self._value += delta

    def reset(self, value: float = 0) -> None:
        """Set the count outright - only for checkpoint-restore paths, which
        may legitimately rewind a counter; live code must use :meth:`inc`."""
        self._value = value


class Gauge:
    """A last-write-wins scalar; ``value`` is ``None`` until first set."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str, value: float | None = None) -> None:
        self.name = name
        self._value = value

    @property
    def value(self) -> float | None:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)


class Histogram:
    """Cumulative stats plus a bounded window of recent observations.

    Quantiles use the nearest-rank method over the window, so they are
    always actual observed values (and therefore bounded by the window's
    min/max, which the cumulative min/max in turn bound).
    """

    __slots__ = ("name", "window_size", "_window", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, window_size: int = _DEFAULT_WINDOW) -> None:
        if window_size < 1:
            raise ObservabilityError(f"histogram {name!r}: window_size must be >= 1")
        self.name = name
        self.window_size = int(window_size)
        self._window: deque[float] = deque(maxlen=self.window_size)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    @property
    def window(self) -> list[float]:
        return list(self._window)

    def observe(self, value: float) -> None:
        value = float(value)
        self._window.append(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile over the window; ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"histogram {self.name!r}: quantile {q} outside [0, 1]")
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def snapshot(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "window_size": self.window_size,
            "window": self.window,
        }
        for q in _QUANTILES:
            doc[f"p{int(q * 100)}"] = self.quantile(q)
        return doc


class MetricsRegistry:
    """A namespace of metrics, created on first touch and exportable to JSON."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, window_size: int = _DEFAULT_WINDOW) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, window_size=window_size)
        return histogram

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float | None]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_json(cls, doc: Any, path: str = "metrics") -> "MetricsRegistry":
        data = _VALIDATE.as_dict(doc, path)
        schema = data.get("schema")
        if schema != METRICS_SCHEMA_VERSION:
            _VALIDATE.fail(f"{path}.schema", f"unsupported version {schema!r}")
        registry = cls()
        for name, value in _VALIDATE.as_dict(data.get("counters", {}), f"{path}.counters").items():
            registry._counters[name] = Counter(
                name, _VALIDATE.as_number(value, f"{path}.counters.{name}")
            )
        for name, value in _VALIDATE.as_dict(data.get("gauges", {}), f"{path}.gauges").items():
            gauge = Gauge(name)
            if value is not None:
                gauge.set(_VALIDATE.as_number(value, f"{path}.gauges.{name}"))
            registry._gauges[name] = gauge
        raw_hists = _VALIDATE.as_dict(data.get("histograms", {}), f"{path}.histograms")
        for name, snap in raw_hists.items():
            snap = _VALIDATE.as_dict(snap, f"{path}.histograms.{name}")
            hist = Histogram(
                name,
                window_size=_VALIDATE.as_int(
                    snap.get("window_size", _DEFAULT_WINDOW), f"{path}.histograms.{name}.window_size"
                ),
            )
            window = _VALIDATE.as_list(snap.get("window", []), f"{path}.histograms.{name}.window")
            for i, value in enumerate(window):
                hist._window.append(
                    _VALIDATE.as_number(value, f"{path}.histograms.{name}.window[{i}]")
                )
            hist.count = _VALIDATE.as_int(snap.get("count", 0), f"{path}.histograms.{name}.count")
            hist.total = _VALIDATE.as_number(
                snap.get("sum", 0.0), f"{path}.histograms.{name}.sum"
            )
            raw_min = snap.get("min")
            raw_max = snap.get("max")
            hist.minimum = (
                math.inf
                if raw_min is None
                else _VALIDATE.as_number(raw_min, f"{path}.histograms.{name}.min")
            )
            hist.maximum = (
                -math.inf
                if raw_max is None
                else _VALIDATE.as_number(raw_max, f"{path}.histograms.{name}.max")
            )
            registry._histograms[name] = hist
        return registry

    @classmethod
    def load(cls, path: str | os.PathLike) -> "MetricsRegistry":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read metrics {path}: {exc.strerror or exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"{path}: not valid JSON: {exc.msg}") from exc
        return cls.from_json(doc, path=str(path))

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry equal to replaying both observation streams in order.

        Counters add; gauges take the other registry's value when it was
        ever set (last write wins); histogram windows concatenate (other's
        observations are newer) and cumulative stats combine exactly.
        """
        merged = MetricsRegistry()
        for name in {**self._counters, **other._counters}:
            total = 0.0
            if name in self._counters:
                total += self._counters[name].value
            if name in other._counters:
                total += other._counters[name].value
            merged._counters[name] = Counter(name, total)
        for name in {**self._gauges, **other._gauges}:
            theirs = other._gauges.get(name)
            mine = self._gauges.get(name)
            winner = theirs if theirs is not None and theirs.value is not None else mine
            merged._gauges[name] = Gauge(name, winner.value if winner is not None else None)
        for name in {**self._histograms, **other._histograms}:
            mine_h = self._histograms.get(name)
            theirs_h = other._histograms.get(name)
            window_size = (theirs_h or mine_h).window_size  # type: ignore[union-attr]
            hist = Histogram(name, window_size=window_size)
            for source in (mine_h, theirs_h):
                if source is None:
                    continue
                hist._window.extend(source._window)
                hist.count += source.count
                hist.total += source.total
                hist.minimum = min(hist.minimum, source.minimum)
                hist.maximum = max(hist.maximum, source.maximum)
            merged._histograms[name] = hist
        return merged
