"""A trace bus with bounded memory and a replay-identical content hash.

:class:`~repro.observability.trace.TraceBus` keeps every event in memory -
correct for batch experiments, fatal for a service soak that runs for days.
:class:`StreamingTraceBus` bounds the retained window by **sealing** the
oldest sim events into an incremental sha256 and (optionally) spilling their
canonical lines to a JSONL sink file. Because the hash definition is a fold
over canonical sim-event lines in sequence order, folding a prefix eagerly
and the retained suffix lazily produces *exactly* :func:`trace_hash` of the
full stream - retention never changes the hash.

The one interaction that needs care is crash recovery:
:meth:`TraceBus.truncate_to_mark` rewinds the sim stream to a checkpoint's
mark, which is impossible for events already folded into the digest. The
bus therefore refuses to seal past its **seal mark**, which the service
advances only when a checkpoint covering those events becomes durable - the
same rule the journal's retention uses. Recovery always truncates to the
latest durable checkpoint's mark, so the sealed prefix is never at risk.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.errors import TraceError
from repro.observability.trace import TraceBus, canonical_line

__all__ = ["StreamingTraceBus"]


class StreamingTraceBus(TraceBus):
    """A :class:`TraceBus` that seals old events into an incremental hash.

    Args:
        retain_events: Soft cap on in-memory events; :meth:`compact` (called
            automatically on emit) evicts the sealable prefix beyond it.
            The window can exceed the cap when the seal mark lags (events
            newer than the last durable checkpoint must stay truncatable).
        sink_path: Optional JSONL file receiving the canonical line of every
            evicted event, so the full stream remains reconstructible on
            disk even though memory is bounded.
    """

    def __init__(
        self, *, retain_events: int = 4096, sink_path: str | Path | None = None
    ) -> None:
        if retain_events < 1:
            raise TraceError(f"retain_events must be at least 1, got {retain_events}")
        self._retain_events = retain_events
        self._sealed_digest = hashlib.sha256()
        self._sealed_through = 0  # sim seqs < this are folded into the digest
        self._seal_mark = 0  # sim seqs < this are *allowed* to be sealed
        self._sealed_count = 0
        if sink_path is None:
            self._sink = None
        else:
            path = Path(sink_path)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = open(path, "a", encoding="utf-8")
            except OSError as exc:
                raise TraceError(f"cannot open trace sink {path}: {exc}") from None
        super().__init__()  # emits the trace-header meta event

    @property
    def retained_events(self) -> int:
        """In-memory window size right now (the retention footprint gauge)."""
        return len(self._events)

    @property
    def sealed_events(self) -> int:
        """Events evicted into the digest/sink so far."""
        return self._sealed_count

    @property
    def sealed_through(self) -> int:
        """Sim events with ``seq < sealed_through`` are hashed and immutable."""
        return self._sealed_through

    def set_seal_mark(self, mark: int) -> None:
        """Allow sealing of sim events with ``seq < mark``.

        The caller asserts that no future recovery will truncate below
        ``mark`` - i.e. a checkpoint taken at that bus mark is durable. The
        mark is monotone; moving it backwards would un-promise that.
        """
        if mark < self._seal_mark:
            raise TraceError(
                f"seal mark must be monotone: {mark} < current {self._seal_mark}"
            )
        self._seal_mark = mark

    def compact(self) -> int:
        """Evict the oldest events beyond the retention cap; returns evicted.

        Meta events evict freely (they are outside the hash). Sim events
        evict only below the seal mark, in sequence order, each folded into
        the incremental digest - so :meth:`content_hash` stays equal to the
        full-stream :func:`~repro.observability.trace.trace_hash`.
        """
        excess = len(self._events) - self._retain_events
        if excess <= 0:
            return 0
        evicted = 0
        index = 0
        for event in self._events:
            if evicted >= excess:
                break
            if not event.is_meta:
                if event.seq >= self._seal_mark:
                    break  # still truncatable; must stay in memory
                # Prefix eviction in storage order keeps sealed seqs contiguous.
                assert event.seq == self._sealed_through
                self._sealed_digest.update(canonical_line(event).encode("utf-8"))
                self._sealed_digest.update(b"\n")
                self._sealed_through = event.seq + 1
            if self._sink is not None:
                try:
                    self._sink.write(canonical_line(event) + "\n")
                except OSError as exc:
                    raise TraceError(f"cannot write trace sink: {exc}") from None
            evicted += 1
            index += 1
        if evicted:
            self._events = self._events[index:]
            self._sealed_count += evicted
        return evicted

    def emit(self, kind, payload=None):
        event = super().emit(kind, payload)
        if len(self._events) > self._retain_events:
            self.compact()
        return event

    def emit_meta(self, kind, payload=None):
        event = super().emit_meta(kind, payload)
        if len(self._events) > self._retain_events:
            self.compact()
        return event

    def truncate_to_mark(self, mark: int) -> int:
        if mark < self._sealed_through:
            raise TraceError(
                f"cannot truncate to mark {mark}: sim events through "
                f"{self._sealed_through} are sealed into the streaming hash"
            )
        return super().truncate_to_mark(mark)

    def content_hash(self) -> str:
        """sha256 of sealed prefix + retained suffix == full-stream hash."""
        digest = self._sealed_digest.copy()
        for event in self._events:
            if event.is_meta:
                continue
            digest.update(canonical_line(event).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def close_sink(self) -> None:
        """Flush and close the spill sink (idempotent; no-op without one)."""
        if self._sink is not None:
            try:
                self._sink.flush()
            except OSError:
                pass
            self._sink.close()
            self._sink = None
