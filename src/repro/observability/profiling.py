"""Per-phase wall-clock timers for the mediator's control loop.

A :class:`PhaseProfiler` accumulates elapsed wall-clock time per named phase
(learn, allocate, coordinate, actuate, engine, ...) via a context manager
that costs two ``perf_counter`` calls — cheap enough to leave on always.

Timings are *execution* facts, not simulation facts: they vary run to run
on the same seed. They therefore live only in the metrics JSON and must
never be emitted on the trace bus, or the trace hash would stop being
deterministic.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["PhaseProfiler"]

#: Samples retained per phase for the p95 estimate. Sliding window rather
#: than full history: phases fire once per tick, and a multi-hour service
#: run must not grow profiler state without bound.
_P95_WINDOW = 512


class _PhaseStat:
    __slots__ = ("calls", "total_s", "max_s", "window")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.window: deque[float] = deque(maxlen=_P95_WINDOW)

    def add(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        self.window.append(elapsed_s)

    def p95_s(self) -> float:
        """Nearest-rank p95 over the retained window (0.0 when empty)."""
        if not self.window:
            return 0.0
        ordered = sorted(self.window)
        rank = max(int(0.95 * len(ordered) + 0.5), 1)
        return ordered[min(rank, len(ordered)) - 1]


class PhaseProfiler:
    """Accumulates wall-clock time per named phase of the control loop."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._phases: dict[str, _PhaseStat] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        stat = self._phases.get(name)
        if stat is None:
            stat = self._phases[name] = _PhaseStat()
        start = self._clock()
        try:
            yield
        finally:
            stat.add(self._clock() - start)

    def report(self) -> dict[str, dict[str, Any]]:
        """Per-phase call counts, totals and tail latency, sorted by
        cumulative time. ``p95_s`` is nearest-rank over the most recent
        ``_P95_WINDOW`` samples of that phase."""
        ordered = sorted(self._phases.items(), key=lambda item: -item[1].total_s)
        return {
            name: {
                "calls": stat.calls,
                "total_s": stat.total_s,
                "mean_s": stat.total_s / stat.calls if stat.calls else 0.0,
                "max_s": stat.max_s,
                "p95_s": stat.p95_s(),
            }
            for name, stat in ordered
        }
