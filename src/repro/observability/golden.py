"""Golden-trace regression machinery: pin whole runs by trace hash.

A *golden spec* describes one seeded ``repro mix``-equivalent run - mix,
policy, cap, durations, seed - plus the expectations it pins: the trace
content hash and the coordination-mode regime the run settles into. The
regression suite replays each spec and compares hashes; because the hash
covers every sim event (allocations, knob writes, suspensions, battery
flows, tick-level power), any behavioural drift anywhere in the mediation
stack flips it.

The spec file is the single source of truth, checked into the repo at
``tests/golden/golden_traces.json``. When a change *intentionally* alters
behaviour, regenerate it with one command::

    PYTHONPATH=src python -m repro.observability.golden \
        tests/golden/golden_traces.json --write

and review the resulting diff (mode residency is stored alongside the hash
precisely so the diff says *what kind* of behaviour moved). ``--check``
replays the file and exits non-zero on any mismatch, which is what the test
suite and CI do.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Any

from repro.errors import ObservabilityError
from repro.observability.trace import TraceBus, summarize_trace, verify_trace
from repro.schema import Validator

__all__ = ["GoldenSpec", "GoldenOutcome", "run_spec", "load_specs", "save_specs"]

_VALIDATE = Validator(error=ObservabilityError)


@dataclass(frozen=True)
class GoldenSpec:
    """One pinned run and its recorded expectations.

    ``trace_hash`` and ``modes`` are the *recorded* outcome (empty/None on a
    freshly authored spec until ``--write`` fills them in); everything else
    parameterizes the run. ``engine`` selects the server model
    implementation; the vector engine is pinned to the *same* hashes as the
    scalar reference, so a vector spec re-records to an identical hash.
    """

    name: str
    mix_id: int
    policy: str
    p_cap_w: float
    duration_s: float
    warmup_s: float
    seed: int
    use_oracle_estimates: bool
    regime: str  # dominant coordination mode the spec is meant to pin
    trace_hash: str | None = None
    modes: dict[str, int] | None = None
    engine: str = "scalar"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "mix_id": self.mix_id,
            "policy": self.policy,
            "p_cap_w": self.p_cap_w,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
            "use_oracle_estimates": self.use_oracle_estimates,
            "regime": self.regime,
            "trace_hash": self.trace_hash,
            "modes": self.modes,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "spec") -> "GoldenSpec":
        doc = _VALIDATE.as_dict(data, path)
        raw_modes = doc.get("modes")
        modes = (
            None
            if raw_modes is None
            else {
                str(mode): _VALIDATE.as_int(count, f"{path}.modes.{mode}")
                for mode, count in _VALIDATE.as_dict(raw_modes, f"{path}.modes").items()
            }
        )
        raw_hash = doc.get("trace_hash")
        return cls(
            name=_VALIDATE.as_str(doc.get("name"), f"{path}.name"),
            mix_id=_VALIDATE.as_int(doc.get("mix_id"), f"{path}.mix_id"),
            policy=_VALIDATE.as_str(doc.get("policy"), f"{path}.policy"),
            p_cap_w=float(_VALIDATE.as_number(doc.get("p_cap_w"), f"{path}.p_cap_w")),
            duration_s=float(
                _VALIDATE.as_number(doc.get("duration_s"), f"{path}.duration_s")
            ),
            warmup_s=float(_VALIDATE.as_number(doc.get("warmup_s"), f"{path}.warmup_s")),
            seed=_VALIDATE.as_int(doc.get("seed"), f"{path}.seed"),
            use_oracle_estimates=bool(doc.get("use_oracle_estimates", False)),
            regime=_VALIDATE.as_str(doc.get("regime"), f"{path}.regime"),
            trace_hash=None if raw_hash is None else str(raw_hash),
            modes=modes,
            engine=_VALIDATE.as_str(doc.get("engine", "scalar"), f"{path}.engine"),
        )


@dataclass(frozen=True)
class GoldenOutcome:
    """What replaying a spec actually produced."""

    trace_hash: str
    modes: dict[str, int]
    ticks: int

    @property
    def dominant_mode(self) -> str | None:
        if not self.modes:
            return None
        return max(sorted(self.modes), key=lambda m: self.modes[m])


def run_spec(spec: GoldenSpec, *, defense=None) -> GoldenOutcome:
    """Replay one golden spec, verify its trace, and report the outcome.

    ``defense`` forwards a :class:`repro.core.trust.DefenseConfig`; the
    recorded hashes must be invariant to it on these all-honest runs (the
    trust layer is a pure observer until someone misbehaves).
    """
    # Imported lazily: golden specs sit below the simulation stack, and the
    # simulation stack imports this package.
    from repro.core.simulation import run_mix_experiment
    from repro.workloads.mixes import get_mix

    bus = TraceBus()
    run_mix_experiment(
        list(get_mix(spec.mix_id).profiles()),
        spec.policy,
        spec.p_cap_w,
        mix_id=spec.mix_id,
        duration_s=spec.duration_s,
        warmup_s=spec.warmup_s,
        use_oracle_estimates=spec.use_oracle_estimates,
        seed=spec.seed,
        trace_bus=bus,
        defense=defense,
        engine=spec.engine,
    )
    verify_trace(bus.events)
    summary = summarize_trace(bus.events)
    return GoldenOutcome(
        trace_hash=summary["hash"], modes=summary["modes"], ticks=summary["ticks"]
    )


def load_specs(path: str | os.PathLike) -> list[GoldenSpec]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read golden specs {path}: {exc.strerror or exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: not valid JSON: {exc.msg}") from exc
    items = _VALIDATE.as_list(doc, str(path))
    return [GoldenSpec.from_dict(item, f"{path}[{i}]") for i, item in enumerate(items)]


def save_specs(path: str | os.PathLike, specs: list[GoldenSpec]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([spec.to_dict() for spec in specs], handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay golden-trace specs: --check compares, --write re-records."
    )
    parser.add_argument("specs", help="path to golden_traces.json")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--check", action="store_true", help="fail on any hash/regime mismatch"
    )
    group.add_argument(
        "--write", action="store_true", help="record current hashes into the file"
    )
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    specs = load_specs(args.specs)
    failures = 0
    updated: list[GoldenSpec] = []
    for spec in specs:
        outcome = run_spec(spec)
        if outcome.dominant_mode != spec.regime:
            print(
                f"{spec.name}: regime {outcome.dominant_mode!r} != expected "
                f"{spec.regime!r} (modes {outcome.modes})",
                file=sys.stderr,
            )
            failures += 1
        if args.write:
            updated.append(
                GoldenSpec(
                    **{
                        **spec.to_dict(),
                        "trace_hash": outcome.trace_hash,
                        "modes": outcome.modes,
                    }
                )
            )
            print(f"{spec.name}: recorded {outcome.trace_hash}")
        elif outcome.trace_hash != spec.trace_hash:
            print(
                f"{spec.name}: trace hash {outcome.trace_hash} != recorded "
                f"{spec.trace_hash}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"{spec.name}: ok ({outcome.ticks} ticks, modes {outcome.modes})")
    if args.write and failures == 0:
        save_specs(args.specs, updated)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the regen command
    raise SystemExit(main())
