"""Service-mode chaos: client churn, ingest overload, mid-stream kills.

The scenario ISSUE 6 demands: an open-loop client population streams
commands at a :class:`~repro.service.loop.MediatorService` while clients
churn (disconnect/reconnect on a seeded schedule), burst windows push the
ingest buffer into overload, and the process is killed mid-stream with a
torn journal tail. :func:`run_service_soak` executes that run *and* an
uninterrupted baseline with the identical churn schedule, then enforces
the service invariants (each failure raises
:class:`~repro.errors.ChaosError` with the violating numbers):

1. **Cap safety** - the recovered mediator's full timeline passes
   :func:`~repro.core.simulation.verify_cap_invariant`: wall power at or
   under the cap at every tick, any flagged breach accounted.
2. **Safety lane integrity** - zero ``service.ingest.safety_shed``, every
   scheduled cap change applied; when overload was provoked, the regular
   ``service.ingest.shed`` counter proves arrivals were shed instead.
3. **Determinism through crashes** - every sim-side service counter
   (ingest dispositions, admissions, deliveries, replays, completions)
   matches the uninterrupted baseline exactly, and the stitched streaming
   trace hashes identically to the baseline's.
4. **Gap-free replay** - replay verification is built into
   :meth:`~repro.service.sessions.ClientSession.reconnect` (a gap raises
   mid-run); the soak additionally requires that churn actually exercised
   it (``service.sessions.replayed`` > 0).
5. **Bounded footprint** - retained trace events, journal segments, and
   on-disk checkpoints all end under their configured bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.simulation import verify_cap_invariant
from repro.errors import ChaosError, ConfigurationError, SimulationError
from repro.persistence.segments import list_segments
from repro.service.loop import MediatorService, ServiceConfig, ServiceKilled

__all__ = [
    "ChurnSchedule",
    "ServiceSoakReport",
    "run_service_soak",
    "service_kill_hook",
    "service_kill_ticks",
]

#: Sim-side counters that must be identical between a crash-recovered run
#: and its uninterrupted baseline (execution-side counters - restarts,
#: replayed ticks, checkpoints, retention - legitimately differ).
DETERMINISTIC_COUNTERS = (
    "service.ingest.accepted",
    "service.ingest.rejected",
    "service.ingest.deferred",
    "service.ingest.shed",
    "service.ingest.safety_accepted",
    "service.ingest.safety_shed",
    "service.admit.admitted",
    "service.admit.rejected",
    "service.commands.cap_applied",
    "service.jobs.completed",
    "service.jobs.cancelled",
    "service.overload.entered",
    "service.overload.exited",
    "service.sessions.deliveries",
    "service.sessions.disconnects",
    "service.sessions.reconnects",
    "service.sessions.replayed",
)


class ChurnSchedule:
    """A seeded, tick-keyed client disconnect/reconnect schedule.

    Purely a function of its constructor arguments: the service consults it
    inside the deterministic tick pipeline, so the same schedule drives the
    baseline and the chaos run (and crash re-execution) identically.

    Args:
        clients: Client ids ``0..clients-1`` are eligible to churn.
        total_ticks: Horizon the events are scattered over.
        events: Disconnect/reconnect pairs to schedule.
        seed: Chaos seed (independent of the simulation's RNG).
        min_off_ticks / max_off_ticks: Disconnect duration bounds.
    """

    def __init__(
        self,
        *,
        clients: int,
        total_ticks: int,
        events: int,
        seed: int,
        min_off_ticks: int = 20,
        max_off_ticks: int = 200,
    ) -> None:
        if clients < 1:
            raise ConfigurationError(f"need at least one client, got {clients}")
        if not 1 <= min_off_ticks <= max_off_ticks:
            raise ConfigurationError(
                f"churn needs 1 <= min_off <= max_off, got "
                f"{min_off_ticks}..{max_off_ticks}"
            )
        self._by_tick: dict[int, list[tuple[str, int]]] = {}
        rng = np.random.default_rng(seed)
        for _ in range(max(0, events)):
            client = int(rng.integers(clients))
            start = int(rng.integers(1, max(2, total_ticks)))
            off = int(rng.integers(min_off_ticks, max_off_ticks + 1))
            self._by_tick.setdefault(start, []).append(("disconnect", client))
            self._by_tick.setdefault(start + off, []).append(("connect", client))
        # Deterministic intra-tick order: connects first (so a same-tick
        # disconnect of the same client wins), then by client id.
        for actions in self._by_tick.values():
            actions.sort(key=lambda a: (a[0] != "connect", a[1]))

    def at(self, tick: int) -> list[tuple[str, int]]:
        return self._by_tick.get(tick, [])

    @property
    def event_count(self) -> int:
        return sum(len(v) for v in self._by_tick.values())


def service_kill_ticks(total_ticks: int, kills: int, seed: int) -> list[int]:
    """Pick ``kills`` distinct kill ticks in ``[1, total_ticks)``, sorted.

    Tick 0 is excluded: the service writes its tick-0 checkpoint at
    construction, so a kill before tick 1 would test nothing.
    """
    if total_ticks < 2 or kills <= 0:
        return []
    rng = np.random.default_rng(seed)
    count = min(kills, total_ticks - 1)
    picks = rng.choice(np.arange(1, total_ticks), size=count, replace=False)
    return sorted(int(t) for t in picks)


def service_kill_hook(kill_ticks: list[int]) -> Callable[[int], None]:
    """A tick hook raising :class:`ServiceKilled` once per scheduled tick.

    Fired kills are consumed, so crash re-execution sailing back past a
    kill tick does not die again (mirroring the supervisor's hooks).
    """
    remaining = sorted(kill_ticks)

    def hook(tick: int) -> None:
        if remaining and tick == remaining[0]:
            fired = remaining.pop(0)
            raise ServiceKilled(f"chaos kill at tick {fired}")

    return hook


@dataclass(frozen=True)
class ServiceSoakReport:
    """Outcome of one service soak (invariants already enforced).

    Attributes:
        ticks: Sim ticks both runs completed.
        kill_ticks: Where the chaos run was killed.
        restarts: Warm restarts the chaos run survived.
        replayed_ticks: Ticks re-executed across all recoveries.
        breach_ticks: Flagged (responded-to) cap breach ticks.
        shed_commands: Regular commands shed under overload (identical in
            both runs by invariant 3).
        replayed_deliveries: Deliveries replayed to reconnecting clients.
        trace_hash: The (identical) content hash of both runs' traces.
        counters: The chaos run's full service counter map.
    """

    ticks: int
    kill_ticks: tuple[int, ...]
    restarts: int
    replayed_ticks: int
    breach_ticks: int
    shed_commands: int
    replayed_deliveries: int
    trace_hash: str
    counters: dict[str, float]


def _counter(counters: dict[str, float], name: str) -> float:
    return float(counters.get(name, 0.0))


def run_service_soak(
    config: ServiceConfig,
    workdir: str | Path,
    *,
    total_ticks: int,
    kills: int = 2,
    churn_events: int = 8,
    chaos_seed: int = 0,
    tear_journal_bytes: int = 256,
    expect_sheds: bool = False,
    expect_overload: bool = False,
) -> ServiceSoakReport:
    """Run baseline + chaos service runs and enforce the soak invariants.

    Args:
        config: The service recipe both runs share.
        workdir: Scratch root; ``baseline/`` and ``chaos/`` land inside.
        total_ticks: Sim ticks to run.
        kills: Mid-stream process kills to inject.
        churn_events: Client disconnect/reconnect pairs to schedule.
        chaos_seed: Seed for kill ticks and churn (never the sim's RNG).
        tear_journal_bytes: Un-fsynced journal tail destroyed per crash.
        expect_sheds: Require that overload actually shed arrivals (use
            with a config whose bursts overrun the ingest buffer).
        expect_overload: Require that the overload posture was entered.

    Returns:
        The :class:`ServiceSoakReport`; raises :class:`ChaosError` on any
        invariant violation.
    """
    workdir = Path(workdir)
    churn = ChurnSchedule(
        clients=config.clients,
        total_ticks=total_ticks,
        events=churn_events,
        seed=chaos_seed,
    )
    kill_ticks = service_kill_ticks(total_ticks, kills, chaos_seed)

    baseline = MediatorService(config, workdir / "baseline", churn=churn)
    baseline.run_for_ticks(total_ticks)
    baseline.close()
    base_hash = baseline.content_hash()
    base_counters = dict(baseline.metrics.counters())

    chaos = MediatorService(
        config,
        workdir / "chaos",
        churn=churn,
        tick_hook=service_kill_hook(kill_ticks),
        tear_journal_bytes_on_crash=tear_journal_bytes,
    )
    chaos.run_for_ticks(total_ticks)
    chaos.close()
    chaos_hash = chaos.content_hash()
    counters = dict(chaos.metrics.counters())

    if chaos.tick != total_ticks or baseline.tick != total_ticks:
        raise ChaosError(
            f"runs fell short: baseline {baseline.tick}, chaos {chaos.tick}, "
            f"wanted {total_ticks}"
        )
    restarts = int(_counter(counters, "service.restarts"))
    if kill_ticks and restarts != len(kill_ticks):
        raise ChaosError(
            f"scheduled {len(kill_ticks)} kills but the service recorded "
            f"{restarts} restarts"
        )

    # 1. Cap safety over the full recovered timeline.
    try:
        breach_ticks = verify_cap_invariant(chaos.mediator)
        verify_cap_invariant(baseline.mediator)
    except SimulationError as exc:
        raise ChaosError(f"cap invariant violated: {exc}") from None

    # 2. The safety lane was never shed; cap changes all landed.
    if _counter(counters, "service.ingest.safety_shed") != 0:
        raise ChaosError(
            f"{_counter(counters, 'service.ingest.safety_shed'):.0f} cap-safety "
            "commands were shed"
        )
    applied = _counter(counters, "service.commands.cap_applied")
    accepted_safety = _counter(counters, "service.ingest.safety_accepted")
    if applied != accepted_safety:
        raise ChaosError(
            f"{accepted_safety:.0f} cap commands entered the safety lane but "
            f"only {applied:.0f} were applied"
        )
    sheds = _counter(counters, "service.ingest.shed")
    if expect_sheds and sheds == 0:
        raise ChaosError("overload was expected to shed arrivals but shed none")
    if expect_overload and _counter(counters, "service.overload.entered") == 0:
        raise ChaosError("the overload posture was never entered")

    # 3. Determinism: sim-side counters and the stitched trace.
    for name in DETERMINISTIC_COUNTERS:
        base_v, chaos_v = _counter(base_counters, name), _counter(counters, name)
        if base_v != chaos_v:
            raise ChaosError(
                f"counter {name} diverged: baseline {base_v:.0f}, "
                f"chaos {chaos_v:.0f}"
            )
    if chaos_hash != base_hash:
        raise ChaosError(
            f"stitched trace hash {chaos_hash[:12]} != baseline {base_hash[:12]}"
        )

    # 4. Replay was exercised (gaps would have raised mid-run).
    replayed = _counter(counters, "service.sessions.replayed")
    if churn_events > 0 and replayed == 0:
        raise ChaosError("churn was scheduled but no deliveries were replayed")

    # 5. Bounded footprint.
    retention = config.retention
    for svc, label in ((baseline, "baseline"), (chaos, "chaos")):
        bus = svc.trace_bus
        retained = getattr(bus, "retained_events", 0)
        # One compaction pass runs per retention cadence; between passes the
        # window may grow by everything emitted since, bounded by cadence.
        slack = retention.every_ticks * 64
        if retained > retention.retain_trace_events + slack:
            raise ChaosError(
                f"{label}: {retained} trace events retained, bound "
                f"{retention.retain_trace_events} (+{slack} cadence slack)"
            )
        segments = len(list_segments(svc.journal_dir))
        segment_bound = (
            2
            + (retention.every_ticks * 8) // retention.records_per_segment
            + (total_ticks % retention.every_ticks * 8) // retention.records_per_segment
        )
        if segments > segment_bound:
            raise ChaosError(
                f"{label}: {segments} journal segments on disk, bound {segment_bound}"
            )
        checkpoints = len(sorted(svc.checkpoint_dir.glob("svc-*.json")))
        if checkpoints > retention.keep_checkpoints + 1:
            raise ChaosError(
                f"{label}: {checkpoints} checkpoints on disk, bound "
                f"{retention.keep_checkpoints + 1}"
            )

    return ServiceSoakReport(
        ticks=total_ticks,
        kill_ticks=tuple(kill_ticks),
        restarts=restarts,
        replayed_ticks=int(_counter(counters, "service.replayed_ticks")),
        breach_ticks=breach_ticks,
        shed_commands=int(sheds),
        replayed_deliveries=int(replayed),
        trace_hash=chaos_hash,
        counters=counters,
    )
