"""Byzantine chaos: honest-vs-adversarial mixes under seeded attack schedules.

One adversarial run co-locates a Table II mix exactly like
:func:`~repro.core.simulation.run_mix_experiment`, but with one tenant
executing a seeded :class:`~repro.adversary.plan.AdversarySchedule` while the
mediator's :class:`~repro.core.trust.TrustScorer` defends. Three arms share
one simulation seed:

1. **All-honest control** (defense on) - the Table II baseline. The defense
   must be invisible here: *zero* trust transitions (the false-positive
   control) and the cap invariant at every tick.
2. **Adversarial, defended** - the attack runs against the live defense.
   Every attacker must be quarantined within the per-kind detection bound,
   no honest tenant may ever leave full trust, and each honest tenant's
   normalized throughput must retain at least the per-kind floor of its
   all-honest baseline.
3. **Adversarial, undefended** (optional) - the same attack with the
   TrustScorer disabled. The defense must never make honest tenants
   materially worse than doing nothing: defended honest throughput >=
   undefended - ``undefended_slack``.

Any violated invariant raises :class:`~repro.errors.ChaosError` carrying the
violating numbers.

The per-kind bounds encode the physics of each regime, measured on mix 1
(stream + kmeans, oracle estimates, seed 0):

- ``inflate`` / ``probe`` / ``spike`` run in the SPACE regime at a 108 W cap;
  quarantining the attacker *frees* budget, so honest retention sits at
  96-103% and the floor is a comfortable 0.85. Detection is strike-driven
  (probe/spike) or efficiency-score-driven (inflate) and lands within a few
  burst periods; spike's bound covers one full duty-cycle period plus slack
  because its bursts only recur once per period.
- ``freeride`` runs in the ESD regime at the paper's 80 W cap. Detection
  needs discharge-covered ON phases to catch the parasitic draw, so its
  bound spans two duty-cycle periods. Retention is structurally lower
  (floor 0.45): every defense transition replans, each replan restarts the
  duty cycle in its OFF phase, and the quarantine guard band (5% of 80 W)
  drops the dynamic budget below the cheapest surviving config's power
  floor, pinning the survivor in duty-cycling instead of SPACE mode. The
  defended-vs-undefended slack is the meaningful guarantee here.

The soak repeats this across attack kinds and a seed matrix, sharing each
(scenario, seed) baseline across the kinds that use the same regime, and
aggregates detection latency and false-positive-rate metrics for CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.plan import (
    ADVERSARY_KINDS,
    AdversarySchedule,
    default_adversary_schedule,
)
from repro.core.mediator import PowerMediator
from repro.core.policies import Policy, make_policy
from repro.core.simulation import (
    MixExperimentResult,
    default_battery,
    summarize_mix_run,
)
from repro.core.trust import DefenseConfig
from repro.errors import ChaosError, ConfigurationError, SimulationError
from repro.observability.metrics import MetricsRegistry
from repro.server.config import DEFAULT_SERVER_CONFIG, ServerConfig
from repro.server.server import SimulatedServer
from repro.workloads.mixes import get_mix
from repro.workloads.profiles import WorkloadProfile

#: Detection bound per attack kind, in ticks from the attack window opening.
#: probe: a handful of 1.5 s burst periods (phase jitter can delay the first
#: burst by up to one period). spike: one 10 s duty-cycle period plus slack.
#: freeride: two duty-cycle periods - evidence only accrues during
#: discharge-covered ON phases.
DETECTION_BOUND_TICKS: dict[str, int] = {
    "inflate": 60,
    "probe": 60,
    "spike": 120,
    "freeride": 250,
}

#: Minimum defended honest throughput as a fraction of the all-honest
#: baseline, per attack kind (see the module docstring for why freeride's
#: floor is structurally lower).
HONEST_RETENTION_FLOOR: dict[str, float] = {
    "inflate": 0.85,
    "probe": 0.85,
    "spike": 0.85,
    "freeride": 0.45,
}

#: Absolute normalized-throughput slack allowed between the defended and
#: undefended adversarial arms: the defense may cost honest tenants at most
#: this much versus doing nothing at all.
UNDEFENDED_SLACK = 0.05


@dataclass(frozen=True)
class AttackScenario:
    """The (policy, cap, timing) regime one attack kind is evaluated in.

    Attributes:
        kind: Attack class (see :data:`~repro.adversary.plan.ADVERSARY_KINDS`).
        policy: Mediation policy name for every arm.
        p_cap_w: Server cap for every arm.
        warmup_s: Settling window excluded from throughput accounting.
        duration_s: Measurement window after warm-up.
        attack_start_s: When the attack window opens (at the end of warm-up
            by default, so the whole attack lands inside the measured
            window).
        attack_duration_s: Attack window length.
        detection_bound_ticks: Quarantine deadline, in ticks from
            ``attack_start_s``.
        retention_floor: Per-honest-app throughput floor vs the all-honest
            baseline.
    """

    kind: str
    policy: str
    p_cap_w: float
    warmup_s: float
    duration_s: float
    attack_start_s: float
    attack_duration_s: float
    detection_bound_ticks: int
    retention_floor: float

    @property
    def total_s(self) -> float:
        return self.warmup_s + self.duration_s


def default_attack_scenario(kind: str) -> AttackScenario:
    """The acceptance-suite regime for one attack kind.

    The SPACE-regime kinds run under the learning-free spatial policy at a
    108 W cap (both mix apps comfortably co-schedulable, so the attack's
    damage - not budget starvation - is what the arms measure). ``freeride``
    only exists under ESD discharge, so it runs the full ESD-aware policy at
    the paper's 80 W duty-cycling cap, for longer: its evidence channel is
    gated on ON phases that recur every 10 s.
    """
    if kind not in ADVERSARY_KINDS:
        raise ConfigurationError(
            f"unknown adversary kind {kind!r}; have {list(ADVERSARY_KINDS)}"
        )
    if kind == "freeride":
        return AttackScenario(
            kind=kind,
            policy="app+res+esd-aware",
            p_cap_w=80.0,
            warmup_s=5.0,
            duration_s=35.0,
            attack_start_s=5.0,
            attack_duration_s=20.0,
            detection_bound_ticks=DETECTION_BOUND_TICKS[kind],
            retention_floor=HONEST_RETENTION_FLOOR[kind],
        )
    return AttackScenario(
        kind=kind,
        policy="app+res-aware",
        p_cap_w=108.0,
        warmup_s=5.0,
        duration_s=25.0,
        attack_start_s=5.0,
        attack_duration_s=20.0,
        detection_bound_ticks=DETECTION_BOUND_TICKS[kind],
        retention_floor=HONEST_RETENTION_FLOOR[kind],
    )


@dataclass(frozen=True)
class AdversaryRunResult:
    """Outcome of one honest-vs-adversarial comparison (invariants enforced).

    Attributes:
        scenario: The regime the arms ran in.
        mix_id: Table II mix number.
        attackers: The adversarial app names, sorted.
        detection_latency_ticks: Per attacker, ticks from the attack window
            opening to quarantine.
        honest_retention: Per honest app, defended throughput as a fraction
            of its all-honest baseline.
        false_positives: Honest-app trust transitions observed across the
            control and defended arms (zero, or the run would have raised).
        baseline: All-honest control summary.
        defended: Adversarial defended-arm summary.
        undefended: Adversarial undefended-arm summary (``None`` when that
            arm was skipped).
        transitions: The defended arm's full trust-transition log, as
            ``(tick, app, from, to)`` tuples.
    """

    scenario: AttackScenario
    mix_id: int
    attackers: tuple[str, ...]
    detection_latency_ticks: dict[str, int]
    honest_retention: dict[str, float]
    false_positives: int
    baseline: MixExperimentResult
    defended: MixExperimentResult
    undefended: MixExperimentResult | None
    transitions: tuple[tuple[int, str, str, str], ...]

    @property
    def worst_detection_latency_ticks(self) -> int:
        return max(self.detection_latency_ticks.values())

    @property
    def worst_retention(self) -> float:
        return min(self.honest_retention.values())


@dataclass(frozen=True)
class AdversarySoakResult:
    """Aggregate of a byzantine soak (every run already passed its bounds)."""

    runs: tuple[AdversaryRunResult, ...]

    @property
    def max_detection_latency_ticks(self) -> int:
        return max(r.worst_detection_latency_ticks for r in self.runs)

    @property
    def min_honest_retention(self) -> float:
        return min(r.worst_retention for r in self.runs)

    @property
    def false_positive_rate(self) -> float:
        """Honest-app transitions per honest-app arm observed (target 0)."""
        positives = sum(r.false_positives for r in self.runs)
        # Control + defended arm each watch every honest app.
        observed = sum(2 * len(r.honest_retention) for r in self.runs)
        return positives / max(observed, 1)

    def latency_by_kind(self) -> dict[str, int]:
        """Worst quarantine latency seen per attack kind, in ticks."""
        worst: dict[str, int] = {}
        for run in self.runs:
            kind = run.scenario.kind
            worst[kind] = max(
                worst.get(kind, 0), run.worst_detection_latency_ticks
            )
        return worst

    def retention_by_kind(self) -> dict[str, float]:
        """Worst honest retention seen per attack kind."""
        worst: dict[str, float] = {}
        for run in self.runs:
            kind = run.scenario.kind
            worst[kind] = min(
                worst.get(kind, float("inf")), run.worst_retention
            )
        return worst

    def metrics(self) -> dict:
        """Soak-wide metrics: every defended arm's registry merged."""
        merged = MetricsRegistry()
        for run in self.runs:
            if run.defended.metrics is not None:
                merged = merged.merge(MetricsRegistry.from_json(run.defended.metrics))
        return merged.to_json()

    def report(self) -> dict:
        """JSON-ready soak report (the CI artifact's payload)."""
        return {
            "runs": len(self.runs),
            "kinds": sorted({r.scenario.kind for r in self.runs}),
            "max_detection_latency_ticks": self.max_detection_latency_ticks,
            "latency_by_kind": self.latency_by_kind(),
            "min_honest_retention": round(self.min_honest_retention, 6),
            "retention_by_kind": {
                kind: round(value, 6)
                for kind, value in sorted(self.retention_by_kind().items())
            },
            "false_positive_rate": self.false_positive_rate,
            "detection_bounds_ticks": dict(DETECTION_BOUND_TICKS),
            "retention_floors": dict(HONEST_RETENTION_FLOOR),
        }


def _run_arm(
    apps: list[WorkloadProfile],
    policy: Policy | str,
    p_cap_w: float,
    *,
    config: ServerConfig,
    dt_s: float,
    seed: int,
    adversaries: AdversarySchedule | None,
    defense: DefenseConfig | None,
    total_s: float,
) -> PowerMediator:
    """One arm of the comparison: the :func:`run_mix_experiment` build path,
    but returning the mediator so the caller can read the trust log."""
    if isinstance(policy, str):
        policy = make_policy(policy)
    battery = default_battery() if policy.uses_esd else None
    server = SimulatedServer(config, seed=seed)
    mediator = PowerMediator(
        server,
        policy,
        p_cap_w,
        battery=battery,
        use_oracle_estimates=True,
        dt_s=dt_s,
        seed=seed,
        adversaries=adversaries,
        defense=defense,
    )
    for profile in apps:
        # Steady-state runs must not see departures; give everyone ample work.
        mediator.add_application(
            profile.with_total_work(float("inf")), skip_overhead=True
        )
    mediator.run_for(total_s)
    return mediator


def _summarize(
    mediator: PowerMediator,
    apps: list[WorkloadProfile],
    *,
    warmup_s: float,
    mix_id: int,
    arm: str,
) -> MixExperimentResult:
    try:
        return summarize_mix_run(mediator, apps, warmup_s=warmup_s, mix_id=mix_id)
    except SimulationError as exc:
        raise ChaosError(f"cap invariant violated in the {arm} arm: {exc}") from None


def run_adversary_mix(
    kind: str,
    *,
    mix_id: int = 1,
    scenario: AttackScenario | None = None,
    schedule: AdversarySchedule | None = None,
    attacker_index: int = 0,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    dt_s: float = 0.1,
    seed: int = 0,
    attack_seed: int | None = None,
    defense: DefenseConfig | None = None,
    compare_undefended: bool = True,
    baseline: PowerMediator | None = None,
) -> AdversaryRunResult:
    """One honest-vs-adversarial comparison with every invariant enforced.

    Args:
        kind: Attack class; picks the :func:`default_attack_scenario` regime
            unless ``scenario`` overrides it.
        mix_id: Table II mix to co-locate.
        scenario: Regime override (policy, cap, timing, bounds).
        schedule: Attack schedule override; by default one attacker (the
            ``attacker_index``-th mix app) runs
            :func:`~repro.adversary.plan.default_adversary_schedule`.
        attacker_index: Which mix app turns adversarial (default schedule
            only).
        seed: Simulation seed, shared by every arm so the arms differ only
            in the attack and the defense.
        attack_seed: Seed for the attack's own RNG stream (probe phase
            jitter); defaults to ``seed``.
        defense: TrustScorer tunables for the defended arms (defaults on).
        compare_undefended: Also run the undefended adversarial arm and
            enforce the defended >= undefended - slack guarantee.
        baseline: A pre-run all-honest control for the same scenario and
            seed (the soak shares one per regime); computed here when
            ``None``. Its trust log is still checked.

    Raises:
        ChaosError: when any invariant fails (the message carries the
            violating numbers).
    """
    if scenario is None:
        scenario = default_attack_scenario(kind)
    elif scenario.kind != kind:
        raise ConfigurationError(
            f"scenario is for kind {scenario.kind!r}, not {kind!r}"
        )
    mix = get_mix(mix_id)
    apps = list(mix.profiles())
    if schedule is None:
        if not 0 <= attacker_index < len(apps):
            raise ConfigurationError(
                f"attacker index {attacker_index} out of range for "
                f"{len(apps)} mix apps"
            )
        schedule = default_adversary_schedule(
            apps[attacker_index].name,
            kind=kind,
            start_s=scenario.attack_start_s,
            seed=seed if attack_seed is None else attack_seed,
        )
    attackers = tuple(schedule.apps())
    names = {p.name for p in apps}
    missing = [a for a in attackers if a not in names]
    if missing:
        raise ConfigurationError(
            f"adversarial apps {missing} are not in mix {mix_id} ({sorted(names)})"
        )
    honest = [p.name for p in apps if p.name not in attackers]
    if not honest:
        raise ConfigurationError(
            "every mix app is adversarial; the harness measures honest-tenant "
            "utility, so at least one tenant must stay honest"
        )
    defense_on = defense if defense is not None else DefenseConfig()
    defense_off = DefenseConfig(enabled=False)

    # --- arm 1: all-honest control (defense armed, nothing to catch) ------
    if baseline is None:
        baseline = _run_arm(
            apps,
            scenario.policy,
            scenario.p_cap_w,
            config=config,
            dt_s=dt_s,
            seed=seed,
            adversaries=None,
            defense=defense_on,
            total_s=scenario.total_s,
        )
    base_summary = _summarize(
        baseline, apps, warmup_s=scenario.warmup_s, mix_id=mix_id, arm="all-honest"
    )
    control_transitions = list(baseline.trust.transitions)
    if control_transitions:
        tr = control_transitions[0]
        raise ChaosError(
            f"false positive: all-honest control moved {tr.app!r} "
            f"{tr.from_state.value} -> {tr.to_state.value} at tick {tr.tick} "
            f"(score {tr.score:.3f}, strikes {tr.strikes}); "
            f"{len(control_transitions)} transition(s) total"
        )

    # --- arm 2: adversarial, defended -------------------------------------
    defended = _run_arm(
        apps,
        scenario.policy,
        scenario.p_cap_w,
        config=config,
        dt_s=dt_s,
        seed=seed,
        adversaries=schedule,
        defense=defense_on,
        total_s=scenario.total_s,
    )
    defended_summary = _summarize(
        defended, apps, warmup_s=scenario.warmup_s, mix_id=mix_id, arm="defended"
    )
    transitions = tuple(
        (tr.tick, tr.app, tr.from_state.value, tr.to_state.value)
        for tr in defended.trust.transitions
    )

    honest_moved = [tr for tr in defended.trust.transitions if tr.app not in attackers]
    if honest_moved:
        tr = honest_moved[0]
        raise ChaosError(
            f"false positive: honest app {tr.app!r} moved "
            f"{tr.from_state.value} -> {tr.to_state.value} at tick {tr.tick} "
            f"during the {kind} attack (score {tr.score:.3f}, "
            f"strikes {tr.strikes})"
        )

    latencies: dict[str, int] = {}
    for attacker in attackers:
        spec = schedule.spec_for(attacker)
        start_tick = int(round(spec.start_s / dt_s))
        latency = defended.trust.detection_latency(attacker, start_tick)
        if latency is None:
            raise ChaosError(
                f"undetected: {kind} attacker {attacker!r} was never "
                f"quarantined in {defended.tick_count} ticks "
                f"(final state {defended.trust.state_of(attacker).value}, "
                f"score {defended.trust.score_of(attacker):.3f})"
            )
        if latency > scenario.detection_bound_ticks:
            raise ChaosError(
                f"slow detection: {kind} attacker {attacker!r} quarantined "
                f"{latency} ticks after the attack opened "
                f"(bound {scenario.detection_bound_ticks})"
            )
        latencies[attacker] = latency

    retention: dict[str, float] = {}
    for app in honest:
        base_tp = base_summary.normalized_throughput[app]
        kept = defended_summary.normalized_throughput[app] / max(base_tp, 1e-9)
        retention[app] = kept
        if kept < scenario.retention_floor:
            raise ChaosError(
                f"honest utility collapsed: {app!r} retained {kept:.4f} of "
                f"its all-honest baseline "
                f"({defended_summary.normalized_throughput[app]:.4f} vs "
                f"{base_tp:.4f}) under the defended {kind} attack "
                f"(floor {scenario.retention_floor})"
            )

    # --- arm 3: adversarial, undefended (the defense must pay its way) ----
    undefended_summary: MixExperimentResult | None = None
    if compare_undefended:
        undefended = _run_arm(
            apps,
            scenario.policy,
            scenario.p_cap_w,
            config=config,
            dt_s=dt_s,
            seed=seed,
            adversaries=schedule,
            defense=defense_off,
            total_s=scenario.total_s,
        )
        undefended_summary = _summarize(
            undefended, apps, warmup_s=scenario.warmup_s, mix_id=mix_id,
            arm="undefended",
        )
        for app in honest:
            with_defense = defended_summary.normalized_throughput[app]
            without = undefended_summary.normalized_throughput[app]
            if with_defense < without - UNDEFENDED_SLACK:
                raise ChaosError(
                    f"defense does net harm: honest app {app!r} got "
                    f"{with_defense:.4f} defended vs {without:.4f} undefended "
                    f"under the {kind} attack (slack {UNDEFENDED_SLACK})"
                )

    return AdversaryRunResult(
        scenario=scenario,
        mix_id=mix_id,
        attackers=attackers,
        detection_latency_ticks=latencies,
        honest_retention=retention,
        false_positives=0,
        baseline=base_summary,
        defended=defended_summary,
        undefended=undefended_summary,
        transitions=transitions,
    )


def run_adversary_soak(
    *,
    kinds: tuple[str, ...] = ADVERSARY_KINDS,
    seeds: list[int] = (0, 1, 2),
    mix_id: int = 1,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    dt_s: float = 0.1,
    compare_undefended: bool = True,
) -> AdversarySoakResult:
    """The byzantine soak: every attack kind across a seed matrix.

    All-honest controls are computed once per (regime, seed) and shared by
    the kinds running in that regime - the control has no attacker, so only
    the scenario's policy/cap/timing and the simulation seed shape it.

    Raises:
        ChaosError: on the first run violating any invariant.
    """
    baselines: dict[tuple[str, float, float, int], PowerMediator] = {}
    runs: list[AdversaryRunResult] = []
    for seed in seeds:
        for kind in kinds:
            scenario = default_attack_scenario(kind)
            key = (scenario.policy, scenario.p_cap_w, scenario.total_s, seed)
            if key not in baselines:
                baselines[key] = _run_arm(
                    list(get_mix(mix_id).profiles()),
                    scenario.policy,
                    scenario.p_cap_w,
                    config=config,
                    dt_s=dt_s,
                    seed=seed,
                    adversaries=None,
                    defense=DefenseConfig(),
                    total_s=scenario.total_s,
                )
            runs.append(
                run_adversary_mix(
                    kind,
                    mix_id=mix_id,
                    scenario=scenario,
                    config=config,
                    dt_s=dt_s,
                    seed=seed,
                    compare_undefended=compare_undefended,
                    baseline=baselines[key],
                )
            )
    return AdversarySoakResult(runs=tuple(runs))
