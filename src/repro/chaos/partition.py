"""Partition chaos: seeded network-schedule soaks for the cluster control plane.

The kill/restart harness (:mod:`repro.chaos.harness`) attacks one mediator's
process; this module attacks the fabric *between* the cluster controller and
its nodes. Each run composes three stressors, all derived from one chaos
seed:

* a lossy, reordering network (loss/duplication/jitter up to the configured
  severity);
* partition windows cutting random node subsets off the controller for a
  bounded fraction of the schedule;
* node kills drawn by the same :func:`~repro.chaos.harness.kill_schedule`
  arithmetic the crash-tolerance soak uses, converted into
  :class:`~repro.cluster.cluster.NodeOutage` windows.

The control plane replays the schedule and the soak enforces the defining
invariant - **the sum of effective node caps never exceeds the cluster
budget at any step** - plus convergence hygiene after a clean drain phase
(no zombie caps: every extra a node still enforces is covered by a grant the
controller accounts for). Violations raise
:class:`~repro.errors.ChaosError` with the offending seed, so a failing
schedule is reproducible from its number alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.harness import kill_schedule
from repro.cluster.cluster import NodeOutage, validate_outages
from repro.cluster.controlplane import (
    ControlPlaneConfig,
    ControlPlaneOutcome,
    run_control_plane,
)
from repro.errors import ChaosError, ConfigurationError, SimulationError
from repro.netsim import NetConfig, PartitionWindow
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACE_BUS, TraceBus


def partition_schedule(
    n_steps: int,
    n_nodes: int,
    *,
    windows: int,
    max_fraction: float,
    seed: int,
) -> tuple[PartitionWindow, ...]:
    """Draw up to ``windows`` partition cuts covering at most
    ``max_fraction`` of the schedule (per window, and therefore per node).

    Each window cuts a random non-empty subset of at most half the fleet -
    a majority of nodes always stays connected, matching the hub-and-spoke
    topology's realistic failure unit (a rack uplink, not the whole fabric).
    """
    if not 0.0 <= max_fraction <= 1.0:
        raise ConfigurationError("max_fraction must be in [0, 1]")
    if windows <= 0 or n_steps < 4 or max_fraction == 0.0:
        return ()
    rng = np.random.default_rng(seed)
    longest = max(1, int(max_fraction * n_steps))
    cuts = []
    for _ in range(windows):
        length = int(rng.integers(1, longest + 1))
        start = int(rng.integers(0, max(1, n_steps - length)))
        width = int(rng.integers(1, max(2, n_nodes // 2 + 1)))
        nodes = tuple(
            int(n) for n in rng.choice(n_nodes, size=min(width, n_nodes), replace=False)
        )
        cuts.append(
            PartitionWindow(start_step=start, end_step=start + length, nodes=nodes)
        )
    return tuple(cuts)


def kill_outages(
    n_steps: int,
    n_nodes: int,
    *,
    kills: int,
    max_down_steps: int,
    seed: int,
) -> tuple[NodeOutage, ...]:
    """Convert a :func:`kill_schedule` draw into node-outage windows.

    Each kill tick takes one random node down for a random (bounded)
    duration. Same-node overlaps are skipped rather than merged, so the
    result always satisfies :func:`~repro.cluster.cluster.validate_outages`.
    """
    ticks = kill_schedule(n_steps, kills, seed)
    if not ticks:
        return ()
    rng = np.random.default_rng(seed + 1)  # node/duration draws, kill ticks above
    busy_until: dict[int, int] = {}
    outages = []
    for tick in ticks:
        node = int(rng.integers(0, n_nodes))
        duration = int(rng.integers(1, max_down_steps + 1))
        if tick < busy_until.get(node, 0):
            continue
        end = min(tick + duration, n_steps)
        if end <= tick:
            continue
        outages.append(NodeOutage(server=node, start_step=tick, end_step=end))
        busy_until[node] = end
    return validate_outages(
        tuple(outages), n_steps=n_steps, n_servers=n_nodes
    )


@dataclass(frozen=True)
class PartitionChaosResult:
    """One seeded partition-chaos run (invariants already enforced).

    Attributes:
        seed: The chaos seed every stressor was derived from.
        outcome: The control-plane replay (caps, epochs, network stats).
        loss: Message-loss probability the run suffered.
        partition_steps: Total node-steps spent cut off from the controller.
        killed_node_steps: Total node-steps spent dead.
        headroom_w: ``budget - max_total_cap`` - how close the schedule came
            to the invariant boundary (never negative; a negative value
            would have raised).
    """

    seed: int
    outcome: ControlPlaneOutcome
    loss: float
    partition_steps: int
    killed_node_steps: int

    @property
    def headroom_w(self) -> float:
        return self.outcome.budget_w - self.outcome.max_total_cap_w


@dataclass(frozen=True)
class PartitionSoakResult:
    """Aggregate of a partition-chaos soak (every run already passed)."""

    runs: tuple[PartitionChaosResult, ...]

    @property
    def min_headroom_w(self) -> float:
        return min((r.headroom_w for r in self.runs), default=0.0)

    @property
    def total_partition_steps(self) -> int:
        return sum(r.partition_steps for r in self.runs)

    @property
    def total_killed_node_steps(self) -> int:
        return sum(r.killed_node_steps for r in self.runs)


def run_partition_chaos(
    *,
    seed: int,
    n_nodes: int = 10,
    n_steps: int = 120,
    budget_w: float = 800.0,
    loss: float = 0.3,
    partition_fraction: float = 0.25,
    partition_windows: int = 2,
    kills: int = 2,
    config: ControlPlaneConfig | None = None,
    quantum_w: float = 2.0,
    drain_steps: int = 40,
    trace_bus: TraceBus = NULL_TRACE_BUS,
    metrics: MetricsRegistry | None = None,
) -> PartitionChaosResult:
    """One composed network-chaos run against the cap-distribution protocol.

    The load schedule, partition windows, kill outages, and network draws
    all derive from ``seed``; the run is exactly reproducible from it. The
    network is lossy for the scheduled portion and clean during the drain
    (``lossy_until_step``), so convergence checks are deterministic rather
    than probabilistic.

    Raises:
        ChaosError: if the aggregate-cap invariant is violated at any step,
            or the drained system still holds zombie caps.
    """
    if not 0.0 <= loss < 1.0:
        raise ConfigurationError(f"loss must be in [0, 1), got {loss}")
    rng = np.random.default_rng(seed)
    # A coarse diurnal-ish load walk: ramps up, plateaus, ramps down, with
    # seeded wobble - enough load churn to keep grants moving.
    loads = []
    k = int(rng.integers(n_nodes // 2, n_nodes + 1))
    for _ in range(n_steps):
        k = int(np.clip(k + int(rng.integers(-1, 2)), 0, n_nodes))
        loads.append(k)
    partitions = partition_schedule(
        n_steps,
        n_nodes,
        windows=partition_windows,
        max_fraction=partition_fraction,
        seed=seed + 101,
    )
    outages = kill_outages(
        n_steps,
        n_nodes,
        kills=kills,
        max_down_steps=max(2, n_steps // 8),
        seed=seed + 202,
    )
    down_sets = [
        frozenset(o.server for o in outages if o.down_at(t)) for t in range(n_steps)
    ]
    net = NetConfig(
        latency_steps=0,
        jitter_steps=2,
        loss=loss,
        duplicate=min(1.0, loss / 2),
        partitions=partitions,
        lossy_until_step=n_steps,
        seed=seed,
    )
    try:
        outcome = run_control_plane(
            n_nodes=n_nodes,
            budget_w=budget_w,
            loaded_counts=loads,
            down_sets=down_sets,
            net=net,
            config=config,
            quantum_w=quantum_w,
            drain_steps=drain_steps,
            trace_bus=trace_bus,
            metrics=metrics,
        )
    except SimulationError as exc:
        raise ChaosError(f"partition chaos seed {seed}: {exc}") from None
    if not outcome.zombie_free:
        raise ChaosError(
            f"partition chaos seed {seed}: a node still enforces an extra "
            f"the controller no longer accounts for after the drain"
        )
    partition_steps = sum(
        len(w.nodes) * (w.end_step - w.start_step) for w in partitions
    )
    return PartitionChaosResult(
        seed=seed,
        outcome=outcome,
        loss=loss,
        partition_steps=partition_steps,
        killed_node_steps=sum(len(d) for d in down_sets),
    )


def run_partition_soak(
    *,
    seeds: list[int],
    n_nodes: int = 10,
    n_steps: int = 120,
    budget_w: float = 800.0,
    max_loss: float = 0.3,
    partition_fraction: float = 0.25,
    kills: int = 2,
    config: ControlPlaneConfig | None = None,
) -> PartitionSoakResult:
    """Repeat :func:`run_partition_chaos` across a seed matrix.

    Loss severity sweeps deterministically from mild to ``max_loss`` across
    the matrix, so one soak covers the whole severity range rather than
    hammering a single operating point.

    Raises:
        ChaosError: on the first seed violating any invariant.
    """
    if not seeds:
        raise ConfigurationError("soak needs at least one seed")
    runs = []
    for index, seed in enumerate(seeds):
        loss = max_loss * (index + 1) / len(seeds)
        runs.append(
            run_partition_chaos(
                seed=seed,
                n_nodes=n_nodes,
                n_steps=n_steps,
                budget_w=budget_w,
                loss=loss,
                partition_fraction=partition_fraction,
                kills=kills,
                config=config,
            )
        )
    return PartitionSoakResult(runs=tuple(runs))
