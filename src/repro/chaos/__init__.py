"""Chaos-soak harness: prove mediation survives its own death.

Kills the mediator at seeded random ticks, lets the
:class:`~repro.persistence.supervisor.Supervisor` warm-restart it from
checkpoint + journal, and asserts the recovery invariants - no sustained cap
breach, conserved battery ledgers, final utility within tolerance of an
uninterrupted baseline, and (when no safe hold is configured) a
bit-identical timeline. Composes with :class:`~repro.faults.plan.FaultPlan`
so substrate faults and mediator crashes can overlap.

The byzantine arm (:mod:`repro.chaos.adversary`) swaps crash faults for
strategic tenants: seeded attack schedules against the mediator's trust
defenses, with honest-utility, detection-latency, and false-positive bounds.
"""

from repro.chaos.adversary import (
    DETECTION_BOUND_TICKS,
    HONEST_RETENTION_FLOOR,
    UNDEFENDED_SLACK,
    AdversaryRunResult,
    AdversarySoakResult,
    AttackScenario,
    default_attack_scenario,
    run_adversary_mix,
    run_adversary_soak,
)
from repro.chaos.harness import (
    ChaosRunResult,
    ChaosSoakResult,
    kill_schedule,
    mix_recipe,
    run_chaos_mix,
    run_chaos_soak,
    run_script,
)
from repro.chaos.service import (
    ChurnSchedule,
    ServiceSoakReport,
    run_service_soak,
    service_kill_hook,
    service_kill_ticks,
)
from repro.chaos.partition import (
    PartitionChaosResult,
    PartitionSoakResult,
    kill_outages,
    partition_schedule,
    run_partition_chaos,
    run_partition_soak,
)
from repro.chaos.hierarchy import (
    HierarchyChaosResult,
    HierarchySoakResult,
    run_hierarchy_chaos,
    run_hierarchy_soak,
    subtree_outage_schedule,
)

__all__ = [
    "AdversaryRunResult",
    "AdversarySoakResult",
    "AttackScenario",
    "ChaosRunResult",
    "ChaosSoakResult",
    "DETECTION_BOUND_TICKS",
    "HONEST_RETENTION_FLOOR",
    "UNDEFENDED_SLACK",
    "ChurnSchedule",
    "HierarchyChaosResult",
    "HierarchySoakResult",
    "ServiceSoakReport",
    "PartitionChaosResult",
    "PartitionSoakResult",
    "default_attack_scenario",
    "kill_outages",
    "kill_schedule",
    "mix_recipe",
    "partition_schedule",
    "run_hierarchy_chaos",
    "run_hierarchy_soak",
    "subtree_outage_schedule",
    "run_adversary_mix",
    "run_adversary_soak",
    "run_chaos_mix",
    "run_chaos_soak",
    "run_partition_chaos",
    "run_partition_soak",
    "run_script",
    "run_service_soak",
    "service_kill_hook",
    "service_kill_ticks",
]
