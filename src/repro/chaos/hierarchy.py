"""Hierarchy chaos: failure-domain soaks for the budget tree.

The partition soak (:mod:`repro.chaos.partition`) attacks one flat fabric;
this module attacks a whole mediation *tree* - datacenter, PDU, and rack
levels at once. Each run composes five seeded stressors:

* lossy, reordering fabrics at every level (loss/duplication/jitter);
* partition windows on the root fabric cutting PDU uplinks;
* leaf kills drawn by the shared :func:`~repro.chaos.harness.kill_schedule`
  arithmetic;
* whole failure-domain outages (:class:`~repro.hierarchy.SubtreeOutage`)
  taking a PDU or rack subtree dark, controller and all;
* interior-controller crashes warm-restarted from deliberately stale
  checkpoints (the PR 2 codec convention), exercising the safe-hold path.

The tree replays the schedule with its per-node delegation invariant
checked every tick (the simulator raises on breach), and the soak adds the
hierarchy-specific promises on top:

* **containment** - a dark failure domain must not degrade its sibling
  subtrees: each sibling's time-averaged aggregate cap during the outage
  window must stay within tolerance of a twin run that suffered everything
  *except* the domain outages and crashes (siblings may only gain, minus
  seeded network wobble: divergent loss draws on the shared root fabric can
  briefly park a sibling at its safe tier in one run and not the other, so
  the tolerance is sized above that noise floor);
* **floor** - servers inside the dark domain keep their unconditional
  safe caps: degraded, never dark;
* **hygiene** - after a clean drain, no zombie leases anywhere in the tree.

Violations raise :class:`~repro.errors.ChaosError` naming the seed, so any
failing schedule reproduces from its number alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.harness import kill_schedule
from repro.chaos.partition import kill_outages, partition_schedule
from repro.cluster.controlplane import ControlPlaneConfig
from repro.errors import ChaosError, ConfigurationError, SimulationError
from repro.hierarchy import (
    BudgetTreeSimulator,
    SubtreeOutage,
    TreeSpec,
    format_path,
    validate_subtree_outages,
)
from repro.hierarchy.tree import Path
from repro.netsim import NetConfig
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACE_BUS, TraceBus

__all__ = [
    "HierarchyChaosResult",
    "HierarchySoakResult",
    "run_hierarchy_chaos",
    "run_hierarchy_soak",
    "subtree_outage_schedule",
]

_EPS = 1e-6


def subtree_outage_schedule(
    n_steps: int,
    interior: list[Path],
    *,
    outages: int,
    max_down_steps: int,
    seed: int,
) -> tuple[SubtreeOutage, ...]:
    """Draw up to ``outages`` failure-domain windows over ``interior`` paths.

    Windows that would overlap an already-drawn window on the same node or
    on an ancestor/descendant are skipped rather than merged, so the result
    always satisfies :func:`~repro.hierarchy.validate_subtree_outages`.
    """
    if outages <= 0 or not interior or n_steps < 4:
        return ()
    rng = np.random.default_rng(seed)
    drawn: list[SubtreeOutage] = []
    for _ in range(outages):
        path = interior[int(rng.integers(0, len(interior)))]
        duration = int(rng.integers(2, max(3, max_down_steps + 1)))
        start = int(rng.integers(0, max(1, n_steps - duration)))
        end = min(n_steps, start + duration)
        nested = any(
            (o.path[: len(path)] == path or path[: len(o.path)] == o.path)
            and start < o.end_step
            and o.start_step < end
            for o in drawn
        )
        if nested or end <= start:
            continue
        drawn.append(SubtreeOutage(path=path, start_step=start, end_step=end))
    return tuple(sorted(drawn, key=lambda o: (o.start_step, o.path)))


@dataclass(frozen=True)
class HierarchyChaosResult:
    """One seeded hierarchy-chaos run (invariants already enforced).

    Attributes:
        seed: The chaos seed every stressor derived from.
        fanouts: Tree shape the run mediated.
        budget_w: Datacenter budget.
        n_leaves: Number of servers at the bottom.
        loss: Message-loss probability every fabric suffered.
        max_total_cap_w: Largest observed leaf-cap sum.
        fallbacks / heals: Subtrees that lost an upstream lease and
            re-acquired one.
        restarts: Interior controllers warm-restarted from stale
            checkpoints.
        domain_outages: Failure-domain windows the schedule inflicted.
        min_sibling_ratio: Worst sibling aggregate-cap ratio (chaos run
            over twin run) observed across all outage windows; 1.0 when
            no outage had siblings to measure.
    """

    seed: int
    fanouts: tuple[int, ...]
    budget_w: float
    n_leaves: int
    loss: float
    max_total_cap_w: float
    fallbacks: int
    heals: int
    restarts: int
    domain_outages: int
    min_sibling_ratio: float

    @property
    def headroom_w(self) -> float:
        return self.budget_w - self.max_total_cap_w


@dataclass(frozen=True)
class HierarchySoakResult:
    """Aggregate of a hierarchy-chaos soak (every run already passed)."""

    runs: tuple[HierarchyChaosResult, ...]

    @property
    def min_headroom_w(self) -> float:
        return min((r.headroom_w for r in self.runs), default=0.0)

    @property
    def min_sibling_ratio(self) -> float:
        return min((r.min_sibling_ratio for r in self.runs), default=1.0)

    @property
    def total_domain_outages(self) -> int:
        return sum(r.domain_outages for r in self.runs)

    @property
    def total_restarts(self) -> int:
        return sum(r.restarts for r in self.runs)

    def report(self) -> dict:
        """JSON-ready containment/breach report (the CI soak artifact)."""
        return {
            "runs": [
                {
                    "seed": r.seed,
                    "fanouts": list(r.fanouts),
                    "n_leaves": r.n_leaves,
                    "loss": r.loss,
                    "breaches": 0,  # a breach aborts the run with ChaosError
                    "headroom_w": r.headroom_w,
                    "min_sibling_ratio": r.min_sibling_ratio,
                    "domain_outages": r.domain_outages,
                    "restarts": r.restarts,
                    "fallbacks": r.fallbacks,
                    "heals": r.heals,
                }
                for r in self.runs
            ],
            "min_headroom_w": self.min_headroom_w,
            "min_sibling_ratio": self.min_sibling_ratio,
            "total_domain_outages": self.total_domain_outages,
            "total_restarts": self.total_restarts,
        }


def _replay(
    sim: BudgetTreeSimulator,
    loads: list[int],
    down_sets: list[frozenset[int]],
    outages: tuple[SubtreeOutage, ...],
    restart_events: dict[int, list[Path]],
    *,
    checkpoint_every: int,
    drain_steps: int,
) -> list[tuple[float, ...]]:
    """Step a tree through the schedule plus a clean drain.

    Checkpoints every interior node on a fixed cadence; each restart event
    restores the named controller from the *previous* checkpoint (never the
    current step's), so every restart replays genuinely stale state.
    """
    steps = len(loads)
    checkpoints: dict[Path, tuple[int, dict]] = {}
    caps: list[tuple[float, ...]] = []
    for step in range(steps + drain_steps):
        scheduled = step < steps
        if scheduled:
            for path in restart_events.get(step, ()):
                dark = any(
                    o.start_step <= step < o.end_step
                    and path[: len(o.path)] == o.path
                    for o in outages
                )
                if dark:
                    continue  # a dark domain has nothing running to restart
                held = checkpoints.get(path)
                if held is None:
                    continue
                taken_at, state = held
                sim.restore(
                    path, state, step, checkpoint_age_steps=step - taken_at
                )
            if step % checkpoint_every == 0:
                for path in sim.nodes:
                    checkpoints[path] = (step, sim.checkpoint(path))
        loaded = frozenset(range(loads[step] if scheduled else loads[-1]))
        row = sim.step(
            step,
            loaded,
            leaf_down=down_sets[step] if scheduled else frozenset(),
            outages=outages if scheduled else (),
        )
        if scheduled:
            caps.append(row)
    return caps


def _window_mean(
    caps: list[tuple[float, ...]], leaves: range, start: int, end: int
) -> float:
    rows = caps[start:end]
    if not rows:
        return 0.0
    return sum(sum(row[i] for i in leaves) for row in rows) / len(rows)


def run_hierarchy_chaos(
    *,
    seed: int,
    fanouts: tuple[int, ...] = (3, 4),
    n_steps: int = 120,
    budget_w: float | None = None,
    loss: float = 0.3,
    partition_fraction: float = 0.25,
    partition_windows: int = 2,
    leaf_kills: int = 2,
    domain_outages: int = 2,
    controller_kills: int = 1,
    checkpoint_every: int = 10,
    config: ControlPlaneConfig | None = None,
    quantum_w: float = 2.0,
    drain_steps: int = 40,
    containment_tolerance: float = 0.25,
    trace_bus: TraceBus = NULL_TRACE_BUS,
    metrics: MetricsRegistry | None = None,
) -> HierarchyChaosResult:
    """One composed chaos run against a full mediation tree.

    Every stressor - load walk, root partitions, leaf kills, domain
    outages, controller crash ticks, and all network draws - derives from
    ``seed``. The run replays twice: once with everything, once without
    the domain outages and controller crashes (the containment twin).
    Fabrics are lossy for the scheduled portion and clean during the
    drain, so the hygiene checks are deterministic.

    Raises:
        ChaosError: if the delegation invariant breaks at any node on any
            tick, a dark domain's servers lose their safe-cap floor, a
            sibling subtree degrades beyond ``containment_tolerance``, or
            the drained tree still holds zombie leases.
    """
    if not 0.0 <= loss < 1.0:
        raise ConfigurationError(f"loss must be in [0, 1), got {loss}")
    spec = TreeSpec(
        fanouts=fanouts,
        budget_w=(
            100.0 * int(np.prod(fanouts)) if budget_w is None else budget_w
        ),
        quantum_w=quantum_w,
    )
    rng = np.random.default_rng(seed)
    loads = []
    k = int(rng.integers(spec.n_leaves // 2, spec.n_leaves + 1))
    for _ in range(n_steps):
        k = int(np.clip(k + int(rng.integers(-2, 3)), 0, spec.n_leaves))
        loads.append(k)
    partitions = partition_schedule(
        n_steps,
        fanouts[0],
        windows=partition_windows,
        max_fraction=partition_fraction,
        seed=seed + 101,
    )
    node_outages = kill_outages(
        n_steps,
        spec.n_leaves,
        kills=leaf_kills,
        max_down_steps=max(2, n_steps // 8),
        seed=seed + 202,
    )
    down_sets = [
        frozenset(o.server for o in node_outages if o.down_at(t))
        for t in range(n_steps)
    ]
    net = NetConfig(
        latency_steps=0,
        jitter_steps=2,
        loss=loss,
        duplicate=min(1.0, loss / 2),
        partitions=partitions,
        lossy_until_step=n_steps,
        seed=seed,
    )

    def build() -> BudgetTreeSimulator:
        return BudgetTreeSimulator(
            spec,
            net=net,
            config=config,
            trace_bus=trace_bus,
            metrics=metrics,
        )

    sim = build()
    interior = [p for p in sim.topology.interior_paths() if p]
    outages = validate_subtree_outages(
        subtree_outage_schedule(
            n_steps,
            interior,
            outages=domain_outages,
            max_down_steps=max(3, n_steps // 6),
            seed=seed + 303,
        ),
        sim.topology,
        n_steps=n_steps,
    )
    crash_rng = np.random.default_rng(seed + 404)
    restart_events: dict[int, list[Path]] = {}
    targets = list(sim.topology.interior_paths())
    for tick in kill_schedule(n_steps, controller_kills, seed + 404):
        path = targets[int(crash_rng.integers(0, len(targets)))]
        restart_events.setdefault(tick, []).append(path)

    try:
        caps = _replay(
            sim,
            loads,
            down_sets,
            outages,
            restart_events,
            checkpoint_every=checkpoint_every,
            drain_steps=drain_steps,
        )
    except SimulationError as exc:
        raise ChaosError(f"hierarchy chaos seed {seed}: {exc}") from None
    final_step = n_steps + drain_steps - 1
    if not sim.zombie_free(final_step):
        raise ChaosError(
            f"hierarchy chaos seed {seed}: a subtree still enforces a lease "
            f"its parent no longer accounts for after the drain"
        )
    leaf_safe = min(
        sim.topology.safe_caps_w[p] for p in sim.topology.leaf_paths()
    )
    for outage in outages:
        leaves = sim.topology.leaves_under(outage.path)
        for step in range(outage.start_step, outage.end_step):
            floor = min(caps[step][i] for i in leaves)
            if floor < leaf_safe - _EPS:
                raise ChaosError(
                    f"hierarchy chaos seed {seed}: server inside dark "
                    f"domain {format_path(outage.path)} fell to "
                    f"{floor:.3f} W below its {leaf_safe:.3f} W safe cap "
                    f"at step {step}"
                )

    # Containment twin: same everything, minus domain outages and crashes.
    min_ratio = 1.0
    if outages:
        twin = build()
        try:
            twin_caps = _replay(
                twin,
                loads,
                down_sets,
                (),
                {},
                checkpoint_every=checkpoint_every,
                drain_steps=0,
            )
        except SimulationError as exc:
            raise ChaosError(
                f"hierarchy chaos seed {seed}: containment twin failed: {exc}"
            ) from None
        for outage in outages:
            parent = outage.path[:-1]
            for sibling in sim.topology.children(parent):
                if sibling == outage.path or not sim.topology.is_interior(
                    sibling
                ):
                    continue
                leaves = sim.topology.leaves_under(sibling)
                chaos_mean = _window_mean(
                    caps, leaves, outage.start_step, outage.end_step
                )
                twin_mean = _window_mean(
                    twin_caps, leaves, outage.start_step, outage.end_step
                )
                if twin_mean <= _EPS:
                    continue
                ratio = chaos_mean / twin_mean
                min_ratio = min(min_ratio, ratio)
                if ratio < 1.0 - containment_tolerance:
                    raise ChaosError(
                        f"hierarchy chaos seed {seed}: containment breach - "
                        f"sibling {format_path(sibling)} averaged "
                        f"{chaos_mean:.1f} W during the "
                        f"{format_path(outage.path)} outage vs "
                        f"{twin_mean:.1f} W undisturbed "
                        f"({ratio:.3f} < {1.0 - containment_tolerance:.3f})"
                    )

    return HierarchyChaosResult(
        seed=seed,
        fanouts=fanouts,
        budget_w=spec.budget_w,
        n_leaves=spec.n_leaves,
        loss=loss,
        max_total_cap_w=sim.max_total_cap_w,
        fallbacks=sim.fallbacks,
        heals=sim.heals,
        restarts=sim.restarts,
        domain_outages=len(outages),
        min_sibling_ratio=min_ratio,
    )


def run_hierarchy_soak(
    *,
    seeds: list[int],
    fanouts: tuple[int, ...] = (3, 4),
    n_steps: int = 120,
    budget_w: float | None = None,
    max_loss: float = 0.3,
    domain_outages: int = 2,
    controller_kills: int = 1,
    config: ControlPlaneConfig | None = None,
) -> HierarchySoakResult:
    """Repeat :func:`run_hierarchy_chaos` across a seed matrix.

    Loss severity sweeps deterministically from mild to ``max_loss`` across
    the matrix, matching the flat partition soak's convention.

    Raises:
        ChaosError: on the first seed violating any invariant.
    """
    if not seeds:
        raise ConfigurationError("soak needs at least one seed")
    runs = []
    for index, seed in enumerate(seeds):
        runs.append(
            run_hierarchy_chaos(
                seed=seed,
                fanouts=fanouts,
                n_steps=n_steps,
                budget_w=budget_w,
                loss=max_loss * (index + 1) / len(seeds),
                domain_outages=domain_outages,
                controller_kills=controller_kills,
                config=config,
            )
        )
    return HierarchySoakResult(runs=tuple(runs))
