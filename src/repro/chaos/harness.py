"""Kill/restart chaos runs and the multi-seed soak built on them.

One chaos run executes a steady-state mix exactly like
:func:`~repro.core.simulation.run_mix_experiment`, but under a
:class:`~repro.persistence.supervisor.Supervisor` whose tick hook raises
:class:`~repro.persistence.supervisor.MediatorKilled` at the scheduled
ticks. The run and its uninterrupted baseline are scored by the same
:func:`~repro.core.simulation.summarize_mix_run` arithmetic, then four
invariants are enforced (each failure raises
:class:`~repro.errors.ChaosError` with the violating numbers):

1. **No sustained cap breach** - the PR 1 cap invariant holds over the
   post-warmup window of the recovered run.
2. **Budget conservation** - the battery's ledger balances: stored energy
   equals energy stored minus discharged minus faded, to within 1e-6 J.
3. **Utility** - final server throughput within ``utility_tolerance``
   (relative) of the baseline.
4. **Determinism** - with no safe hold configured, the recovered timeline is
   *bit-identical* to the uninterrupted one, tick for tick.
5. **Trace stitching** - when a trace bus is supplied (and no safe hold),
   the crash-restart run's stitched trace passes :func:`verify_trace` and
   its content hash equals the uninterrupted baseline's.

The soak repeats this across a seed matrix, sharing one baseline (chaos
seeds only pick kill ticks; they never touch the simulation's own RNG).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.mediator import PowerMediator
from repro.core.policies import Policy
from repro.core.resilience import ResilienceConfig
from repro.core.simulation import MixExperimentResult, summarize_mix_run
from repro.errors import ChaosError, ConfigurationError, SimulationError
from repro.faults.plan import FaultPlan
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import TraceBus, TraceError, verify_trace
from repro.persistence.checkpoint import RunRecipe
from repro.persistence.supervisor import (
    AdmitApp,
    Advance,
    Command,
    MediatorKilled,
    RecoveryStats,
    SetCap,
    Supervisor,
)
from repro.server.config import DEFAULT_SERVER_CONFIG, ServerConfig
from repro.workloads.profiles import WorkloadProfile


def kill_schedule(total_ticks: int, kills: int, seed: int) -> list[int]:
    """Pick ``kills`` distinct kill ticks in ``[1, total_ticks)``, sorted.

    Tick 0 is excluded: the supervisor writes its first checkpoint before
    any tick runs, so a kill before tick 1 would test nothing.
    """
    if total_ticks < 2 or kills <= 0:
        return []
    rng = np.random.default_rng(seed)
    count = min(kills, total_ticks - 1)
    picks = rng.choice(np.arange(1, total_ticks), size=count, replace=False)
    return sorted(int(t) for t in picks)


def run_script(
    recipe: RunRecipe, script: list[Command], *, trace_bus: TraceBus | None = None
) -> PowerMediator:
    """Execute a supervisor script directly, with no supervision.

    This is the uninterrupted baseline a chaos run is compared against;
    ``Advance`` maps onto :meth:`~repro.core.mediator.PowerMediator.run_for`
    with the same deadline arithmetic the supervisor uses, so the two paths
    tick identically. ``trace_bus`` is attached post-build, the same way the
    supervisor attaches its bus, so baseline and chaos traces cover the
    same event stream.
    """
    mediator = recipe.build()
    if trace_bus is not None:
        mediator.attach_trace_bus(trace_bus)
    for command in script:
        if isinstance(command, Advance):
            mediator.run_for(command.duration_s)
        elif isinstance(command, AdmitApp):
            mediator.add_application(
                command.profile,
                phased=command.phased,
                group_width=command.group_width,
                skip_overhead=command.skip_overhead,
            )
        elif isinstance(command, SetCap):
            mediator.set_power_cap(command.p_cap_w)
        else:
            raise ConfigurationError(f"not a script command: {command!r}")
    return mediator


@dataclass(frozen=True)
class ChaosRunResult:
    """Outcome of one kill/restart run (invariants already enforced).

    Attributes:
        kill_ticks: The ticks the mediator was killed at.
        result: Mix summary of the recovered run.
        baseline: Mix summary of the uninterrupted run.
        recovery: The supervisor's recovery accounting.
        utility_gap: ``|result - baseline|`` server throughput, relative to
            the baseline.
        timeline_identical: Whether the recovered timeline matched the
            baseline bit for bit; ``None`` when a safe hold made identity
            not applicable.
        trace_hash: Content hash of the stitched chaos trace (``None`` when
            the run was not traced).
        baseline_trace_hash: Content hash of the uninterrupted baseline's
            trace (``None`` when the baseline was not traced).
    """

    kill_ticks: tuple[int, ...]
    result: MixExperimentResult
    baseline: MixExperimentResult
    recovery: RecoveryStats
    utility_gap: float
    timeline_identical: bool | None
    trace_hash: str | None = None
    baseline_trace_hash: str | None = None


@dataclass(frozen=True)
class ChaosSoakResult:
    """Aggregate of a whole kill/restart soak (every run already passed)."""

    runs: tuple[ChaosRunResult, ...]

    @property
    def total_restarts(self) -> int:
        return sum(r.recovery.restarts for r in self.runs)

    @property
    def total_downtime_ticks(self) -> int:
        return sum(r.recovery.downtime_ticks for r in self.runs)

    @property
    def max_utility_gap(self) -> float:
        return max((r.utility_gap for r in self.runs), default=0.0)

    def metrics(self) -> dict:
        """Soak-wide metrics: every run's registry merged associatively."""
        merged = MetricsRegistry()
        for run in self.runs:
            if run.result.metrics is not None:
                merged = merged.merge(MetricsRegistry.from_json(run.result.metrics))
        return merged.to_json()


def mix_recipe(
    apps: list[WorkloadProfile],
    policy: Policy | str,
    p_cap_w: float,
    *,
    config: ServerConfig,
    duration_s: float,
    warmup_s: float,
    use_oracle_estimates: bool,
    dt_s: float,
    seed: int,
    faults: FaultPlan | None,
    resilience: ResilienceConfig | None,
    engine: str = "scalar",
) -> tuple[RunRecipe, list[Command]]:
    """The recipe + script equivalent of :func:`run_mix_experiment`."""
    if not apps:
        raise ConfigurationError("need at least one application")
    recipe = RunRecipe(
        policy=policy if isinstance(policy, str) else policy.name,
        p_cap_w=p_cap_w,
        config=config,
        use_oracle_estimates=use_oracle_estimates,
        dt_s=dt_s,
        seed=seed,
        faults=faults,
        resilience=resilience,
        engine=engine,
    )
    script: list[Command] = [
        # Steady-state runs must not see departures; give everyone ample work.
        AdmitApp(profile.with_total_work(float("inf")), skip_overhead=True)
        for profile in apps
    ]
    script.append(Advance(warmup_s + duration_s))
    return recipe, script


def _check_battery_ledger(mediator: PowerMediator, kill_ticks: list[int]) -> None:
    battery = mediator.battery
    if battery is None:
        return
    stats = battery.stats
    expected = stats.total_stored_j - stats.total_discharged_j - battery.total_faded_j
    drift = abs(battery.stored_j - expected)
    if drift > 1e-6:
        raise ChaosError(
            f"battery ledger not conserved after kills at {kill_ticks}: "
            f"stored {battery.stored_j:.9f} J vs ledger {expected:.9f} J "
            f"(drift {drift:.3e} J)"
        )


def run_chaos_mix(
    apps: list[WorkloadProfile],
    policy: Policy | str,
    p_cap_w: float,
    *,
    workdir: str | Path,
    kill_ticks: list[int],
    mix_id: int = 0,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    duration_s: float = 10.0,
    warmup_s: float = 4.0,
    use_oracle_estimates: bool = False,
    dt_s: float = 0.1,
    seed: int = 0,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint_every_ticks: int = 50,
    fsync_every_ticks: int = 25,
    safe_hold_ticks: int = 0,
    tear_journal_bytes_on_crash: int = 0,
    utility_tolerance: float = 0.01,
    baseline: PowerMediator | None = None,
    trace_bus: TraceBus | None = None,
) -> ChaosRunResult:
    """One supervised mix run with scheduled mediator kills.

    Args:
        kill_ticks: Ticks at which the mediator dies (each fires once; after
            recovery the tick counter replays through the same values).
        baseline: A pre-run uninterrupted mediator for the same recipe and
            script (the soak shares one); computed here when ``None``.
        utility_tolerance: Relative server-throughput tolerance vs baseline.
        trace_bus: Optional bus for the chaos run. The supervisor stitches
            a continuous trace across restarts; with no safe hold it must
            verify clean and hash identically to the baseline's trace
            (invariant 5). A ``None``-baseline computed here is traced on
            its own bus when this is set.

    Raises:
        ChaosError: when any recovery invariant fails.
    """
    recipe, script = mix_recipe(
        apps,
        policy,
        p_cap_w,
        config=config,
        duration_s=duration_s,
        warmup_s=warmup_s,
        use_oracle_estimates=use_oracle_estimates,
        dt_s=dt_s,
        seed=seed,
        faults=faults,
        resilience=resilience,
    )
    if baseline is None:
        baseline_bus = TraceBus() if trace_bus is not None else None
        baseline = run_script(recipe, script, trace_bus=baseline_bus)
    base_summary = summarize_mix_run(baseline, apps, warmup_s=warmup_s, mix_id=mix_id)

    kills = set(kill_ticks)
    fired: set[int] = set()  # ticks replay after recovery; kill each once

    def _kill_hook(mediator: PowerMediator, tick: int) -> None:
        if tick in kills and tick not in fired:
            fired.add(tick)
            raise MediatorKilled(f"chaos kill at tick {tick}")

    supervisor = Supervisor(
        recipe,
        script,
        workdir,
        checkpoint_every_ticks=checkpoint_every_ticks,
        fsync_every_ticks=fsync_every_ticks,
        tick_hook=_kill_hook,
        safe_hold_ticks=safe_hold_ticks,
        tear_journal_bytes_on_crash=tear_journal_bytes_on_crash,
        trace_bus=trace_bus,
    )
    mediator = supervisor.run()

    try:
        summary = summarize_mix_run(mediator, apps, warmup_s=warmup_s, mix_id=mix_id)
    except SimulationError as exc:
        raise ChaosError(
            f"sustained cap breach after kills at {sorted(kills)}: {exc}"
        ) from None
    _check_battery_ledger(mediator, sorted(kills))

    base_util = base_summary.server_throughput
    gap = abs(summary.server_throughput - base_util) / max(base_util, 1e-12)
    if gap > utility_tolerance:
        raise ChaosError(
            f"utility {summary.server_throughput:.6f} deviates "
            f"{gap:.2%} from baseline {base_util:.6f} "
            f"(tolerance {utility_tolerance:.2%}) after kills at {sorted(kills)}"
        )

    timeline_identical: bool | None = None
    if safe_hold_ticks == 0:
        timeline_identical = mediator.timeline == baseline.timeline
        if not timeline_identical:
            raise ChaosError(
                f"recovered timeline diverged from the uninterrupted run "
                f"after kills at {sorted(kills)} "
                f"({len(mediator.timeline)} vs {len(baseline.timeline)} ticks)"
            )

    stitched_hash: str | None = None
    baseline_hash: str | None = None
    if trace_bus is not None:
        try:
            verify_trace(trace_bus.events)
        except TraceError as exc:
            raise ChaosError(
                f"stitched trace failed verification after kills at "
                f"{sorted(kills)}: {exc}"
            ) from None
        stitched_hash = trace_bus.content_hash()
        if baseline.trace_bus.active:
            baseline_hash = baseline.trace_bus.content_hash()
            if safe_hold_ticks == 0 and stitched_hash != baseline_hash:
                raise ChaosError(
                    f"stitched trace hash {stitched_hash[:16]}... diverged from "
                    f"baseline {baseline_hash[:16]}... after kills at {sorted(kills)}"
                )

    return ChaosRunResult(
        kill_ticks=tuple(sorted(kills)),
        result=summary,
        baseline=base_summary,
        recovery=supervisor.stats,
        utility_gap=gap,
        timeline_identical=timeline_identical,
        trace_hash=stitched_hash,
        baseline_trace_hash=baseline_hash,
    )


def run_chaos_soak(
    apps: list[WorkloadProfile],
    policy: Policy | str,
    p_cap_w: float,
    *,
    workdir: str | Path,
    seeds: list[int],
    kills_per_run: int = 3,
    mix_id: int = 0,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    duration_s: float = 10.0,
    warmup_s: float = 4.0,
    use_oracle_estimates: bool = False,
    dt_s: float = 0.1,
    seed: int = 0,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint_every_ticks: int = 50,
    fsync_every_ticks: int = 25,
    safe_hold_ticks: int = 0,
    tear_journal_bytes_on_crash: int = 0,
    utility_tolerance: float = 0.01,
    trace: bool = False,
) -> ChaosSoakResult:
    """Repeat :func:`run_chaos_mix` across a matrix of chaos seeds.

    Each seed draws its own :func:`kill_schedule`; the uninterrupted
    baseline is computed once and shared, since chaos seeds never feed the
    simulation's RNG streams. With ``trace=True``, the baseline and every
    chaos run get trace buses, arming the stitched-trace invariant on each
    run.

    Raises:
        ChaosError: on the first run violating any invariant.
    """
    recipe, script = mix_recipe(
        apps,
        policy,
        p_cap_w,
        config=config,
        duration_s=duration_s,
        warmup_s=warmup_s,
        use_oracle_estimates=use_oracle_estimates,
        dt_s=dt_s,
        seed=seed,
        faults=faults,
        resilience=resilience,
    )
    baseline = run_script(recipe, script, trace_bus=TraceBus() if trace else None)
    total_ticks = baseline.tick_count
    workdir = Path(workdir)
    runs: list[ChaosRunResult] = []
    for chaos_seed in seeds:
        ticks = kill_schedule(total_ticks, kills_per_run, chaos_seed)
        runs.append(
            run_chaos_mix(
                apps,
                policy,
                p_cap_w,
                workdir=workdir / f"soak-{chaos_seed:04d}",
                kill_ticks=ticks,
                mix_id=mix_id,
                config=config,
                duration_s=duration_s,
                warmup_s=warmup_s,
                use_oracle_estimates=use_oracle_estimates,
                dt_s=dt_s,
                seed=seed,
                faults=faults,
                resilience=resilience,
                checkpoint_every_ticks=checkpoint_every_ticks,
                fsync_every_ticks=fsync_every_ticks,
                safe_hold_ticks=safe_hold_ticks,
                tear_journal_bytes_on_crash=tear_journal_bytes_on_crash,
                utility_tolerance=utility_tolerance,
                baseline=baseline,
                trace_bus=TraceBus() if trace else None,
            )
        )
    return ChaosSoakResult(runs=tuple(runs))
