"""Units and small value helpers used throughout the framework.

All physical quantities in the package use SI base conventions:

* power in **watts** (float)
* energy in **joules** (float)
* frequency in **gigahertz** (float) - the paper's knob space is specified in
  GHz so we keep that unit to make configurations directly comparable
* time in **seconds** (float)

The helpers here exist to make intent explicit at call sites (``watt_hours(5)``
reads better than ``5 * 3600.0``) and to centralize the tolerance used when
comparing power values, which otherwise tends to be duplicated with slightly
different epsilons across modules.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Tolerance (in watts) used when checking cap adherence. Power values in the
#: simulator are sums of per-component float contributions; equality checks on
#: them must allow for accumulated rounding.
POWER_EPSILON_W = 1e-6

#: Tolerance (in joules) for energy-conservation checks.
ENERGY_EPSILON_J = 1e-6

#: Seconds per hour, used by watt-hour conversions.
SECONDS_PER_HOUR = 3600.0


def watt_hours(wh: float) -> float:
    """Convert watt-hours to joules.

    >>> watt_hours(1.0)
    3600.0
    """
    return wh * SECONDS_PER_HOUR


def joules_to_watt_hours(joules: float) -> float:
    """Convert joules to watt-hours.

    >>> joules_to_watt_hours(3600.0)
    1.0
    """
    return joules / SECONDS_PER_HOUR


def ghz(value: float) -> float:
    """Identity helper marking a literal as a frequency in GHz."""
    return float(value)


def watts(value: float) -> float:
    """Identity helper marking a literal as a power in watts."""
    return float(value)


def within_cap(draw_w: float, cap_w: float, tolerance_w: float = POWER_EPSILON_W) -> bool:
    """Return ``True`` when ``draw_w`` respects ``cap_w`` within tolerance.

    This is the single definition of "adheres to the power cap" used by the
    engine, the policies, and the test suite, so they can never disagree about
    borderline floating-point cases.
    """
    return draw_w <= cap_w + tolerance_w


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    Raises:
        ValueError: if ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"invalid clamp interval [{lo}, {hi}]")
    return max(lo, min(hi, value))


def nearly_equal(a: float, b: float, tolerance: float = POWER_EPSILON_W) -> bool:
    """Absolute-tolerance float comparison used for power/energy assertions."""
    return abs(a - b) <= tolerance


def frange(start: float, stop: float, step: float) -> list[float]:
    """Inclusive float range with stable rounding.

    Builds discrete knob spaces like the 9 DVFS steps from 1.2 to 2.0 GHz in
    0.1 GHz increments without float-accumulation drift:

    >>> frange(1.2, 2.0, 0.1)
    [1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0]
    """
    if step <= 0:
        raise ValueError("step must be positive")
    count = int(round((stop - start) / step)) + 1
    if count < 1:
        return []
    return [round(start + i * step, 10) for i in range(count)]


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values; 0.0 for an empty iterable.

    Used for aggregating normalized throughputs where the arithmetic mean
    would over-weight fast applications.

    Raises:
        ValueError: if any value is not strictly positive.
    """
    vals = list(values)
    if not vals:
        return 0.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {v}")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty iterable."""
    vals = list(values)
    if not vals:
        return 0.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
