"""The service event loop: open-loop ingest around a supervised mediator.

:class:`MediatorService` runs the mediator indefinitely under open-loop
traffic. Each sim-time tick executes a fixed pipeline:

1. **kill hook** - chaos injection point (mirrors the supervisor's
   ``tick_hook``; fires before any tick work so a crash never tears a tick);
2. **churn** - scheduled client disconnects/reconnects, with gap-checked
   delivery replay on every reconnect;
3. **offers** - the provisioner's cap schedule plus the population's due
   arrivals are offered to the ingest buffer, where backpressure disposes
   of them (accept / reject / shed-oldest / defer), every outcome counted
   and traced;
4. **overload posture** - occupancy hysteresis; while overloaded the
   regular drain shrinks so cap-safety commands strictly outrank arrivals;
5. **drain** - the cap-safety lane fully, then a bounded slice of the
   regular lane; each command is journaled write-ahead, applied to the
   mediator, and acknowledged to its client;
6. **mediate** - one mediator tick (allocation, actuation, accounting);
7. **publish** - completion deliveries and periodic telemetry broadcasts;
8. **durability** - the tick is journaled; on the checkpoint cadence a
   service checkpoint (mediator recipe + state, population cursor, ingest
   buffer, sessions, pending offers, metrics) lands atomically, its journal
   marker is fsynced, and retention compacts everything behind it.

**Crash model.** A :class:`ServiceKilled` raised by the kill hook destroys
the in-flight process state; the journal keeps only what was fsynced (a
configurable tail tear simulates lost buffered writes). Recovery restores
the latest durable checkpoint and then **re-executes full ticks** - not
journaled commands: the offer stream, churn, backpressure decisions, and
deliveries are all deterministic functions of the restored state, so
re-execution regenerates the identical stream the crash destroyed, while
journal appends stay suppressed for ticks the journal already holds.
The stitched trace therefore hashes identically to an uninterrupted run,
client delivery sequences continue gap-free, and service metrics counters
end exactly where the uninterrupted run's would.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.mediator import PowerMediator
from repro.core.policies import POLICY_NAMES
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    ServiceError,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.streaming import StreamingTraceBus
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.persistence.checkpoint import RunRecipe
from repro.persistence.segments import (
    SegmentedJournalWriter,
    read_segmented,
    repair_segmented_tail,
)
from repro.service.commands import (
    CancelJob,
    Command,
    SetCapCommand,
    SubmitJob,
    command_from_dict,
    command_to_dict,
    is_cap_safety,
)
from repro.service.ingest import ACCEPTED, DEFERRED, REJECTED, IngestBuffer
from repro.service.retention import RetentionConfig, RetentionManager
from repro.service.sessions import SessionRegistry
from repro.workloads.population import BurstWindow, OpenLoopPopulation

__all__ = ["MediatorService", "ServiceConfig", "ServiceKilled"]

#: Schema stamp of service checkpoint documents.
SERVICE_CHECKPOINT_SCHEMA = "repro-service-checkpoint"

#: Service checkpoint format version; bump on incompatible layout changes.
SERVICE_CHECKPOINT_VERSION = 1


class ServiceKilled(ReproError):
    """The service process died mid-stream (raised by chaos injection)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that defines one service run (the service's recipe).

    Attributes are grouped by pipeline stage; every field is validated at
    construction with a one-line :class:`~repro.errors.ConfigurationError`
    so the CLI's exit-2 contract holds.
    """

    # --- mediation
    policy: str = "app+res-aware"
    p_cap_w: float = 100.0
    use_oracle_estimates: bool = True
    dt_s: float = 0.1
    seed: int = 0
    group_width: int = 3
    # --- offered load (open loop)
    rate_per_s: float = 0.05
    clients: int = 6
    diurnal_amplitude: float = 0.3
    diurnal_period_s: float = 600.0
    bursts: tuple[BurstWindow, ...] = ()
    work_scale: float = 1.0
    # --- ingest and backpressure
    ingest_capacity: int = 32
    backpressure: str = "shed-oldest"
    drain_per_tick: int = 2
    overload_drain_per_tick: int = 1
    overload_enter_fraction: float = 0.8
    overload_exit_fraction: float = 0.5
    # --- provisioner cap schedule (in-band cap-safety commands)
    cap_levels: tuple[float, ...] = ()
    cap_change_every_s: float = 60.0
    # --- subscription stream
    telemetry_every_ticks: int = 10
    # --- durability and retention
    checkpoint_every_ticks: int = 200
    fsync_every_ticks: int = 25
    retention: RetentionConfig = field(default_factory=RetentionConfig)

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r} (choose from {', '.join(POLICY_NAMES)})"
            )
        if not (math.isfinite(self.p_cap_w) and self.p_cap_w > 0):
            raise ConfigurationError(f"cap must be finite and positive, got {self.p_cap_w!r}")
        if not (math.isfinite(self.dt_s) and self.dt_s > 0):
            raise ConfigurationError(f"dt_s must be finite and positive, got {self.dt_s!r}")
        if self.clients < 1:
            raise ConfigurationError(f"need at least one client, got {self.clients}")
        if self.drain_per_tick < 1:
            raise ConfigurationError(
                f"drain_per_tick must be >= 1, got {self.drain_per_tick}"
            )
        if self.overload_drain_per_tick < 0:
            raise ConfigurationError(
                f"overload_drain_per_tick must be >= 0, got {self.overload_drain_per_tick}"
            )
        for cap in self.cap_levels:
            if not (math.isfinite(cap) and cap > 0):
                raise ConfigurationError(
                    f"cap levels must be finite and positive, got {cap!r}"
                )
        if not (math.isfinite(self.cap_change_every_s) and self.cap_change_every_s > 0):
            raise ConfigurationError(
                f"cap_change_every_s must be finite and positive, "
                f"got {self.cap_change_every_s!r}"
            )
        if self.telemetry_every_ticks < 1:
            raise ConfigurationError(
                f"telemetry_every_ticks must be >= 1, got {self.telemetry_every_ticks}"
            )
        if self.checkpoint_every_ticks < 1:
            raise ConfigurationError(
                f"checkpoint_every_ticks must be >= 1, got {self.checkpoint_every_ticks}"
            )
        # Population, ingest, and retention parameters validate themselves
        # at construction time; build them eagerly so a bad config fails
        # here, at the CLI boundary, not ticks into a run.
        self.make_population()
        IngestBuffer(
            capacity=self.ingest_capacity,
            policy=self.backpressure,
            metrics=MetricsRegistry(),
            overload_enter_fraction=self.overload_enter_fraction,
            overload_exit_fraction=self.overload_exit_fraction,
        )

    @property
    def provisioner_client(self) -> int:
        """Pseudo-client id the cap schedule's commands are attributed to."""
        return self.clients

    def recipe(self) -> RunRecipe:
        """The mediator-side recipe this service wraps."""
        return RunRecipe(
            policy=self.policy,
            p_cap_w=self.p_cap_w,
            use_oracle_estimates=self.use_oracle_estimates,
            dt_s=self.dt_s,
            seed=self.seed,
        )

    def make_population(self) -> OpenLoopPopulation:
        return OpenLoopPopulation(
            base_rate_per_s=self.rate_per_s,
            clients=self.clients,
            seed=self.seed,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period_s=self.diurnal_period_s,
            bursts=self.bursts,
            work_scale=self.work_scale,
        )


class MediatorService:
    """The long-running, crash-recoverable service facade.

    Args:
        config: The run's :class:`ServiceConfig`.
        workdir: Durability root; the journal lands in ``workdir/journal``
            and service checkpoints in ``workdir/checkpoints``.
        churn: Optional deterministic churn schedule - any object with
            ``at(tick) -> list[("connect" | "disconnect", client)]``. Must
            be a pure function of the tick so crash re-execution
            regenerates identical churn.
        tick_hook: Optional callable invoked with the tick number before
            any tick work; raising :class:`ServiceKilled` simulates a
            crash at that boundary (the chaos harness's kill schedules).
        tear_journal_bytes_on_crash: On each crash, destroy up to this many
            bytes of the journal's un-fsynced tail.
        trace: Collect a streaming trace (needed for hash comparisons).
        trace_spill: Also spill evicted trace events to
            ``workdir/trace-spill.jsonl``.
    """

    def __init__(
        self,
        config: ServiceConfig,
        workdir: str | Path,
        *,
        churn=None,
        tick_hook: Callable[[int], None] | None = None,
        tear_journal_bytes_on_crash: int = 0,
        trace: bool = True,
        trace_spill: bool = False,
    ) -> None:
        self.config = config
        self._workdir = Path(workdir)
        self._journal_dir = self._workdir / "journal"
        self._checkpoint_dir = self._workdir / "checkpoints"
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._churn = churn
        self._tick_hook = tick_hook
        self._tear_bytes = tear_journal_bytes_on_crash
        if trace:
            self._bus: TraceBus = StreamingTraceBus(
                retain_events=config.retention.retain_trace_events,
                sink_path=(self._workdir / "trace-spill.jsonl") if trace_spill else None,
            )
        else:
            self._bus = NULL_TRACE_BUS
        self._recipe = config.recipe()
        self._cap_every_ticks = max(1, round(config.cap_change_every_s / config.dt_s))

        self.metrics = MetricsRegistry()
        self._mediator: PowerMediator = self._recipe.build()
        self._mediator.ensure_plan()  # an empty open-loop server still ticks
        self._mediator.attach_trace_bus(self._bus)
        self._population = config.make_population()
        self._ingest = self._make_ingest()
        self._sessions = self._make_sessions()
        self._retention = RetentionManager(config.retention, metrics=self.metrics)
        # Deterministic service state that travels in the checkpoint:
        self._tick = 0
        self._ingest_seq = 0  # commands drained (journal "index")
        self._cap_cursor = 0
        self._client_seqs = {c: 0 for c in range(config.clients + 1)}
        self._pending: list[Command] = []  # deferred ("blocked") offers
        self._outstanding: dict[str, int] = {}  # running app -> client
        # Execution-side state (does NOT travel; mirrors the supervisor):
        self._bus_marks: dict[str, int] = {}
        self._safe_seq = 0
        self._safe_mark: int | None = None
        self._replaying = False
        self._last_retention_tick = 0
        # Pin the zero counters the soak asserts on, so "never happened"
        # is a recorded 0, not an absent key.
        self.metrics.counter("service.ingest.shed")
        self.metrics.counter("service.ingest.safety_shed")
        self.metrics.counter("service.restarts")

        self._journal: SegmentedJournalWriter | None = SegmentedJournalWriter(
            self._journal_dir,
            records_per_segment=config.retention.records_per_segment,
            fsync_every_ticks=config.fsync_every_ticks,
        )
        self._journal.append_meta(dt_s=config.dt_s)
        self._checkpoint()  # tick 0: recovery always has an anchor

    # ------------------------------------------------------------- accessors

    @property
    def tick(self) -> int:
        """Completed ticks (equals the mediator's tick count)."""
        return self._tick

    @property
    def mediator(self) -> PowerMediator:
        return self._mediator

    @property
    def trace_bus(self) -> TraceBus:
        return self._bus

    @property
    def sessions(self) -> SessionRegistry:
        return self._sessions

    @property
    def ingest(self) -> IngestBuffer:
        return self._ingest

    @property
    def journal_dir(self) -> Path:
        return self._journal_dir

    @property
    def checkpoint_dir(self) -> Path:
        return self._checkpoint_dir

    def content_hash(self) -> str:
        return self._bus.content_hash()

    def _make_ingest(self) -> IngestBuffer:
        return IngestBuffer(
            capacity=self.config.ingest_capacity,
            policy=self.config.backpressure,
            metrics=self.metrics,
            overload_enter_fraction=self.config.overload_enter_fraction,
            overload_exit_fraction=self.config.overload_exit_fraction,
        )

    def _make_sessions(self) -> SessionRegistry:
        # One extra session for the provisioner's cap acknowledgements.
        return SessionRegistry(
            clients=self.config.clients + 1,
            window=self.config.retention.session_window,
            metrics=self.metrics,
        )

    # --------------------------------------------------------------- running

    def run_for_ticks(self, ticks: int) -> None:
        """Advance the service ``ticks`` sim-time ticks, recovering from any
        :class:`ServiceKilled` the kill hook raises along the way."""
        if ticks < 1:
            raise ConfigurationError(f"ticks must be >= 1, got {ticks}")
        target = self._tick + ticks
        while self._tick < target:
            try:
                self._one_tick()
            except ServiceKilled:
                self._handle_crash()

    def close(self) -> None:
        """Flush and close the journal (and trace spill) cleanly."""
        if self._journal is not None:
            self._journal.close()
        if isinstance(self._bus, StreamingTraceBus):
            self._bus.close_sink()

    # ---------------------------------------------------------- the pipeline

    def _one_tick(self) -> None:
        tick = self._tick
        if self._tick_hook is not None:
            self._tick_hook(tick)  # chaos: may raise ServiceKilled
        now = self._mediator.server.now_s
        self._bus.begin_tick(tick, now)

        self._apply_churn(tick)
        offered = self._collect_offers(tick, now)
        self._offer_all(tick, offered)
        self._refresh_overload()
        self._drain(tick)
        self._mediator.step()
        self._publish(tick)

        self._tick += 1
        if not self._replaying and self._journal is not None:
            self._journal.append_tick(tick)
            if self._tick % self.config.checkpoint_every_ticks == 0:
                self._checkpoint()
                self._retention.prune_checkpoints(self._checkpoint_dir)
                # Retention anchors to the checkpoint just written, on its
                # own (coarser) cadence.
                due = self._tick - self._last_retention_tick
                if due >= self.config.retention.every_ticks:
                    self._last_retention_tick = self._tick
                    self._retention.run(
                        bus=self._bus if isinstance(self._bus, StreamingTraceBus) else None,
                        journal_dir=self._journal_dir,
                        checkpoint_dir=self._checkpoint_dir,
                        safe_seq=self._safe_seq,
                        safe_mark=self._safe_mark,
                    )
        self.metrics.gauge("service.ticks").set(float(self._tick))

    def _apply_churn(self, tick: int) -> None:
        if self._churn is None:
            return
        for action, client in self._churn.at(tick):
            session = self._sessions.session(client)
            if action == "disconnect":
                if session.connected:
                    self._sessions.disconnect(client)
                    self._bus.emit("client-disconnect", {"client": client})
            elif action == "connect":
                if not session.connected:
                    missed = self._sessions.reconnect(client)
                    self._bus.emit("client-connect", {"client": client})
                    if missed:
                        self._bus.emit(
                            "client-replay",
                            {
                                "client": client,
                                "from_seq": missed[0].seq,
                                "count": len(missed),
                            },
                        )
            else:
                raise ServiceError(f"unknown churn action {action!r}")

    def _collect_offers(self, tick: int, now: float) -> list[Command]:
        offered: list[Command] = []
        if self.config.cap_levels and tick > 0 and tick % self._cap_every_ticks == 0:
            cap = self.config.cap_levels[self._cap_cursor % len(self.config.cap_levels)]
            self._cap_cursor += 1
            provisioner = self.config.provisioner_client
            offered.append(
                SetCapCommand(
                    client=provisioner,
                    client_seq=self._next_client_seq(provisioner),
                    p_cap_w=cap,
                )
            )
        for offer in self._population.pull_due(now):
            offered.append(
                SubmitJob(
                    client=offer.client,
                    client_seq=self._next_client_seq(offer.client),
                    profile=offer.profile,
                )
            )
        return offered

    def _next_client_seq(self, client: int) -> int:
        seq = self._client_seqs[client]
        self._client_seqs[client] = seq + 1
        return seq

    def _offer_all(self, tick: int, offered: list[Command]) -> None:
        # Deferred ("blocked") offers from earlier ticks re-offer first:
        # their clients have been waiting longest.
        carryover, self._pending = self._pending, []
        for command in [*carryover, *offered]:
            disposition, victim = self._ingest.offer(command)
            if disposition == DEFERRED:
                self._pending.append(command)
            elif disposition == REJECTED:
                self._bus.emit(
                    "ingest-reject",
                    {"client": command.client, "client_seq": command.client_seq},
                )
                self._sessions.deliver(
                    command.client,
                    tick,
                    "nack",
                    {"client_seq": command.client_seq, "reason": "ingest-full"},
                )
            else:
                assert disposition == ACCEPTED
            if victim is not None:
                if is_cap_safety(victim):  # structurally impossible; prove it
                    self.metrics.counter("service.ingest.safety_shed").inc()
                    raise ServiceError(
                        "backpressure shed a cap-safety command; the safety "
                        "lane must never be shed"
                    )
                self._bus.emit(
                    "ingest-shed",
                    {"client": victim.client, "client_seq": victim.client_seq},
                )
                self._sessions.deliver(
                    victim.client,
                    tick,
                    "nack",
                    {"client_seq": victim.client_seq, "reason": "shed"},
                )
        self.metrics.gauge("service.ingest.pending_offers").set(float(len(self._pending)))

    def _refresh_overload(self) -> None:
        transition = self._ingest.refresh_overload()
        if transition == "enter":
            self._bus.emit("overload-enter", {"occupancy": self._ingest.occupancy})
        elif transition == "exit":
            self._bus.emit("overload-exit", {"occupancy": self._ingest.occupancy})
        self.metrics.gauge("service.ingest.occupancy").set(float(self._ingest.occupancy))
        self.metrics.histogram("service.ingest.occupancy").observe(
            float(self._ingest.occupancy)
        )

    def _drain(self, tick: int) -> None:
        # Cap-safety first, always all of it: the budget invariant must not
        # wait behind arrivals, no matter how saturated ingest is.
        for command in self._ingest.pop_safety():
            self._journal_command(command)
            assert isinstance(command, SetCapCommand)
            self._mediator.set_power_cap(command.p_cap_w)
            self.metrics.counter("service.commands.cap_applied").inc()
            self._sessions.deliver(
                command.client,
                tick,
                "cap-applied",
                {"client_seq": command.client_seq, "p_cap_w": command.p_cap_w},
            )
        limit = (
            self.config.overload_drain_per_tick
            if self._ingest.overloaded
            else self.config.drain_per_tick
        )
        for command in self._ingest.pop_regular(limit):
            self._journal_command(command)
            if isinstance(command, SubmitJob):
                self._admit(tick, command)
            elif isinstance(command, CancelJob):
                self._cancel(tick, command)
            else:  # pragma: no cover - the safety lane owns SetCapCommand
                raise ServiceError(f"cap-safety command in the regular lane: {command!r}")

    def _journal_command(self, command: Command) -> None:
        # WAL: the command is durable before it executes. During crash
        # re-execution, appends for already-journaled ticks are suppressed;
        # commands a dying tick journaled past the last durable tick record
        # may be re-journaled once re-execution passes that tick - replay
        # counts ticks, never command records, so duplicates are inert.
        if not self._replaying and self._journal is not None:
            self._journal.append_command(self._ingest_seq, command_to_dict(command))
        self._ingest_seq += 1

    def _admit(self, tick: int, command: SubmitJob) -> None:
        try:
            self._mediator.add_application(
                command.profile, group_width=self.config.group_width
            )
        except SchedulingError:
            self.metrics.counter("service.admit.rejected").inc()
            self._sessions.deliver(
                command.client,
                tick,
                "nack",
                {"client_seq": command.client_seq, "reason": "server-full"},
            )
        else:
            self.metrics.counter("service.admit.admitted").inc()
            spec = command.adversary_spec()
            if spec is not None:
                # Idempotent for an identical spec, so journal replay can
                # re-drive the admission without tripping it.
                self._mediator.register_adversary(spec)
                self.metrics.counter("service.admit.adversarial").inc()
            self._outstanding[command.profile.name] = command.client
            self._sessions.deliver(
                command.client,
                tick,
                "admitted",
                {"client_seq": command.client_seq, "app": command.profile.name},
            )

    def _cancel(self, tick: int, command: CancelJob) -> None:
        if command.app in self._outstanding and command.app in self._mediator.managed_apps():
            self._mediator.remove_application(command.app)
            self._outstanding.pop(command.app, None)
            self.metrics.counter("service.jobs.cancelled").inc()
            self._sessions.deliver(
                command.client,
                tick,
                "cancelled",
                {"client_seq": command.client_seq, "app": command.app},
            )
        else:
            self._sessions.deliver(
                command.client,
                tick,
                "nack",
                {"client_seq": command.client_seq, "reason": "unknown-app"},
            )

    def _publish(self, tick: int) -> None:
        if self._outstanding:
            managed = set(self._mediator.managed_apps())
            for app in [a for a in self._outstanding if a not in managed]:
                client = self._outstanding.pop(app)
                self.metrics.counter("service.jobs.completed").inc()
                self._sessions.deliver(client, tick, "completed", {"app": app})
        if tick % self.config.telemetry_every_ticks == 0:
            self._sessions.broadcast(
                tick,
                "telemetry",
                {
                    "tick": tick,
                    "managed": len(self._mediator.managed_apps()),
                    "occupancy": self._ingest.occupancy,
                    "connected": self._sessions.connected_count(),
                },
            )

    # ------------------------------------------------------------ durability

    def _checkpoint(self) -> None:
        assert self._journal is not None
        doc = {
            "schema": SERVICE_CHECKPOINT_SCHEMA,
            "version": SERVICE_CHECKPOINT_VERSION,
            "tick": self._tick,
            "sim_time_s": self._mediator.server.now_s,
            "mediator_recipe": self._recipe.to_dict(),
            "mediator_state": self._mediator.state_dict(),
            "population": self._population.state_dict(),
            "ingest": self._ingest.state_dict(),
            "sessions": self._sessions.state_dict(),
            "pending": [command_to_dict(c) for c in self._pending],
            "outstanding": dict(self._outstanding),
            "client_seqs": {str(c): s for c, s in self._client_seqs.items()},
            "cap_cursor": self._cap_cursor,
            "ingest_seq": self._ingest_seq,
            "metrics": self.metrics.to_json(),
        }
        path = self._checkpoint_dir / f"svc-{self._tick:08d}.json"
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from None
        # The mark pins the sim-event prefix this snapshot captured; kept
        # in memory only, like the supervisor's (a restart that outlives
        # the process also restarts the trace).
        self._bus_marks[path.name] = self._bus.mark()
        self._journal.append_checkpoint(
            tick=self._tick, path=path.name, command=self._ingest_seq, end_s=None
        )
        # Everything at or before the (fsynced) marker is now recoverable
        # from this checkpoint: retention may seal and prune behind it.
        self._safe_seq = self._journal.next_seq - 1
        self._safe_mark = self._bus_marks[path.name]
        self.metrics.counter("service.checkpoints").inc()

    # -------------------------------------------------------------- recovery

    def _handle_crash(self) -> None:
        while True:
            self._crash_journal()
            self.metrics.counter("service.restarts").inc()
            self._bus.emit_meta("crash", {"tick": self._tick})
            try:
                self._recover()
                return
            except ServiceKilled:
                continue  # killed again mid-replay; recover from scratch

    def _crash_journal(self) -> None:
        """Apply crash semantics: nothing un-fsynced is trustworthy."""
        if self._journal is not None:
            durable = self._journal.durable_offset
            segment = self._journal.current_segment
            self._journal.abort()
            self._journal = None
            if self._tear_bytes > 0:
                size = segment.stat().st_size
                keep = max(durable, size - self._tear_bytes)
                os.truncate(segment, keep)

    def _recover(self) -> None:
        repair_segmented_tail(self._journal_dir)
        records = read_segmented(self._journal_dir)
        marker = None
        marker_seq = 0
        for record in records:
            if record["op"] == "checkpoint":
                marker = record
                marker_seq = record["seq"]
        if marker is None:
            raise ServiceError(
                f"journal {self._journal_dir} holds no checkpoint marker; "
                "cannot recover"
            )
        doc = self._read_service_checkpoint(self._checkpoint_dir / marker["path"])

        # Restore every piece of deterministic state at the checkpoint tick.
        recipe = RunRecipe.from_dict(doc["mediator_recipe"], where="checkpoint.recipe")
        mediator = recipe.build()
        try:
            mediator.load_state_dict(doc["mediator_state"])
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint.mediator_state: does not match its recipe "
                f"({type(exc).__name__}: {exc})"
            ) from None
        self._mediator = mediator
        self._mediator.ensure_plan()  # tick-0 checkpoints predate any plan
        self.metrics = MetricsRegistry.from_json(doc["metrics"])
        self.metrics.counter("service.restarts").inc()  # survives the rewind
        self._population = self.config.make_population()
        self._population.load_state_dict(doc["population"])
        self._ingest = self._make_ingest()
        self._ingest.load_state_dict(doc["ingest"])
        self._sessions = self._make_sessions()
        self._sessions.load_state_dict(doc["sessions"])
        self._retention = RetentionManager(self.config.retention, metrics=self.metrics)
        self._pending = [command_from_dict(c) for c in doc["pending"]]
        self._outstanding = {str(k): int(v) for k, v in doc["outstanding"].items()}
        self._client_seqs = {int(k): int(v) for k, v in doc["client_seqs"].items()}
        self._cap_cursor = int(doc["cap_cursor"])
        self._ingest_seq = int(doc["ingest_seq"])
        self._tick = int(doc["tick"])

        # Rewind the trace to the checkpoint's sim-event prefix; replay
        # re-emits everything after it identically.
        mark = self._bus_marks.get(marker["path"])
        dropped = 0 if mark is None else self._bus.truncate_to_mark(mark)
        self._bus.emit_meta(
            "restore",
            {"tick": self._tick, "checkpoint": marker["path"], "events_dropped": dropped},
        )
        self._mediator.attach_trace_bus(self._bus)

        # The journal's durable tick records tell how much execution it
        # already holds; re-execute exactly that span with appends
        # suppressed, then resume journaling at the next fresh sequence.
        last_seq = records[-1]["seq"]
        replay_until = self._tick
        for record in records:
            if record["seq"] > marker_seq and record["op"] == "tick":
                replay_until = int(record["tick"]) + 1
        replay_ticks = replay_until - self._tick
        self._replaying = True
        try:
            for _ in range(replay_ticks):
                self._one_tick()
        finally:
            self._replaying = False
        self._journal = SegmentedJournalWriter(
            self._journal_dir,
            records_per_segment=self.config.retention.records_per_segment,
            fsync_every_ticks=self.config.fsync_every_ticks,
            start_seq=last_seq + 1,
        )
        self._bus.emit_meta("replayed", {"ticks": replay_ticks})
        self.metrics.counter("service.replayed_ticks").inc(replay_ticks)
        self._checkpoint()  # forward progress: repeated crashes never loop
        self._retention.prune_checkpoints(self._checkpoint_dir)

    def _read_service_checkpoint(self, path: Path) -> dict:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{path}: not valid JSON ({exc})") from None
        if not isinstance(doc, dict) or doc.get("schema") != SERVICE_CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{path}: not a {SERVICE_CHECKPOINT_SCHEMA!r} document"
            )
        if doc.get("version") != SERVICE_CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: service checkpoint version {doc.get('version')!r} is not "
                f"supported (this build reads version {SERVICE_CHECKPOINT_VERSION})"
            )
        return doc
