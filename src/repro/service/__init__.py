"""Long-running service mode: streaming ingest around the mediator.

Every other entry point in this repo is a *batch experiment*: build a
mediator, run a fixed script or horizon, report. This package turns the
mediator into a **service**: a deterministic, sim-time event loop that
consumes an open-loop command stream (job submissions, cancellations, cap
changes from the provisioner) and produces a subscription stream (per-client
acknowledgements, job completions, periodic telemetry), indefinitely.

The robustness core, layer by layer:

* :mod:`repro.service.commands` - the typed command stream, with cap-safety
  commands distinguished so overload can prioritize them;
* :mod:`repro.service.ingest` - the bounded ingest buffer and its explicit
  backpressure policies (``block``, ``reject``, ``shed-oldest``), every drop
  counted, never silent;
* :mod:`repro.service.sessions` - client sessions with sequence-numbered
  delivery and gap-checked replay-on-reconnect;
* :mod:`repro.service.retention` - compaction that keeps the trace window,
  journal segments, and checkpoint set bounded for multi-day soaks;
* :mod:`repro.service.loop` - :class:`MediatorService`, the event loop that
  ties them to the PR 2 checkpoint/journal substrate: a kill mid-stream is
  recovered by full-tick re-execution from the last durable checkpoint, and
  the stitched trace hashes identically to an uninterrupted run.

See DESIGN.md section 11 for the architecture and invariants.
"""

from repro.service.commands import (
    CancelJob,
    SetCapCommand,
    SubmitJob,
    command_from_dict,
    command_to_dict,
    is_cap_safety,
)
from repro.service.ingest import BACKPRESSURE_POLICIES, IngestBuffer
from repro.service.loop import MediatorService, ServiceConfig, ServiceKilled
from repro.service.retention import RetentionConfig, RetentionManager
from repro.service.sessions import ClientSession, Delivery, SessionRegistry

__all__ = [
    "BACKPRESSURE_POLICIES",
    "CancelJob",
    "ClientSession",
    "Delivery",
    "IngestBuffer",
    "MediatorService",
    "RetentionConfig",
    "RetentionManager",
    "ServiceConfig",
    "ServiceKilled",
    "SessionRegistry",
    "SetCapCommand",
    "SubmitJob",
    "command_from_dict",
    "command_to_dict",
    "is_cap_safety",
]
