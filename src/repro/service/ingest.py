"""The bounded ingest buffer and its explicit backpressure policies.

Open-loop traffic does not slow down because the mediator is busy, so the
buffer between clients and the event loop must be bounded and must say -
loudly - what happens when it fills. Three policies, chosen at
construction:

``block``
    The offer is *deferred*: the client's request stays in flight and is
    re-offered next tick. Models a blocking client library; offered load
    backs up outside the service rather than inside it.
``reject``
    The offer is refused with a NACK delivery to the submitting client.
``shed-oldest``
    The new offer is accepted and the *oldest* buffered regular command is
    shed (its client is NACKed). Freshness-biased, as a telemetry-style
    ingest wants.

Two lanes. Cap-safety commands (:func:`~repro.service.commands.is_cap_safety`)
go to a dedicated lane that no policy ever sheds, rejects, or defers - the
power-budget invariant must survive ingest saturation - and the event loop
drains that lane fully before admitting any regular command. Every
disposition is counted in the :class:`~repro.observability.metrics.MetricsRegistry`
under ``service.ingest.*``; nothing is dropped silently.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.service.commands import Command, command_from_dict, command_to_dict, is_cap_safety

__all__ = ["BACKPRESSURE_POLICIES", "IngestBuffer"]

#: The backpressure policies the buffer understands.
BACKPRESSURE_POLICIES = ("block", "reject", "shed-oldest")

#: Dispositions :meth:`IngestBuffer.offer` can return.
ACCEPTED = "accepted"
REJECTED = "rejected"
DEFERRED = "deferred"


class IngestBuffer:
    """A two-lane command buffer with a bounded regular lane.

    Args:
        capacity: Maximum buffered regular commands.
        policy: One of :data:`BACKPRESSURE_POLICIES`.
        metrics: Registry receiving the ``service.ingest.*`` counters.
        overload_enter_fraction / overload_exit_fraction: Occupancy
            hysteresis for the overload posture; crossing the enter mark
            flips :attr:`overloaded` on, falling below the exit mark flips
            it off (enter > exit so the posture does not flap).
    """

    def __init__(
        self,
        *,
        capacity: int,
        policy: str,
        metrics: MetricsRegistry,
        overload_enter_fraction: float = 0.8,
        overload_exit_fraction: float = 0.5,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ingest capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r} "
                f"(choose from {', '.join(BACKPRESSURE_POLICIES)})"
            )
        if not 0.0 < overload_exit_fraction < overload_enter_fraction <= 1.0:
            raise ConfigurationError(
                "overload watermarks need 0 < exit < enter <= 1, got "
                f"exit={overload_exit_fraction!r} enter={overload_enter_fraction!r}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._metrics = metrics
        self._enter = overload_enter_fraction
        self._exit = overload_exit_fraction
        self._safety: deque[Command] = deque()
        self._regular: deque[Command] = deque()
        self.overloaded = False

    # ------------------------------------------------------------ occupancy

    @property
    def occupancy(self) -> int:
        return len(self._regular)

    @property
    def safety_occupancy(self) -> int:
        return len(self._safety)

    def refresh_overload(self) -> str | None:
        """Update the overload posture; returns ``"enter"``/``"exit"`` on a
        transition, ``None`` otherwise. Called once per tick by the loop."""
        fraction = len(self._regular) / self.capacity
        if not self.overloaded and fraction >= self._enter:
            self.overloaded = True
            self._metrics.counter("service.overload.entered").inc()
            return "enter"
        if self.overloaded and fraction <= self._exit:
            self.overloaded = False
            self._metrics.counter("service.overload.exited").inc()
            return "exit"
        return None

    # ----------------------------------------------------------------- offer

    def offer(self, command: Command) -> tuple[str, Command | None]:
        """Offer one command; returns ``(disposition, shed_victim)``.

        Cap-safety commands are always accepted into their own lane. For a
        full regular lane the configured policy decides: ``reject`` returns
        ``(REJECTED, None)``, ``block`` returns ``(DEFERRED, None)`` (the
        caller re-offers next tick), and ``shed-oldest`` accepts the new
        command and returns the evicted victim for NACKing.
        """
        if is_cap_safety(command):
            self._safety.append(command)
            self._metrics.counter("service.ingest.safety_accepted").inc()
            return ACCEPTED, None
        if len(self._regular) < self.capacity:
            self._regular.append(command)
            self._metrics.counter("service.ingest.accepted").inc()
            return ACCEPTED, None
        if self.policy == "reject":
            self._metrics.counter("service.ingest.rejected").inc()
            return REJECTED, None
        if self.policy == "block":
            self._metrics.counter("service.ingest.deferred").inc()
            return DEFERRED, None
        # shed-oldest: the new command is fresher than the oldest buffered one
        victim = self._regular.popleft()
        self._regular.append(command)
        self._metrics.counter("service.ingest.accepted").inc()
        self._metrics.counter("service.ingest.shed").inc()
        return ACCEPTED, victim

    # ----------------------------------------------------------------- drain

    def pop_safety(self) -> list[Command]:
        """Every buffered cap-safety command, oldest first (always all of
        them: safety commands are never rationed)."""
        drained = list(self._safety)
        self._safety.clear()
        return drained

    def pop_regular(self, limit: int) -> list[Command]:
        """Up to ``limit`` regular commands, oldest first."""
        if limit < 0:
            raise ServiceError(f"drain limit must be non-negative, got {limit}")
        drained: list[Command] = []
        while self._regular and len(drained) < limit:
            drained.append(self._regular.popleft())
        return drained

    # ------------------------------------------------------------ checkpoint

    def state_dict(self) -> dict:
        return {
            "safety": [command_to_dict(c) for c in self._safety],
            "regular": [command_to_dict(c) for c in self._regular],
            "overloaded": self.overloaded,
        }

    def load_state_dict(self, state: dict) -> None:
        self._safety = deque(command_from_dict(c) for c in state["safety"])
        self._regular = deque(command_from_dict(c) for c in state["regular"])
        self.overloaded = bool(state["overloaded"])
