"""The service's typed command stream.

Three commands flow through the ingest buffer:

* :class:`SubmitJob` - a client asks the service to admit one application;
* :class:`CancelJob` - a client withdraws a submitted (possibly running) job;
* :class:`SetCapCommand` - the provisioner moves the server's power cap.

The split that matters under overload is *cap-safety* versus *regular*:
a cap change is how the power budget invariant is enforced from outside, so
:func:`is_cap_safety` commands ride a dedicated ingest lane that is drained
first every tick and is never subject to backpressure shedding. Everything
else competes for the bounded regular lane.

Commands serialize to the same ``{"kind": ...}`` dict shape the supervisor's
script commands use, so the PR 2 journal machinery accepts them unchanged
(``op: "command"`` records with an arbitrary dict payload).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.adversary.plan import AdversarySpec
from repro.errors import AdversaryError, ConfigurationError, ServiceError
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "CancelJob",
    "Command",
    "SetCapCommand",
    "SubmitJob",
    "command_from_dict",
    "command_to_dict",
    "is_cap_safety",
]


def _check_client(client: int, client_seq: int) -> None:
    if client < 0:
        raise ConfigurationError(f"client id must be non-negative, got {client}")
    if client_seq < 0:
        raise ConfigurationError(f"client_seq must be non-negative, got {client_seq}")


@dataclass(frozen=True)
class SubmitJob:
    """A client's request to run one application on the mediated server.

    ``adversary`` is the *simulation's* declaration that this client
    behaves strategically (an :class:`~repro.adversary.plan.AdversarySpec`
    as a dict, targeting this job's app). The mediator's defenses never
    read it - they must catch the behaviour from telemetry alone.
    """

    client: int
    client_seq: int
    profile: WorkloadProfile
    adversary: dict | None = None

    def __post_init__(self) -> None:
        _check_client(self.client, self.client_seq)
        if self.adversary is not None:
            spec = AdversarySpec.from_dict(self.adversary, where="submit.adversary")
            if spec.app != self.profile.name:
                raise AdversaryError(
                    f"submit.adversary targets {spec.app!r} but the job "
                    f"submits {self.profile.name!r}"
                )

    def adversary_spec(self) -> AdversarySpec | None:
        """The validated spec, or ``None`` for an honest client."""
        if self.adversary is None:
            return None
        return AdversarySpec.from_dict(self.adversary, where="submit.adversary")


@dataclass(frozen=True)
class CancelJob:
    """A client withdraws a job by name (forced E3 if it is running)."""

    client: int
    client_seq: int
    app: str

    def __post_init__(self) -> None:
        _check_client(self.client, self.client_seq)
        if not self.app:
            raise ConfigurationError("cancel needs a non-empty application name")


@dataclass(frozen=True)
class SetCapCommand:
    """The provisioner moves the server cap (mediator event E1).

    ``client`` is the provisioner's pseudo-client id; the command still
    carries one so acknowledgement delivery is uniform.
    """

    client: int
    client_seq: int
    p_cap_w: float

    def __post_init__(self) -> None:
        _check_client(self.client, self.client_seq)
        if not (math.isfinite(self.p_cap_w) and self.p_cap_w > 0):
            raise ConfigurationError(
                f"cap must be finite and positive, got {self.p_cap_w!r}"
            )


Command = SubmitJob | CancelJob | SetCapCommand


def is_cap_safety(command: Command) -> bool:
    """Whether ``command`` rides the never-shed cap-safety ingest lane."""
    return isinstance(command, SetCapCommand)


def command_to_dict(command: Command) -> dict:
    """Serialize for the write-ahead journal (inverse of
    :func:`command_from_dict`)."""
    if isinstance(command, SubmitJob):
        doc = {
            "kind": "submit",
            "client": command.client,
            "client_seq": command.client_seq,
            "profile": command.profile.to_dict(),
        }
        if command.adversary is not None:
            doc["adversary"] = dict(command.adversary)
        return doc
    if isinstance(command, CancelJob):
        return {
            "kind": "cancel",
            "client": command.client,
            "client_seq": command.client_seq,
            "app": command.app,
        }
    if isinstance(command, SetCapCommand):
        return {
            "kind": "set-cap",
            "client": command.client,
            "client_seq": command.client_seq,
            "p_cap_w": command.p_cap_w,
        }
    raise TypeError(f"not a service command: {command!r}")


def command_from_dict(data: dict) -> Command:
    """Rebuild a command from its journaled dict form.

    Raises:
        ServiceError: on an unknown kind (a journal from a different
            subsystem, or schema drift).
    """
    kind = data.get("kind")
    if kind == "submit":
        return SubmitJob(
            client=int(data["client"]),
            client_seq=int(data["client_seq"]),
            profile=WorkloadProfile.from_dict(data["profile"]),
            adversary=data.get("adversary"),
        )
    if kind == "cancel":
        return CancelJob(
            client=int(data["client"]),
            client_seq=int(data["client_seq"]),
            app=str(data["app"]),
        )
    if kind == "set-cap":
        return SetCapCommand(
            client=int(data["client"]),
            client_seq=int(data["client_seq"]),
            p_cap_w=float(data["p_cap_w"]),
        )
    raise ServiceError(f"unknown service command kind {kind!r}")
