"""Retention: bounded memory and disk for an indefinitely running service.

Three things grow without bound in a naive service: the in-memory trace,
the on-disk journal, and the checkpoint directory. The
:class:`RetentionManager` compacts all three on a fixed tick cadence, and
the bound it enforces is always anchored to the **latest durable
checkpoint** - nothing a future recovery could still need is ever evicted:

* the :class:`~repro.observability.streaming.StreamingTraceBus` seal mark
  advances to the checkpoint's bus mark, then the window compacts (sealed
  events fold into the incremental hash, so the run's content hash is
  unchanged);
* journal segments wholly before the checkpoint's marker record are pruned
  (:func:`~repro.persistence.segments.prune_segments`) - the replay cursor
  starts at the marker, so earlier records are unreachable;
* service checkpoints older than the newest ``keep_checkpoints`` are
  deleted (recovery only ever restores the latest durable one).

Footprints are published as ``service.retention.*`` gauges so a soak can
assert boundedness instead of trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.observability.streaming import StreamingTraceBus
from repro.persistence.segments import list_segments, prune_segments, segments_size_bytes

__all__ = ["RetentionConfig", "RetentionManager"]


@dataclass(frozen=True)
class RetentionConfig:
    """Bounds for the service's retained state.

    Attributes:
        retain_trace_events: Soft cap on in-memory trace events.
        session_window: Retained deliveries per client session (replay
            depth; a client disconnected longer than this many deliveries
            hits a replay gap, loudly).
        records_per_segment: Journal rotation threshold.
        keep_checkpoints: Service checkpoints retained on disk.
        every_ticks: Compaction cadence.
    """

    retain_trace_events: int = 4096
    session_window: int = 4096
    records_per_segment: int = 2048
    keep_checkpoints: int = 2
    every_ticks: int = 500

    def __post_init__(self) -> None:
        for name in (
            "retain_trace_events",
            "session_window",
            "records_per_segment",
            "keep_checkpoints",
            "every_ticks",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(f"retention {name} must be >= 1, got {value}")


class RetentionManager:
    """Applies a :class:`RetentionConfig` to the service's stores."""

    def __init__(self, config: RetentionConfig, *, metrics: MetricsRegistry) -> None:
        self.config = config
        self._metrics = metrics

    def run(
        self,
        *,
        bus: StreamingTraceBus | None,
        journal_dir: Path,
        checkpoint_dir: Path,
        safe_seq: int,
        safe_mark: int | None,
    ) -> None:
        """One compaction pass, anchored at the latest durable checkpoint.

        Args:
            bus: The streaming trace bus (``None`` when tracing is off).
            journal_dir: Segment directory.
            checkpoint_dir: Service checkpoint directory.
            safe_seq: Journal seq of the latest durable checkpoint marker;
                segments wholly before it are prunable.
            safe_mark: That checkpoint's trace-bus mark; sim events below
                it are sealable. ``None`` leaves the seal mark alone.
        """
        if bus is not None and isinstance(bus, StreamingTraceBus):
            if safe_mark is not None:
                bus.set_seal_mark(safe_mark)
            bus.compact()
            self._metrics.gauge("service.retention.trace_events").set(
                float(bus.retained_events)
            )
            self._metrics.gauge("service.retention.trace_sealed").set(
                float(bus.sealed_events)
            )
        pruned = prune_segments(journal_dir, safe_seq)
        if pruned:
            self._metrics.counter("service.retention.segments_pruned").inc(pruned)
        self._metrics.gauge("service.retention.journal_segments").set(
            float(len(list_segments(journal_dir)))
        )
        self._metrics.gauge("service.retention.journal_bytes").set(
            float(segments_size_bytes(journal_dir))
        )
        self.prune_checkpoints(checkpoint_dir)

    def prune_checkpoints(self, checkpoint_dir: Path) -> int:
        """Delete all but the newest ``keep_checkpoints`` service
        checkpoints. Cheap, so the loop runs it at every checkpoint write
        (not just full compaction passes) - recovery only ever restores the
        newest durable one."""
        deleted = self._prune_checkpoints(checkpoint_dir)
        if deleted:
            self._metrics.counter("service.retention.checkpoints_pruned").inc(deleted)
        return deleted

    def _prune_checkpoints(self, checkpoint_dir: Path) -> int:
        checkpoints = sorted(Path(checkpoint_dir).glob("svc-*.json"))
        excess = checkpoints[: max(0, len(checkpoints) - self.config.keep_checkpoints)]
        for path in excess:
            try:
                path.unlink()
            except OSError as exc:
                raise ServiceError(f"cannot prune checkpoint {path.name}: {exc}") from None
        remaining = len(checkpoints) - len(excess)
        self._metrics.gauge("service.retention.checkpoints").set(float(remaining))
        return len(excess)
