"""Client sessions: sequence-numbered delivery and replay-on-reconnect.

Each simulated client holds one :class:`ClientSession`. The service pushes
**deliveries** - acknowledgements, NACKs, job completions, periodic
telemetry - into the session, each stamped with a per-client monotone
sequence number. A connected client consumes deliveries as they are made;
a disconnected client's deliveries keep accruing sequence numbers in a
bounded retained window, and on reconnect the session **replays** exactly
the missed suffix, verifying it is gap-free (first replayed seq is the
cursor + 1 and the seqs are contiguous). A gap means the retained window
was outlived - the session raises :class:`~repro.errors.ServiceError`
rather than silently skipping data.

Sessions are part of the service checkpoint, so delivery sequence numbers
survive supervisor warm restarts: recovery restores the sessions at the
checkpoint tick and deterministic re-execution regenerates the exact
deliveries the crash destroyed, cursor and all.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError, ServiceError
from repro.observability.metrics import MetricsRegistry

__all__ = ["ClientSession", "Delivery", "SessionRegistry"]


@dataclass(frozen=True)
class Delivery:
    """One sequenced message from the service to a client."""

    seq: int
    tick: int
    kind: str
    payload: dict[str, Any]

    def to_dict(self) -> dict:
        return {"seq": self.seq, "tick": self.tick, "kind": self.kind, "payload": self.payload}

    @classmethod
    def from_dict(cls, data: dict) -> "Delivery":
        return cls(
            seq=int(data["seq"]),
            tick=int(data["tick"]),
            kind=str(data["kind"]),
            payload=dict(data["payload"]),
        )


class ClientSession:
    """Delivery stream state for one client.

    Args:
        client: Client id.
        window: Retained deliveries (bounds replay depth and memory).
        connected: Whether the client starts attached.
    """

    def __init__(self, client: int, *, window: int, connected: bool = True) -> None:
        if window < 1:
            raise ConfigurationError(f"session window must be >= 1, got {window}")
        self.client = client
        self.window_size = int(window)
        self.connected = connected
        self._window: deque[Delivery] = deque(maxlen=self.window_size)
        self._next_seq = 0
        # Highest seq the client has consumed; frozen while disconnected.
        self._delivered_through = -1

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def delivered_through(self) -> int:
        return self._delivered_through

    @property
    def pending(self) -> int:
        """Deliveries accrued but not yet consumed by the client."""
        return (self._next_seq - 1) - self._delivered_through

    def deliver(self, tick: int, kind: str, payload: dict[str, Any]) -> Delivery:
        """Stamp and retain one delivery; a connected client consumes it now."""
        delivery = Delivery(seq=self._next_seq, tick=tick, kind=kind, payload=payload)
        self._next_seq += 1
        self._window.append(delivery)
        if self.connected:
            self._delivered_through = delivery.seq
        return delivery

    def disconnect(self) -> None:
        self.connected = False

    def reconnect(self) -> list[Delivery]:
        """Re-attach and replay the missed suffix, verifying it is gap-free.

        Returns the replayed deliveries (possibly empty). Raises
        :class:`ServiceError` if the retained window no longer covers the
        client's cursor - the stream has a hole that replay cannot fill.
        """
        self.connected = True
        missed = [d for d in self._window if d.seq > self._delivered_through]
        expected = self._delivered_through + 1
        if missed and missed[0].seq != expected:
            raise ServiceError(
                f"client {self.client}: replay gap - cursor expects seq {expected} "
                f"but the oldest retained delivery is seq {missed[0].seq} "
                f"(window of {self.window_size} outlived)"
            )
        if not missed and self._next_seq - 1 > self._delivered_through:
            raise ServiceError(
                f"client {self.client}: replay gap - deliveries through "
                f"{self._next_seq - 1} exist but none after cursor "
                f"{self._delivered_through} are retained"
            )
        for index, delivery in enumerate(missed):
            if delivery.seq != expected + index:
                raise ServiceError(
                    f"client {self.client}: replay gap - seq {delivery.seq} follows "
                    f"{expected + index - 1} non-contiguously"
                )
        if missed:
            self._delivered_through = missed[-1].seq
        return missed

    def state_dict(self) -> dict:
        return {
            "client": self.client,
            "window_size": self.window_size,
            "connected": self.connected,
            "next_seq": self._next_seq,
            "delivered_through": self._delivered_through,
            "window": [d.to_dict() for d in self._window],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ClientSession":
        session = cls(
            int(state["client"]),
            window=int(state["window_size"]),
            connected=bool(state["connected"]),
        )
        session._next_seq = int(state["next_seq"])
        session._delivered_through = int(state["delivered_through"])
        for doc in state["window"]:
            session._window.append(Delivery.from_dict(doc))
        return session


class SessionRegistry:
    """All client sessions, plus the delivery counters.

    Args:
        clients: Number of client sessions to create (ids ``0..clients-1``).
        window: Retained-delivery window per session.
        metrics: Registry receiving ``service.sessions.*`` counters.
    """

    def __init__(self, *, clients: int, window: int, metrics: MetricsRegistry) -> None:
        if clients < 1:
            raise ConfigurationError(f"need at least one client, got {clients}")
        self._metrics = metrics
        self._sessions = {
            client: ClientSession(client, window=window) for client in range(clients)
        }

    def __len__(self) -> int:
        return len(self._sessions)

    def session(self, client: int) -> ClientSession:
        try:
            return self._sessions[client]
        except KeyError:
            raise ServiceError(f"unknown client {client}") from None

    def sessions(self) -> list[ClientSession]:
        return [self._sessions[c] for c in sorted(self._sessions)]

    def connected_count(self) -> int:
        return sum(1 for s in self._sessions.values() if s.connected)

    def deliver(self, client: int, tick: int, kind: str, payload: dict[str, Any]) -> Delivery:
        self._metrics.counter("service.sessions.deliveries").inc()
        return self.session(client).deliver(tick, kind, payload)

    def broadcast(self, tick: int, kind: str, payload: dict[str, Any]) -> None:
        """Deliver to every session - connected or not; absent clients will
        replay the broadcast on reconnect."""
        for session in self.sessions():
            self._metrics.counter("service.sessions.deliveries").inc()
            session.deliver(tick, kind, payload)

    def disconnect(self, client: int) -> None:
        session = self.session(client)
        if session.connected:
            session.disconnect()
            self._metrics.counter("service.sessions.disconnects").inc()

    def reconnect(self, client: int) -> list[Delivery]:
        session = self.session(client)
        if session.connected:
            return []
        missed = session.reconnect()
        self._metrics.counter("service.sessions.reconnects").inc()
        self._metrics.counter("service.sessions.replayed").inc(len(missed))
        return missed

    def state_dict(self) -> dict:
        return {"sessions": [s.state_dict() for s in self.sessions()]}

    def load_state_dict(self, state: dict) -> None:
        restored = {}
        for doc in state["sessions"]:
            session = ClientSession.from_state(doc)
            restored[session.client] = session
        self._sessions = restored
