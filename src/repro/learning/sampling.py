"""Sparse-sampling strategies: which knob settings to measure online.

Measuring one configuration means actually running the application at that
setting for a settling window, so samples are expensive (the paper charges
these overheads to its results and picks a 10% sampling fraction in Fig. 7).
The strategies here decide *which* columns of the knob space to spend that
budget on:

* :class:`RandomSampler` - uniform without replacement; the paper's baseline
  protocol;
* :class:`StratifiedSampler` - guarantees the knob-space corners (uncapped
  and minimum) plus per-dimension spread, then fills the remaining budget
  randomly. The uncapped corner doubles as the performance normalization
  anchor (see :mod:`repro.learning.collaborative`), which is why this is the
  default in the framework.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting, ServerConfig


class Sampler(abc.ABC):
    """Strategy interface: choose knob settings to measure for one app."""

    @abc.abstractmethod
    def select(self, config: ServerConfig) -> list[KnobSetting]:
        """The settings to measure, in measurement order."""

    @staticmethod
    def budget_from_fraction(config: ServerConfig, fraction: float) -> int:
        """Number of samples a fraction of the knob space buys (at least 1).

        Raises:
            ConfigurationError: unless ``0 < fraction <= 1``.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        return max(1, int(round(fraction * len(config.knob_space()))))


def sampler_spec(sampler: Sampler) -> dict:
    """Describe a sampler as a plain dict (for checkpoint recipes).

    Samplers are stateless between :meth:`Sampler.select` calls - each call
    builds a fresh RNG from the stored seed - so type + constructor
    arguments reproduce one exactly.

    Raises:
        ConfigurationError: for a sampler type this module does not know.
    """
    if isinstance(sampler, AdaptiveSampler):
        return {
            "type": "adaptive",
            "fraction": sampler.fraction,
            "seed": sampler._seed,  # noqa: SLF001 - sibling access
            "bootstrap_fraction": sampler._bootstrap_fraction,  # noqa: SLF001
        }
    if isinstance(sampler, StratifiedSampler):
        return {
            "type": "stratified",
            "fraction": sampler.fraction,
            "seed": sampler._seed,  # noqa: SLF001
        }
    if isinstance(sampler, RandomSampler):
        return {
            "type": "random",
            "fraction": sampler.fraction,
            "seed": sampler._seed,  # noqa: SLF001
        }
    raise ConfigurationError(
        f"cannot serialize sampler of type {type(sampler).__name__}"
    )


def sampler_from_spec(spec: dict) -> Sampler:
    """Inverse of :func:`sampler_spec`.

    Raises:
        ConfigurationError: for an unknown sampler type tag.
    """
    kind = spec.get("type")
    fraction = float(spec["fraction"])
    seed = int(spec["seed"])
    if kind == "adaptive":
        return AdaptiveSampler(
            fraction, seed=seed, bootstrap_fraction=float(spec["bootstrap_fraction"])
        )
    if kind == "stratified":
        return StratifiedSampler(fraction, seed=seed)
    if kind == "random":
        return RandomSampler(fraction, seed=seed)
    raise ConfigurationError(f"unknown sampler type {kind!r} in spec")


class RandomSampler(Sampler):
    """Uniform sampling without replacement.

    Args:
        fraction: Fraction of the knob space to measure.
        seed: RNG seed for reproducible sample sets.
    """

    def __init__(self, fraction: float, *, seed: int = 0) -> None:
        self._fraction = fraction
        self._seed = seed
        Sampler.budget_from_fraction(ServerConfig(), fraction)  # validate early

    @property
    def fraction(self) -> float:
        return self._fraction

    def select(self, config: ServerConfig) -> list[KnobSetting]:
        space = config.knob_space()
        budget = self.budget_from_fraction(config, self._fraction)
        rng = np.random.default_rng(self._seed)
        indices = rng.choice(len(space), size=budget, replace=False)
        return [space[i] for i in sorted(int(i) for i in indices)]


class StratifiedSampler(Sampler):
    """Corners + per-dimension sweeps + random fill.

    The deterministic part measures:

    1. the uncapped corner ``(f_max, n_max, m_max)`` - the normalization
       anchor and the app's unconstrained demand;
    2. the minimum corner ``(f_min, n_min, m_min)`` - the floor of every
       utility curve;
    3. a sweep of each knob with the others held at maximum (the marginal
       response of each direct resource - exactly the per-resource utilities
       of the paper's Fig. 3).

    Any remaining budget is spent uniformly at random on unmeasured columns.

    Args:
        fraction: Fraction of the knob space to measure; must afford at
            least the two corners.
        seed: RNG seed for the random fill.
    """

    def __init__(self, fraction: float, *, seed: int = 0) -> None:
        self._fraction = fraction
        self._seed = seed
        Sampler.budget_from_fraction(ServerConfig(), fraction)  # validate early

    @property
    def fraction(self) -> float:
        return self._fraction

    def select(self, config: ServerConfig) -> list[KnobSetting]:
        space = config.knob_space()
        budget = self.budget_from_fraction(config, self._fraction)
        deterministic: list[KnobSetting] = [config.max_knob, config.min_knob]
        fmax, nmax, mmax = (
            config.freq_max_ghz,
            config.cores_max,
            config.dram_power_max_w,
        )
        for f in config.frequencies_ghz:
            deterministic.append(KnobSetting(f, nmax, mmax))
        for n in config.core_counts:
            deterministic.append(KnobSetting(fmax, n, mmax))
        for m in config.dram_powers_w:
            deterministic.append(KnobSetting(fmax, nmax, m))
        # De-duplicate preserving order, then truncate to budget (corners
        # first, so a tiny budget still measures them).
        seen: set[KnobSetting] = set()
        ordered: list[KnobSetting] = []
        for knob in deterministic:
            if knob not in seen:
                seen.add(knob)
                ordered.append(knob)
        ordered = ordered[:budget]
        if len(ordered) < budget:
            remaining = [k for k in space if k not in seen]
            rng = np.random.default_rng(self._seed)
            extra = rng.choice(len(remaining), size=budget - len(ordered), replace=False)
            ordered.extend(remaining[int(i)] for i in sorted(int(i) for i in extra))
        return ordered


class AdaptiveSampler(Sampler):
    """Two-phase active sampling: bootstrap, then query-by-committee.

    The stratified sampler spends its whole budget up front; this sampler
    spends half of it the same way (corners + sweeps, so the normalization
    anchor is always measured), then chooses the rest *adaptively*: after
    folding the bootstrap measurements into the trained collaborative
    model, it repeatedly measures the configuration about which two
    committee estimates - fold-ins from disjoint halves of the measurements
    so far - disagree the most. Disagreement is a truth-free proxy for
    model uncertainty, so the budget concentrates where the surface is
    hardest to infer.

    Use :meth:`select_adaptive` when a measurement callback is available;
    the plain :meth:`select` falls back to the stratified plan (the
    mediator's calibration path can use either).

    Args:
        fraction: Total measurement budget as a fraction of the knob space.
        seed: RNG seed for the bootstrap and committee splits.
        bootstrap_fraction: Share of the budget spent on the stratified
            bootstrap phase.
    """

    def __init__(
        self, fraction: float, *, seed: int = 0, bootstrap_fraction: float = 0.5
    ) -> None:
        if not 0.0 < bootstrap_fraction <= 1.0:
            raise ConfigurationError(
                f"bootstrap_fraction must be in (0, 1], got {bootstrap_fraction}"
            )
        self._fraction = fraction
        self._seed = seed
        self._bootstrap_fraction = bootstrap_fraction
        Sampler.budget_from_fraction(ServerConfig(), fraction)  # validate early

    @property
    def fraction(self) -> float:
        return self._fraction

    def select(self, config: ServerConfig) -> list[KnobSetting]:
        """Non-adaptive fallback: the stratified plan at the full budget."""
        return StratifiedSampler(self._fraction, seed=self._seed).select(config)

    def select_adaptive(
        self,
        config: ServerConfig,
        measure,
        estimator,
        corpus,
    ) -> dict[KnobSetting, tuple[float, float]]:
        """Run the active-sampling loop; returns all measurements taken.

        Args:
            config: The knob space.
            measure: ``knob -> (power_w, perf)`` measurement callback (one
                online run at that setting).
            estimator: A trained
                :class:`~repro.learning.collaborative.CollaborativeEstimator`.
            corpus: The corpus the estimator was trained on (for column
                indexing).

        Raises:
            LearningError: when the estimator is not trained.
        """
        from repro.errors import LearningError

        if not estimator.is_trained:
            raise LearningError("adaptive sampling needs a trained estimator")
        budget = self.budget_from_fraction(config, self._fraction)
        bootstrap_budget = max(2, int(round(budget * self._bootstrap_fraction)))
        bootstrap_fraction = bootstrap_budget / len(config.knob_space())
        plan = StratifiedSampler(bootstrap_fraction, seed=self._seed).select(config)
        samples: dict[KnobSetting, tuple[float, float]] = {
            knob: measure(knob) for knob in plan[:bootstrap_budget]
        }
        rng = np.random.default_rng(self._seed + 1)
        space = config.knob_space()
        while len(samples) < budget:
            measured = list(samples)
            if len(measured) < 4:
                # Too few points for a meaningful committee: sample randomly.
                remaining = [k for k in space if k not in samples]
                choice = remaining[int(rng.integers(len(remaining)))]
                samples[choice] = measure(choice)
                continue
            order = rng.permutation(len(measured))
            half_a = {measured[i]: samples[measured[i]] for i in order[::2]}
            half_b = {measured[i]: samples[measured[i]] for i in order[1::2]}
            est_a = estimator.estimate(corpus, half_a)
            est_b = estimator.estimate(corpus, half_b)
            disagreement = np.abs(est_a.power_w - est_b.power_w) + np.abs(
                est_a.perf - est_b.perf
            )
            for knob in samples:
                disagreement[corpus.column_of(knob)] = -1.0
            choice = space[int(np.argmax(disagreement))]
            samples[choice] = measure(choice)
        return samples
