"""Online utility learning: sparse sampling + collaborative filtering.

The paper (Section III-A) estimates an application's power and performance
at every knob setting without measuring them all: it measures a sparse
sample online and completes the rest by collaborative filtering against a
matrix of previously-seen applications ("implemented in R" in the paper; in
numpy here).

* :class:`~repro.learning.matrix.PreferenceMatrix` - the app x config
  observation store (power plane + performance plane);
* :class:`~repro.learning.collaborative.AlsFactorizer` - rank-k alternating
  least squares on partially observed matrices, with ridge fold-in of new
  rows;
* :class:`~repro.learning.collaborative.CollaborativeEstimator` - the
  two-plane wrapper policies actually use;
* :mod:`~repro.learning.sampling` - which configurations to measure;
* :mod:`~repro.learning.crossval` - the Fig. 7 calibration of the sampling
  fraction by k-fold cross-validation.
"""

from repro.learning.matrix import PreferenceMatrix
from repro.learning.collaborative import AlsFactorizer, CollaborativeEstimator
from repro.learning.sampling import RandomSampler, StratifiedSampler, AdaptiveSampler, Sampler
from repro.learning.crossval import CalibrationPoint, calibrate_sampling_fraction

__all__ = [
    "PreferenceMatrix",
    "AlsFactorizer",
    "CollaborativeEstimator",
    "RandomSampler",
    "StratifiedSampler",
    "AdaptiveSampler",
    "Sampler",
    "CalibrationPoint",
    "calibrate_sampling_fraction",
]
