"""Fig. 7 calibration: choosing the online sampling fraction by k-fold CV.

"We use 5-fold cross validation (80% of the applications are used to
estimate the metrics for 20%) to estimate the fraction of configurations to
sample. ... At low sampling rates, the error in power estimation results in
power over-shoot at the server, not adhering to the imposed cap. However,
increasing the sampled fraction reduces error in power estimation, and
consequently the server power draw stays within limit. We see similar trend
in performance as well. Based on this, we fix the online sampling rate at
10%." - Section IV.

The calibration here replays that protocol against the simulated substrate:

1. exhaustively profile every catalog application (the "previously seen"
   corpus);
2. for each fold, train the collaborative estimator on the in-fold apps;
3. for each held-out app, measure only ``fraction`` of the knob space
   (stratified), fold in, and let a budget-constrained chooser pick the
   estimated-best configuration under a per-app power budget;
4. score the *true* power and performance of that choice against the choice
   an exhaustive oracle would make.

The two Fig. 7 series are the fold-averaged ``power ratio`` (true draw of
the chosen config over the budget - above 1.0 is a cap violation) and
``performance ratio`` (true perf of the chosen config over the oracle's).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, LearningError
from repro.learning.collaborative import CollaborativeEstimator
from repro.learning.matrix import PreferenceMatrix
from repro.learning.sampling import Sampler, StratifiedSampler
from repro.server.config import ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class CalibrationPoint:
    """One x-axis point of Fig. 7.

    Attributes:
        fraction: Sampling fraction of the knob space.
        power_ratio: Mean (true power of estimated-best config) / budget;
            above 1.0 means the estimation error caused a cap overshoot.
        worst_power_ratio: The worst case across held-out apps - the
            overshoot Fig. 7 warns about is a tail phenomenon (a single
            under-estimated app breaks the server cap).
        violation_fraction: Fraction of held-out choices whose true power
            exceeded the budget.
        perf_ratio: Mean (true perf of estimated-best config) / (true perf
            of oracle-best config); 1.0 means no loss versus exhaustive
            sampling.
        power_rmse_w: RMSE of the power-surface estimate (watts).
        perf_rmse_rel: RMSE of the performance-surface estimate, relative to
            each app's peak rate.
    """

    fraction: float
    power_ratio: float
    worst_power_ratio: float
    violation_fraction: float
    perf_ratio: float
    power_rmse_w: float
    perf_rmse_rel: float


def build_exhaustive_corpus(
    config: ServerConfig,
    profiles: list[WorkloadProfile],
    *,
    power_noise_std_w: float = 0.0,
    perf_noise_relative_std: float = 0.0,
    seed: int = 0,
) -> PreferenceMatrix:
    """Fully observed preference matrices for ``profiles``.

    This is the "previously seen applications" store: on the paper's system
    it accretes over time; experiments bootstrap it by exhaustive offline
    profiling, optionally with measurement noise.
    """
    if not profiles:
        raise ConfigurationError("need at least one profile")
    perf_model = PerformanceModel(config)
    power_model = PowerModel(config, perf_model)
    rng = np.random.default_rng(seed)
    corpus = PreferenceMatrix(config)
    for profile in profiles:
        corpus.add_app(profile.name)
        for knob in config.knob_space():
            power = power_model.app_power_w(profile, knob)
            perf = perf_model.rate(profile, knob)
            if power_noise_std_w > 0:
                power = max(0.0, power + float(rng.normal(0.0, power_noise_std_w)))
            if perf_noise_relative_std > 0:
                perf = max(0.0, perf * (1.0 + float(rng.normal(0.0, perf_noise_relative_std))))
            corpus.observe(profile.name, knob, power_w=power, perf=perf)
    return corpus


def _best_under_budget(
    power_row: np.ndarray, perf_row: np.ndarray, budget_w: float
) -> int:
    """Index of the highest-performance config whose power fits the budget.

    Falls back to the lowest-power config when nothing fits (the chooser
    must return something runnable; the overshoot then shows in the score).
    """
    feasible = power_row <= budget_w
    if feasible.any():
        candidates = np.where(feasible, perf_row, -np.inf)
        return int(np.argmax(candidates))
    return int(np.argmin(power_row))


def calibrate_sampling_fraction(
    config: ServerConfig,
    profiles: list[WorkloadProfile],
    fractions: list[float],
    *,
    folds: int = 5,
    budget_w: float = 15.0,
    power_noise_std_w: float = 0.3,
    perf_noise_relative_std: float = 0.02,
    seed: int = 0,
    rank: int = 6,
    sampler_factory: "type[Sampler] | None" = None,
) -> list[CalibrationPoint]:
    """Run the Fig. 7 cross-validation sweep.

    Args:
        config: Server (knob space + models).
        profiles: The application corpus (the paper uses its full catalog).
        fractions: Sampling fractions to evaluate (the x-axis).
        folds: Cross-validation folds (5 in the paper).
        budget_w: Per-application power budget used by the chooser; 15 W is
            the equal split of the paper's 100 W scenario.
        power_noise_std_w / perf_noise_relative_std: Measurement noise on
            the *online samples* (the corpus uses long offline profiling and
            is treated as clean).
        seed: Controls fold assignment, noise and samplers.
        rank: Latent rank of the collaborative model.
        sampler_factory: Sampler class to instantiate per (fraction, app);
            defaults to :class:`StratifiedSampler`. Pass
            :class:`~repro.learning.sampling.RandomSampler` to reproduce the
            harsher low-fraction overshoot regime of the paper's Fig. 7
            (random samples can miss the high-power corner entirely).

    Raises:
        ConfigurationError: with fewer profiles than folds.
    """
    if len(profiles) < folds:
        raise ConfigurationError(
            f"need at least {folds} profiles for {folds}-fold CV, got {len(profiles)}"
        )
    if not fractions:
        raise ConfigurationError("need at least one fraction to evaluate")
    perf_model = PerformanceModel(config)
    power_model = PowerModel(config, perf_model)
    corpus = build_exhaustive_corpus(config, profiles)
    space = config.knob_space()
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(profiles))
    fold_of = {profiles[int(idx)].name: i % folds for i, idx in enumerate(order)}

    factory = sampler_factory if sampler_factory is not None else StratifiedSampler
    by_name = {p.name: p for p in profiles}
    points: list[CalibrationPoint] = []
    for fraction in fractions:
        power_ratios: list[float] = []
        perf_ratios: list[float] = []
        power_sq_errs: list[float] = []
        perf_sq_errs: list[float] = []
        for fold in range(folds):
            train_names = [n for n in corpus.apps if fold_of[n] != fold]
            test_names = [n for n in corpus.apps if fold_of[n] == fold]
            if not train_names or not test_names:
                continue
            train = PreferenceMatrix(config)
            for name in train_names:
                train.add_app(name)
                power_row = corpus.power_row(name)
                perf_row = corpus.perf_row(name)
                for j, knob in enumerate(space):
                    train.observe(name, knob, power_w=power_row[j], perf=perf_row[j])
            estimator = CollaborativeEstimator(rank=rank, seed=seed + fold)
            estimator.train(train)
            for name in test_names:
                profile = by_name[name]
                sampler = factory(fraction, seed=seed + sum(map(ord, name)))
                sampled = {}
                for knob in sampler.select(config):
                    power = power_model.app_power_w(profile, knob)
                    perf = perf_model.rate(profile, knob)
                    power = max(
                        0.0, power + float(rng.normal(0.0, power_noise_std_w))
                    )
                    perf = max(
                        0.0,
                        perf * (1.0 + float(rng.normal(0.0, perf_noise_relative_std))),
                    )
                    sampled[knob] = (power, perf)
                estimate = estimator.estimate(train, sampled)
                true_power = np.array(
                    [power_model.app_power_w(profile, k) for k in space]
                )
                true_perf = np.array([perf_model.rate(profile, k) for k in space])
                chosen = _best_under_budget(estimate.power_w, estimate.perf, budget_w)
                oracle = _best_under_budget(true_power, true_perf, budget_w)
                power_ratios.append(true_power[chosen] / budget_w)
                perf_ratios.append(
                    true_perf[chosen] / true_perf[oracle] if true_perf[oracle] > 0 else 0.0
                )
                power_sq_errs.append(float(np.mean((estimate.power_w - true_power) ** 2)))
                peak = float(true_perf.max())
                perf_sq_errs.append(
                    float(np.mean(((estimate.perf - true_perf) / peak) ** 2))
                )
        if not power_ratios:
            raise LearningError("cross-validation produced no test evaluations")
        points.append(
            CalibrationPoint(
                fraction=fraction,
                power_ratio=float(np.mean(power_ratios)),
                worst_power_ratio=float(np.max(power_ratios)),
                violation_fraction=float(np.mean(np.array(power_ratios) > 1.0)),
                perf_ratio=float(np.mean(perf_ratios)),
                power_rmse_w=float(np.sqrt(np.mean(power_sq_errs))),
                perf_rmse_rel=float(np.sqrt(np.mean(perf_sq_errs))),
            )
        )
    return points
