"""Collaborative filtering: ALS matrix factorization with new-row fold-in.

"To estimate power and performance of a new application, the system measures
power and performance online for a few samples of (f, n, m) and estimates the
rest by minimizing the estimation errors for the measured values using the
matrix" - Section III-A.

Implementation notes:

* **ALS on observed entries.** Rank-``k`` alternating least squares with
  ridge regularization: each user/item factor is the closed-form ridge
  solution over its observed entries only. The response surfaces are smooth
  functions of three knobs, so low rank captures them well.
* **Fold-in.** A new application never triggers refactorization on the hot
  path (allocation must settle in ~800 ms on the paper's server): its factor
  is a single ridge solve against the trained item factors restricted to the
  sampled columns, after which every column is predicted.
* **Per-plane scaling.** Power values are absolute watts, comparable across
  applications; they are factorized raw. Performance values differ by
  arbitrary per-app scale (``base_rate``), so each row is normalized by its
  largest observed value before factorization and predictions are rescaled.
  A new app's scale is taken from its largest sampled value - the stratified
  sampler always includes the uncapped corner, matching practice (the first
  thing one measures is uncapped performance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LearningError
from repro.learning.matrix import PreferenceMatrix
from repro.server.config import KnobSetting


class AlsFactorizer:
    """Rank-``k`` ALS on a partially observed matrix.

    Args:
        rank: Latent dimension ``k``.
        ridge: L2 regularization weight for both factor solves.
        iterations: Alternating sweeps.
        seed: Factor initialization seed.
    """

    def __init__(
        self,
        *,
        rank: int = 6,
        ridge: float = 0.05,
        iterations: int = 25,
        seed: int = 0,
    ) -> None:
        if rank < 1:
            raise LearningError("rank must be at least 1")
        if ridge < 0:
            raise LearningError("ridge must be non-negative")
        if iterations < 1:
            raise LearningError("need at least one ALS sweep")
        self._rank = rank
        self._ridge = ridge
        self._iterations = iterations
        self._seed = seed
        self._row_factors: np.ndarray | None = None
        self._col_factors: np.ndarray | None = None

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def is_fitted(self) -> bool:
        return self._col_factors is not None

    @property
    def col_factors(self) -> np.ndarray:
        """Item factors, shape ``(n_cols, rank)``.

        Raises:
            LearningError: before :meth:`fit`.
        """
        if self._col_factors is None:
            raise LearningError("factorizer has not been fitted")
        return self._col_factors

    def fit(self, values: np.ndarray, mask: np.ndarray) -> None:
        """Factorize ``values`` (NaN-free where ``mask`` is True).

        Args:
            values: ``(n_rows, n_cols)`` observations.
            mask: Boolean observed-cell mask of the same shape.

        Raises:
            LearningError: on empty input or rows/columns with zero
                observations (they would be unconstrained).
        """
        if values.shape != mask.shape or values.ndim != 2:
            raise LearningError("values and mask must be equal-shape 2-D arrays")
        n_rows, n_cols = values.shape
        if n_rows == 0 or n_cols == 0:
            raise LearningError("cannot factorize an empty matrix")
        if not mask.any():
            raise LearningError("cannot factorize a fully unobserved matrix")
        if (~mask.any(axis=1)).any():
            raise LearningError("every row needs at least one observation")
        rng = np.random.default_rng(self._seed)
        scale = float(np.sqrt(np.nanmean(np.where(mask, values, np.nan)) / self._rank + 1e-12))
        rows = rng.normal(0.0, 0.1, (n_rows, self._rank)) + scale
        cols = rng.normal(0.0, 0.1, (n_cols, self._rank)) + scale
        eye = self._ridge * np.eye(self._rank)
        fully_observed = bool(mask.all())
        for _ in range(self._iterations):
            if fully_observed:
                # Dense fast path: all rows share the same Gram matrix, so
                # one solve updates every factor at once.
                rows = np.linalg.solve(cols.T @ cols + eye, cols.T @ values.T).T
                cols = np.linalg.solve(rows.T @ rows + eye, rows.T @ values).T
                continue
            for i in range(n_rows):
                obs = mask[i]
                v = cols[obs]
                rows[i] = np.linalg.solve(v.T @ v + eye, v.T @ values[i, obs])
            for j in range(n_cols):
                obs = mask[:, j]
                if not obs.any():
                    continue  # unconstrained column keeps its prior factor
                u = rows[obs]
                cols[j] = np.linalg.solve(u.T @ u + eye, u.T @ values[obs, j])
        self._row_factors = rows
        self._col_factors = cols

    def predict_full(self) -> np.ndarray:
        """Reconstruction of the training matrix.

        Raises:
            LearningError: before :meth:`fit`.
        """
        if self._row_factors is None or self._col_factors is None:
            raise LearningError("factorizer has not been fitted")
        return self._row_factors @ self._col_factors.T

    def fold_in(self, observed_cols: np.ndarray, observed_values: np.ndarray) -> np.ndarray:
        """Predict a full new row from sparse observations.

        Args:
            observed_cols: Integer column indices that were measured.
            observed_values: Measured values, aligned with ``observed_cols``.

        Returns:
            Predicted values for *all* columns (measured cells are replaced
            by their measured values - the system trusts real measurements
            over estimates).

        Raises:
            LearningError: before :meth:`fit` or with zero observations.
        """
        if self._col_factors is None:
            raise LearningError("factorizer has not been fitted")
        if len(observed_cols) == 0:
            raise LearningError("fold-in requires at least one observation")
        if len(observed_cols) != len(observed_values):
            raise LearningError("columns and values must align")
        v = self._col_factors[np.asarray(observed_cols, dtype=int)]
        y = np.asarray(observed_values, dtype=float)
        eye = self._ridge * np.eye(self._rank)
        factor = np.linalg.solve(v.T @ v + eye, v.T @ y)
        prediction = self._col_factors @ factor
        prediction[np.asarray(observed_cols, dtype=int)] = y
        return prediction


@dataclass(frozen=True)
class EstimatedUtilities:
    """A new application's completed response surface.

    Attributes:
        power_w: Estimated ``P_X`` per knob-space column (watts).
        perf: Estimated work rate per column.
        sampled_columns: The columns that were actually measured.
    """

    power_w: np.ndarray
    perf: np.ndarray
    sampled_columns: tuple[int, ...]


class CollaborativeEstimator:
    """Two-plane (power + performance) collaborative estimator.

    Args:
        rank / ridge / iterations / seed: Forwarded to both factorizers.
    """

    def __init__(
        self,
        *,
        rank: int = 6,
        ridge: float = 0.05,
        iterations: int = 25,
        seed: int = 0,
    ) -> None:
        self._power_model = AlsFactorizer(
            rank=rank, ridge=ridge, iterations=iterations, seed=seed
        )
        self._perf_model = AlsFactorizer(
            rank=rank, ridge=ridge, iterations=iterations, seed=seed + 1
        )
        self._trained = False

    @property
    def is_trained(self) -> bool:
        return self._trained

    def train(self, corpus: PreferenceMatrix) -> None:
        """Factorize the corpus of previously seen applications.

        Raises:
            LearningError: on an empty corpus.
        """
        if not corpus.apps:
            raise LearningError("training corpus has no applications")
        mask = corpus.observed_mask()
        power = np.nan_to_num(corpus.power_rows(), nan=0.0)
        perf = np.nan_to_num(corpus.perf_rows(), nan=0.0)
        # Normalize each perf row by its largest observed value (see module
        # docstring); power rows are absolute watts and factorized raw.
        scales = np.where(mask, perf, 0.0).max(axis=1, keepdims=True)
        if (scales <= 0).any():
            raise LearningError("every app needs a positive observed performance")
        self._power_model.fit(power, mask)
        self._perf_model.fit(perf / scales, mask)
        self._trained = True

    def estimate(
        self,
        corpus: PreferenceMatrix,
        sampled: dict[KnobSetting, tuple[float, float]],
    ) -> EstimatedUtilities:
        """Complete a new application's surface from sparse measurements.

        Args:
            corpus: Supplies the knob-space column order (must match the
                training corpus).
            sampled: Measured ``knob -> (power_w, perf)`` pairs.

        Raises:
            LearningError: before :meth:`train` or with no samples.
        """
        if not self._trained:
            raise LearningError("estimator has not been trained")
        if not sampled:
            raise LearningError("need at least one sampled configuration")
        cols = np.array([corpus.column_of(k) for k in sampled], dtype=int)
        powers = np.array([pw for pw, _ in sampled.values()], dtype=float)
        perfs = np.array([pf for _, pf in sampled.values()], dtype=float)
        scale = float(perfs.max())
        if scale <= 0:
            raise LearningError("sampled performance must include a positive value")
        power_row = self._power_model.fold_in(cols, powers)
        perf_row = self._perf_model.fold_in(cols, perfs / scale) * scale
        return EstimatedUtilities(
            power_w=np.clip(power_row, 0.0, None),
            perf=np.clip(perf_row, 0.0, None),
            sampled_columns=tuple(int(c) for c in cols),
        )
