"""The preference matrices: app x knob-setting observations of power and perf.

"Collaborative filtering uses a matrix to capture power and performance of
previously seen applications for different settings of the power allocation
knobs. In this matrix, each row corresponds to an application, and each
column corresponds to the power allocation knob setting" - Section III-A.

:class:`PreferenceMatrix` is that store, with two planes (power in watts,
performance in work/s) and NaN marking the unobserved entries. The column
order is the canonical knob-space order of
:meth:`repro.server.config.ServerConfig.knob_space`, which is stable across
runs so matrices can be persisted and compared.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, LearningError
from repro.server.config import KnobSetting, ServerConfig


class PreferenceMatrix:
    """Partially observed app x config power and performance matrices.

    Args:
        config: Supplies the canonical knob-space columns.
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._columns: list[KnobSetting] = config.knob_space()
        self._column_index: dict[KnobSetting, int] = {
            knob: i for i, knob in enumerate(self._columns)
        }
        self._rows: list[str] = []
        self._row_index: dict[str, int] = {}
        self._power = np.empty((0, len(self._columns)))
        self._perf = np.empty((0, len(self._columns)))

    # ------------------------------------------------------------ structure

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def columns(self) -> list[KnobSetting]:
        """The knob settings, in canonical order (copies are cheap views)."""
        return list(self._columns)

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def apps(self) -> list[str]:
        """Row names in insertion order."""
        return list(self._rows)

    def __contains__(self, app: str) -> bool:
        return app in self._row_index

    def column_of(self, knob: KnobSetting) -> int:
        """Column index of a knob setting.

        Raises:
            LearningError: for settings outside the knob space.
        """
        try:
            return self._column_index[knob]
        except KeyError:
            raise LearningError(f"knob {knob} is not a column of this matrix") from None

    # ------------------------------------------------------------ mutation

    def add_app(self, app: str) -> None:
        """Add an empty (all-unobserved) row.

        Raises:
            LearningError: if the app already has a row.
        """
        if app in self._row_index:
            raise LearningError(f"application {app!r} already has a row")
        self._row_index[app] = len(self._rows)
        self._rows.append(app)
        blank = np.full((1, self.n_columns), np.nan)
        self._power = np.vstack([self._power, blank])
        self._perf = np.vstack([self._perf, blank])

    def observe(
        self, app: str, knob: KnobSetting, *, power_w: float, perf: float
    ) -> None:
        """Record one measurement (overwrites a prior one at the same cell).

        Raises:
            LearningError: for unknown apps/knobs.
            ConfigurationError: for negative observations.
        """
        if power_w < 0 or perf < 0:
            raise ConfigurationError("observations must be non-negative")
        row = self._row_of(app)
        col = self.column_of(knob)
        self._power[row, col] = power_w
        self._perf[row, col] = perf

    # ------------------------------------------------------------- queries

    def power_rows(self) -> np.ndarray:
        """Copy of the power plane, shape ``(apps, configs)``, NaN = missing."""
        return self._power.copy()

    def perf_rows(self) -> np.ndarray:
        """Copy of the performance plane."""
        return self._perf.copy()

    def observed_mask(self) -> np.ndarray:
        """Boolean mask of cells observed in *both* planes."""
        return ~(np.isnan(self._power) | np.isnan(self._perf))

    def row_observation_count(self, app: str) -> int:
        """How many configs of ``app`` have been measured."""
        row = self._row_of(app)
        return int(self.observed_mask()[row].sum())

    def density(self) -> float:
        """Fraction of observed cells over the whole matrix (0 when empty)."""
        if not self._rows:
            return 0.0
        return float(self.observed_mask().mean())

    def power_row(self, app: str) -> np.ndarray:
        """Copy of one app's power row (NaN = missing)."""
        return self._power[self._row_of(app)].copy()

    def perf_row(self, app: str) -> np.ndarray:
        """Copy of one app's performance row."""
        return self._perf[self._row_of(app)].copy()

    def _row_of(self, app: str) -> int:
        try:
            return self._row_index[app]
        except KeyError:
            raise LearningError(f"application {app!r} has no row") from None

    # ---------------------------------------------------------- persistence

    def save(self, path: str | os.PathLike) -> None:
        """Persist the matrices to a ``.npz`` file.

        On the paper's system the corpus accretes across deployments;
        persisting it means a restarted mediator keeps everything it has
        learnt. The knob-space signature is stored so a matrix recorded on
        one hardware configuration cannot silently be loaded onto another.
        """
        signature = np.array(
            [(k.freq_ghz, k.cores, k.dram_power_w) for k in self._columns]
        )
        np.savez(
            path,
            apps=np.array(self._rows, dtype=object),
            power=self._power,
            perf=self._perf,
            knob_signature=signature,
        )

    @classmethod
    def load(cls, path: str | os.PathLike, config: ServerConfig) -> "PreferenceMatrix":
        """Load a matrix persisted by :meth:`save`.

        Raises:
            LearningError: when the stored knob space does not match
                ``config`` (the matrix belongs to different hardware).
        """
        with np.load(path, allow_pickle=True) as data:
            matrix = cls(config)
            signature = np.array(
                [(k.freq_ghz, k.cores, k.dram_power_w) for k in matrix._columns]
            )
            if data["knob_signature"].shape != signature.shape or not np.allclose(
                data["knob_signature"], signature
            ):
                raise LearningError(
                    "stored knob space does not match this server configuration"
                )
            for app in data["apps"]:
                matrix.add_app(str(app))
            matrix._power = data["power"].copy()
            matrix._perf = data["perf"].copy()
        return matrix
