"""Executes an :class:`AdversarySchedule` against a simulated server.

The engine is the attacker's runtime: each tick it decides, per registered
spec, whether the attack window is open and whether this tick is a burst
tick, then idempotently programs the server's strategic-tenant hooks
(:meth:`~repro.server.server.SimulatedServer.set_parasitic_power_w`,
:meth:`~repro.server.server.SimulatedServer.set_heartbeat_inflation`). It
never touches the mediator - the defense must catch the attacks through the
same telemetry an honest mediator has.

Determinism: the only randomness is the probe attack's initial phase jitter,
drawn once per spec from its own ``np.random.default_rng(spec.seed ^ base)``
stream. Honest-tenant RNG streams (server noise, mediator calibration) are
never consulted, so an attack schedule cannot perturb an honest tenant's
trajectory except through the physics of the attack itself - the
RNG-isolation audit pins this.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.plan import AdversarySchedule, AdversarySpec
from repro.errors import AdversaryError
from repro.server.server import SimulatedServer


class AdversaryEngine:
    """Drives strategic-tenant behaviour on one server.

    Args:
        server: The substrate whose adversary hooks the engine programs.
        schedule: The initial attack schedule (may be empty; service mode
            registers specs one by one as adversarial clients arrive).
    """

    def __init__(
        self, server: SimulatedServer, schedule: AdversarySchedule | None = None
    ) -> None:
        self._server = server
        self._specs: dict[str, AdversarySpec] = {}
        self._base_seed = 0 if schedule is None else schedule.seed
        self._phase_jitter: dict[str, float] = {}
        self._window_open: dict[str, bool] = {}
        self._freeride_edge_s: dict[str, float | None] = {}
        self._prev_esd_on = False
        if schedule is not None:
            for spec in schedule.specs:
                self.register(spec)

    # ------------------------------------------------------------ lifecycle

    def register(self, spec: AdversarySpec) -> None:
        """Add one attacker. Service mode calls this at admission time.

        Re-registering an app's *identical* spec is a no-op - journal
        replay re-drives admissions and must be idempotent.

        Raises:
            AdversaryError: when the app already has a different strategy.
        """
        existing = self._specs.get(spec.app)
        if existing == spec:
            return
        if existing is not None:
            raise AdversaryError(
                f"application {spec.app!r} already has a registered adversary spec"
            )
        self._specs[spec.app] = spec
        if spec.kind == "probe":
            rng = np.random.default_rng((self._base_seed << 8) ^ spec.seed)
            self._phase_jitter[spec.app] = float(rng.uniform(0.0, spec.period_s))
        self._window_open[spec.app] = False
        if spec.kind == "freeride":
            self._freeride_edge_s[spec.app] = None

    def forget(self, app: str) -> None:
        """Drop an attacker on departure, clearing its hooks if still set."""
        if app not in self._specs:
            return
        self._clear_hooks(self._specs[app])
        del self._specs[app]
        self._phase_jitter.pop(app, None)
        self._window_open.pop(app, None)
        self._freeride_edge_s.pop(app, None)

    def specs(self) -> list[AdversarySpec]:
        """Registered specs, sorted by app name."""
        return [self._specs[app] for app in sorted(self._specs)]

    def spec_for(self, app: str) -> AdversarySpec | None:
        return self._specs.get(app)

    # ------------------------------------------------------------- stepping

    def begin_tick(self, now_s: float, *, esd_on: bool = False) -> list[tuple[str, str, str]]:
        """Program the hooks for the tick starting at ``now_s``.

        Args:
            now_s: Simulation time at the *start* of the tick.
            esd_on: Whether the coordinator is in an ESD discharge ON phase
                (the freerider's cue; read at begin-tick, so it carries the
                one-tick lag a real tenant watching the bus would have).

        Returns:
            Window transitions as ``(app, kind, "start"|"stop")`` tuples,
            for the caller to trace.
        """
        transitions: list[tuple[str, str, str]] = []
        esd_edge = esd_on and not self._prev_esd_on
        for app in sorted(self._specs):
            spec = self._specs[app]
            active = spec.active_at(now_s) and self._is_admitted(app)
            was_open = self._window_open[app]
            if active != was_open:
                self._window_open[app] = active
                transitions.append((app, spec.kind, "start" if active else "stop"))
                if not active:
                    self._clear_hooks(spec)
                    continue
            if not active:
                continue
            if spec.kind == "inflate":
                self._server.set_heartbeat_inflation(app, 1.0 + spec.magnitude)
            elif spec.kind in ("probe", "spike"):
                burst = self._in_periodic_burst(spec, now_s)
                self._server.set_parasitic_power_w(
                    app, spec.magnitude if burst else 0.0
                )
            else:  # freeride
                if esd_edge:
                    self._freeride_edge_s[app] = now_s
                edge = self._freeride_edge_s[app]
                burst = (
                    esd_on
                    and edge is not None
                    and now_s - edge < spec.burst_s - 1e-9
                )
                self._server.set_parasitic_power_w(
                    app, spec.magnitude if burst else 0.0
                )
        self._prev_esd_on = esd_on
        return transitions

    def distort_calibration(
        self, app: str, now_s: float, power_w: float, perf: float, peak_power_w: float
    ) -> float:
        """An inflating tenant's lie to the calibration pipeline.

        The distortion is *shape-changing*, not a uniform scale: high-power
        knobs claim proportionally more extra performance, so the attacker
        looks like a workload that converts marginal watts into work
        unusually well and wins budget from the knapsack. (A uniform lie
        would cancel in the normalized ``perf / perf_nocap`` objective.)
        """
        spec = self._specs.get(app)
        if spec is None or spec.kind != "inflate" or not spec.active_at(now_s):
            return perf
        if peak_power_w <= 0.0:
            return perf
        shape = min(1.0, max(0.0, power_w / peak_power_w))
        return perf * (1.0 + spec.magnitude * shape)

    def active_attackers(self, now_s: float) -> list[str]:
        """Apps whose attack window covers ``now_s``, sorted."""
        return sorted(
            app for app, spec in self._specs.items() if spec.active_at(now_s)
        )

    # -------------------------------------------------------------- helpers

    def _is_admitted(self, app: str) -> bool:
        return app in self._server.applications()

    def _in_periodic_burst(self, spec: AdversarySpec, now_s: float) -> bool:
        period = spec.period_s
        if spec.kind == "spike":
            period = self._server.config.duty_cycle_period_s
        offset = self._phase_jitter.get(spec.app, 0.0)
        phase = (now_s - spec.start_s + offset) % period
        # The modulo can land at period - epsilon when it means zero.
        return phase < spec.burst_s - 1e-9 or phase > period - 1e-9

    def _clear_hooks(self, spec: AdversarySpec) -> None:
        if spec.app not in self._server.applications():
            return
        if spec.kind == "inflate":
            self._server.set_heartbeat_inflation(spec.app, 1.0)
        else:
            self._server.set_parasitic_power_w(spec.app, 0.0)

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        return {
            "specs": {app: spec.to_dict() for app, spec in self._specs.items()},
            "base_seed": self._base_seed,
            "phase_jitter": dict(self._phase_jitter),
            "window_open": dict(self._window_open),
            "freeride_edge_s": dict(self._freeride_edge_s),
            "prev_esd_on": self._prev_esd_on,
        }

    def load_state_dict(self, state: dict) -> None:
        self._specs = {
            app: AdversarySpec.from_dict(data)
            for app, data in state["specs"].items()
        }
        self._base_seed = int(state["base_seed"])
        self._phase_jitter = {
            app: float(v) for app, v in state["phase_jitter"].items()
        }
        self._window_open = {
            app: bool(v) for app, v in state["window_open"].items()
        }
        self._freeride_edge_s = {
            app: None if v is None else float(v)
            for app, v in state["freeride_edge_s"].items()
        }
        self._prev_esd_on = bool(state["prev_esd_on"])
