"""Adversary schedules: declarative, seeded, JSON-serializable attack plans.

An :class:`AdversarySchedule` is the experiment-side description of every
strategic behaviour one run's tenants exhibit. Like a
:class:`~repro.faults.plan.FaultPlan` it is deliberately *dumb data*: the
schedule says *who* misbehaves, *how*, *when* and *how hard*; the
:class:`~repro.adversary.engine.AdversaryEngine` owns the mechanics of
misbehaving and the mediator's :class:`~repro.core.trust.TrustScorer` owns
catching it. Schedules are frozen and serializable so an adversarial run is
exactly reproducible from a JSON file plus a seed.

Attack classes (``AdversarySpec.kind``):

========= ==============================================================
kind       effect while the window is active
========= ==============================================================
inflate    the app reports ``(1 + magnitude)`` times its true heartbeat
           progress, and its calibration samples claim proportionally
           more performance at high-power knobs - the classic "lie to
           the utility-aware allocator" play
probe      Shadow-Hunting-style contention probes: a parasitic thread
           drawing ``magnitude`` extra watts for ``burst_s`` out of
           every ``period_s``, crowding co-tenants through the breach
           response it provokes
spike      duty-cycle-timed coordinated power spikes: like ``probe``
           but with the period locked to the server's duty-cycle period,
           so the bursts land exactly when temporal coordination is most
           sensitive
freeride   free-riding under ESD discharge: the parasitic draw fires on
           the first ``burst_s`` of every battery-covered ON phase, when
           the wall meter is blind to who is spending the bank
========= ==============================================================

``magnitude`` is a progress-inflation *fraction* for ``inflate`` and
parasitic *watts* for the three power attacks. Every spec carries its own
``seed``: probe-burst phase jitter draws from a per-spec
``np.random.default_rng`` stream, so attack schedules never touch the
simulation's own RNG streams (the determinism audit covers this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import AdversaryError
from repro.schema import Validator

#: Validator used by every schedule loader: malformed input fails with a
#: single :class:`AdversaryError` naming the offending JSON path.
_VALID = Validator(AdversaryError)

#: The strategic-workload classes, mirroring the table above.
ADVERSARY_KINDS = ("inflate", "probe", "spike", "freeride")

#: Attack kinds that inject parasitic power (vs lying about progress).
POWER_KINDS = frozenset({"probe", "spike", "freeride"})


@dataclass(frozen=True)
class AdversarySpec:
    """One application's scheduled strategic behaviour.

    Attributes:
        app: The adversarial application's name.
        kind: Attack class (see :data:`ADVERSARY_KINDS`).
        start_s: Simulation time the attack window opens.
        duration_s: Window length; the app behaves honestly outside it.
        magnitude: Inflation fraction (``inflate``) or parasitic watts
            (``probe`` / ``spike`` / ``freeride``).
        period_s: Burst repetition period for ``probe`` (``spike`` locks to
            the server's duty-cycle period instead; ignored otherwise).
        burst_s: Burst length within each period (power attacks only).
        seed: Per-spec RNG stream seed (probe phase jitter).
    """

    app: str
    kind: str
    start_s: float
    duration_s: float
    magnitude: float
    period_s: float = 1.5
    burst_s: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.app:
            raise AdversaryError("adversary spec needs a non-empty app name")
        if self.kind not in ADVERSARY_KINDS:
            raise AdversaryError(
                f"unknown adversary kind {self.kind!r}; have {list(ADVERSARY_KINDS)}"
            )
        if self.start_s < 0:
            raise AdversaryError(
                f"attack start must be non-negative, got {self.start_s}"
            )
        if self.duration_s <= 0:
            raise AdversaryError(
                f"attack duration must be positive, got {self.duration_s}"
            )
        if self.magnitude <= 0:
            raise AdversaryError(
                f"attack magnitude must be positive, got {self.magnitude}"
            )
        if self.kind in POWER_KINDS:
            if self.magnitude > 50.0:
                raise AdversaryError(
                    f"parasitic draw {self.magnitude} W is beyond any single "
                    "tenant's plausible reach (limit 50 W)"
                )
            if self.period_s <= 0:
                raise AdversaryError(
                    f"burst period must be positive, got {self.period_s}"
                )
            if self.burst_s <= 0:
                raise AdversaryError(
                    f"burst length must be positive, got {self.burst_s}"
                )
            if self.kind == "probe" and self.burst_s > self.period_s:
                raise AdversaryError(
                    f"probe burst {self.burst_s} s exceeds its period "
                    f"{self.period_s} s"
                )
        elif self.magnitude > 10.0:
            raise AdversaryError(
                f"inflation fraction {self.magnitude} is implausible (limit 10)"
            )

    @property
    def end_s(self) -> float:
        """Exclusive end of the attack window."""
        return self.start_s + self.duration_s

    def active_at(self, now_s: float) -> bool:
        """Whether the attack window covers simulation time ``now_s``."""
        return self.start_s <= now_s < self.end_s

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "magnitude": self.magnitude,
            "period_s": self.period_s,
            "burst_s": self.burst_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict, *, where: str = "adversary spec") -> "AdversarySpec":
        """Build a spec from a plain dict, validating field by field.

        Args:
            data: The raw mapping, e.g. one entry of a schedule's
                ``adversaries`` array.
            where: JSON path prefix used in error messages, so a bad field in
                the third spec reports as ``adversaries[2].magnitude``.
        """
        obj = _VALID.as_dict(data, where)
        try:
            return cls(
                app=_VALID.as_str(_VALID.require(obj, "app", where), f"{where}.app"),
                kind=_VALID.choice(
                    _VALID.require(obj, "kind", where), f"{where}.kind", ADVERSARY_KINDS
                ),
                start_s=_VALID.as_number(
                    _VALID.require(obj, "start_s", where), f"{where}.start_s"
                ),
                duration_s=_VALID.as_number(
                    _VALID.require(obj, "duration_s", where), f"{where}.duration_s"
                ),
                magnitude=_VALID.as_number(
                    _VALID.require(obj, "magnitude", where), f"{where}.magnitude"
                ),
                period_s=_VALID.as_number(obj.get("period_s", 1.5), f"{where}.period_s"),
                burst_s=_VALID.as_number(obj.get("burst_s", 0.3), f"{where}.burst_s"),
                seed=_VALID.as_int(obj.get("seed", 0), f"{where}.seed"),
            )
        except AdversaryError as exc:
            # Semantic checks in __post_init__ do not know the JSON path; add it.
            message = str(exc)
            if not message.startswith(where):
                raise AdversaryError(f"{where}: {message}") from None
            raise


@dataclass(frozen=True)
class AdversarySchedule:
    """A complete, ordered attack schedule for one run.

    Attributes:
        specs: The attacks, kept sorted by ``(start_s, app, kind)`` so two
            schedules with the same content execute identically. At most one
            spec per application: a tenant has one strategy.
        seed: Base seed mixed into every spec's jitter stream.
    """

    specs: tuple[AdversarySpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.specs, key=lambda s: (s.start_s, s.app, s.kind))
        )
        seen: set[str] = set()
        for spec in ordered:
            if spec.app in seen:
                raise AdversaryError(
                    f"application {spec.app!r} appears in more than one "
                    "adversary spec; a tenant has one strategy"
                )
            seen.add(spec.app)
        object.__setattr__(self, "specs", ordered)

    def __len__(self) -> int:
        return len(self.specs)

    def apps(self) -> list[str]:
        """The adversarial application names, sorted."""
        return sorted(spec.app for spec in self.specs)

    def kinds(self) -> set[str]:
        """The attack classes this schedule exercises."""
        return {spec.kind for spec in self.specs}

    def spec_for(self, app: str) -> AdversarySpec | None:
        """The spec targeting ``app``, or ``None``."""
        for spec in self.specs:
            if spec.app == app:
                return spec
        return None

    # -------------------------------------------------------- serialization

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "adversaries": [s.to_dict() for s in self.specs]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "AdversarySchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AdversaryError(
                f"adversary schedule is not valid JSON: {exc}"
            ) from None
        obj = _VALID.as_dict(data, "adversary schedule")
        items = _VALID.as_list(
            _VALID.require(obj, "adversaries", "adversary schedule"), "adversaries"
        )
        specs = tuple(
            AdversarySpec.from_dict(item, where=f"adversaries[{i}]")
            for i, item in enumerate(items)
        )
        return cls(specs=specs, seed=_VALID.as_int(obj.get("seed", 0), "seed"))

    @classmethod
    def load(cls, path: str) -> "AdversarySchedule":
        """Read a schedule from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise AdversaryError(
                f"cannot read adversary schedule {path!r}: {exc}"
            ) from None


def default_adversary_schedule(
    app: str, kind: str = "inflate", *, start_s: float = 2.0, seed: int = 0
) -> AdversarySchedule:
    """A single-attacker schedule with the acceptance-suite magnitudes.

    The magnitudes are chosen to sit comfortably past the TrustScorer's
    margins (so detection is a question of *when*, not *whether*) while
    staying inside what one tenant's core group could physically pull.
    """
    if kind == "inflate":
        spec = AdversarySpec(
            app=app, kind="inflate", start_s=start_s, duration_s=20.0,
            magnitude=0.6, seed=seed,
        )
    elif kind == "probe":
        spec = AdversarySpec(
            app=app, kind="probe", start_s=start_s, duration_s=20.0,
            magnitude=6.0, period_s=1.5, burst_s=0.3, seed=seed,
        )
    elif kind == "spike":
        spec = AdversarySpec(
            app=app, kind="spike", start_s=start_s, duration_s=20.0,
            magnitude=6.0, burst_s=0.3, seed=seed,
        )
    elif kind == "freeride":
        spec = AdversarySpec(
            app=app, kind="freeride", start_s=start_s, duration_s=20.0,
            magnitude=4.0, burst_s=0.1, seed=seed,
        )
    else:
        raise AdversaryError(
            f"unknown adversary kind {kind!r}; have {list(ADVERSARY_KINDS)}"
        )
    return AdversarySchedule(specs=(spec,), seed=seed)
