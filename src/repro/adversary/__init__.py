"""Strategic (adversarial) tenant workloads and their scheduling.

This package holds the *attack side* of the byzantine arc: declarative
:class:`AdversarySchedule` plans and the :class:`AdversaryEngine` that
executes them against a :class:`~repro.server.server.SimulatedServer`.
The *defense side* lives with the mediator in :mod:`repro.core.trust`.
"""

from repro.adversary.plan import (
    ADVERSARY_KINDS,
    POWER_KINDS,
    AdversarySchedule,
    AdversarySpec,
    default_adversary_schedule,
)
from repro.adversary.engine import AdversaryEngine

__all__ = [
    "ADVERSARY_KINDS",
    "POWER_KINDS",
    "AdversarySchedule",
    "AdversarySpec",
    "AdversaryEngine",
    "default_adversary_schedule",
]
