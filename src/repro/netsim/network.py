"""A seeded message-passing layer with latency, loss, duplication, and cuts.

The cluster control plane exchanges messages between one controller and its
node agents over this network. The network is hub-and-spoke - every message
has the controller on one end - and deliberately hostile:

* **latency**: a message sent at step ``t`` arrives no earlier than
  ``t + 1 + latency_steps`` (one step in flight is the floor: the control
  plane can never act on same-step information, which is exactly the oracle
  assumption this subsystem exists to remove);
* **jitter**: a per-message uniform draw from ``[0, jitter_steps]`` added to
  the latency, which also *reorders* messages (a later send with a smaller
  draw overtakes an earlier one);
* **loss**: each message copy is dropped independently with probability
  ``loss``;
* **duplication**: with probability ``duplicate`` a second copy is enqueued
  with its own jitter draw (protocols above must be idempotent);
* **partitions**: during a :class:`PartitionWindow` the named nodes are cut
  off from the controller in both directions; messages crossing the cut at
  send *or* delivery time are dropped (a message cannot outrun a partition
  that closes around it).

Everything stochastic comes from one ``numpy`` generator seeded from
``NetConfig.seed`` and consumed in send order, so a (config, message
sequence) pair replays bit-identically - the same determinism contract as
the fault injector and the chaos kill schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import NetworkError

__all__ = ["CONTROLLER", "NetConfig", "NetStats", "PartitionWindow", "SimNetwork"]

#: Endpoint id of the cluster controller (nodes are ``0..n-1``).
CONTROLLER = -1


@dataclass(frozen=True)
class PartitionWindow:
    """One interval during which a set of nodes cannot reach the controller.

    Steps are half-open (``start_step <= t < end_step``), matching
    :class:`~repro.cluster.cluster.NodeOutage`. A partitioned node is alive -
    it keeps enforcing its caps and expiring its leases - it just cannot
    hear from or be heard by the controller.

    Attributes:
        start_step: First step of the cut.
        end_step: First step after the heal.
        nodes: The node ids on the far side of the cut.
    """

    start_step: int
    end_step: int
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.start_step < 0:
            raise NetworkError("partition start_step must be non-negative")
        if self.end_step <= self.start_step:
            raise NetworkError("partition end_step must exceed start_step")
        if not self.nodes:
            raise NetworkError("partition needs at least one node")
        if any(n < 0 for n in self.nodes):
            raise NetworkError("partition node ids must be non-negative")
        object.__setattr__(self, "nodes", tuple(sorted(set(self.nodes))))

    def cuts(self, step: int, node: int) -> bool:
        """Whether ``node`` is unreachable at ``step`` under this window."""
        return self.start_step <= step < self.end_step and node in self.nodes


@dataclass(frozen=True)
class NetConfig:
    """Tunables of the simulated network.

    Attributes:
        latency_steps: Deterministic delivery delay on top of the one-step
            in-flight floor.
        jitter_steps: Inclusive upper bound on the per-message uniform extra
            delay (also the reordering source).
        loss: Per-message-copy drop probability.
        duplicate: Probability a message is enqueued twice.
        partitions: Scheduled controller<->node cuts.
        lossy_until_step: When set, ``loss``/``duplicate`` apply only to
            messages sent before this step - the network is clean afterwards.
            Chaos schedules use this to guarantee a convergent drain phase.
        seed: Seed for every stochastic decision above.
    """

    latency_steps: int = 0
    jitter_steps: int = 0
    loss: float = 0.0
    duplicate: float = 0.0
    partitions: tuple[PartitionWindow, ...] = ()
    lossy_until_step: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency_steps < 0:
            raise NetworkError("latency_steps must be non-negative")
        if self.jitter_steps < 0:
            raise NetworkError("jitter_steps must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise NetworkError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise NetworkError(
                f"duplicate must be in [0, 1], got {self.duplicate}"
            )
        if self.lossy_until_step is not None and self.lossy_until_step < 0:
            raise NetworkError("lossy_until_step must be non-negative")
        object.__setattr__(
            self,
            "partitions",
            tuple(
                sorted(
                    self.partitions,
                    key=lambda w: (w.start_step, w.end_step, w.nodes),
                )
            ),
        )

    def cut(self, step: int, node: int) -> bool:
        """Whether ``node`` is partitioned from the controller at ``step``."""
        return any(w.cuts(step, node) for w in self.partitions)


@dataclass
class NetStats:
    """Message accounting for one network's lifetime."""

    sent: int = 0
    delivered: int = 0
    duplicated: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "duplicated": self.duplicated,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
        }


@dataclass(frozen=True)
class _InFlight:
    deliver_step: int
    uid: int  # send-order tiebreak: equal-step deliveries keep send order
    src: int
    payload: Any = field(compare=False)


class SimNetwork:
    """The message fabric between one controller and ``n_nodes`` agents.

    Endpoints call :meth:`send` during their step and :meth:`deliver` at the
    top of the next; the network owns every fate in between.
    """

    def __init__(self, config: NetConfig, n_nodes: int) -> None:
        if n_nodes < 1:
            raise NetworkError("network needs at least one node")
        for window in config.partitions:
            if any(n >= n_nodes for n in window.nodes):
                raise NetworkError(
                    f"partition names node {max(window.nodes)} "
                    f"but the fleet has {n_nodes} nodes"
                )
        self._config = config
        self._n_nodes = n_nodes
        self._rng = np.random.default_rng(config.seed)
        self._queues: dict[int, list[_InFlight]] = {}
        self._uid = 0
        self.stats = NetStats()

    @property
    def config(self) -> NetConfig:
        return self._config

    def _endpoint_node(self, src: int, dst: int) -> int:
        """The non-controller endpoint of a message (partitions cut nodes)."""
        return dst if src == CONTROLLER else src

    def _check_endpoint(self, endpoint: int) -> None:
        if endpoint != CONTROLLER and not 0 <= endpoint < self._n_nodes:
            raise NetworkError(
                f"unknown endpoint {endpoint} (controller is {CONTROLLER}, "
                f"nodes are 0..{self._n_nodes - 1})"
            )

    def _lossy_at(self, step: int) -> bool:
        until = self._config.lossy_until_step
        return until is None or step < until

    def send(self, src: int, dst: int, payload: Any, step: int) -> None:
        """Submit one message at ``step``; the network decides its fate.

        The loss/duplication draws happen for every submitted message, in
        send order, whether or not a partition already doomed it - so adding
        a partition window never shifts the RNG stream of unrelated
        messages.
        """
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            raise NetworkError(f"endpoint {src} cannot message itself")
        if src != CONTROLLER and dst != CONTROLLER:
            raise NetworkError("node-to-node messages are not part of the fabric")
        self.stats.sent += 1
        copies = 1
        if self._lossy_at(step):
            if self._config.loss > 0 and self._rng.random() < self._config.loss:
                copies = 0
            if (
                self._config.duplicate > 0
                and self._rng.random() < self._config.duplicate
            ):
                copies += 1
        if copies == 0:
            self.stats.dropped_loss += 1
            return
        if copies > 1:
            self.stats.duplicated += copies - 1
        node = self._endpoint_node(src, dst)
        cut_at_send = self._config.cut(step, node)
        for _ in range(copies):
            delay = 1 + self._config.latency_steps
            if self._config.jitter_steps > 0:
                delay += int(self._rng.integers(0, self._config.jitter_steps + 1))
            if cut_at_send:
                self.stats.dropped_partition += 1
                continue
            self._queues.setdefault(dst, []).append(
                _InFlight(
                    deliver_step=step + delay,
                    uid=self._uid,
                    src=src,
                    payload=payload,
                )
            )
            self._uid += 1

    def deliver(self, dst: int, step: int) -> list[tuple[int, Any]]:
        """Messages due at ``dst`` by ``step``, in (deliver_step, send) order.

        A message whose destination-side node is partitioned at delivery
        time is dropped, not delayed: the cut closed around it.
        """
        self._check_endpoint(dst)
        queue = self._queues.get(dst)
        if not queue:
            return []
        due = [m for m in queue if m.deliver_step <= step]
        if not due:
            return []
        self._queues[dst] = [m for m in queue if m.deliver_step > step]
        due.sort(key=lambda m: (m.deliver_step, m.uid))
        out: list[tuple[int, Any]] = []
        for message in due:
            node = self._endpoint_node(message.src, dst)
            if self._config.cut(step, node):
                self.stats.dropped_partition += 1
                continue
            self.stats.delivered += 1
            out.append((message.src, message.payload))
        return out

    def in_flight(self) -> int:
        """Messages queued but not yet delivered or dropped."""
        return sum(len(q) for q in self._queues.values())
