"""Deterministic, seeded network simulation for the cluster control plane."""

from repro.netsim.network import (
    CONTROLLER,
    NetConfig,
    NetStats,
    PartitionWindow,
    SimNetwork,
)

__all__ = [
    "CONTROLLER",
    "NetConfig",
    "NetStats",
    "PartitionWindow",
    "SimNetwork",
]
