"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

* ``mix``       - one co-location under one policy and cap;
* ``compare``   - several policies over several mixes (Fig. 8/10 style);
* ``utility``   - an application's utility curve and resource preferences;
* ``calibrate`` - the Fig. 7 sampling-fraction sweep;
* ``dynamic``   - a Poisson arrival stream against one server;
* ``serve``     - long-running service mode (open-loop streaming ingest);
* ``cluster``   - the Fig. 12 peak-shaving comparison;
* ``hierarchy`` - datacenter -> PDU -> rack budget-tree mediation;
* ``place``     - the power-aware job-placement extension;
* ``zones``     - the hardware powercap-zone extension;
* ``trace``     - inspect a recorded trace (``trace summarize RUN.jsonl``).

Examples::

    python -m repro mix --mix 10 --cap 100
    python -m repro mix --mix 10 --cap 80 --faults default
    python -m repro mix --mix 10 --cap 80 --trace-out run.jsonl --metrics-out run-metrics.json
    python -m repro trace summarize run.jsonl
    python -m repro compare --cap 80 --mixes 1,10,14 --policies util-unaware,app+res-aware
    python -m repro utility --app stream
    python -m repro serve --ticks 2000 --rate 0.5 --burst 60:90:30 --cap-levels 90,110
    python -m repro serve --ticks 2000 --kills 2 --churn 6
    python -m repro cluster --fast
    python -m repro cluster --fast --loss 0.2 --partition 3:8:1+2 --outage 0:6:10
    python -m repro cluster --chaos 5
    python -m repro hierarchy --fanouts 3,4 --loss 0.2 --outage 0:20:60
    python -m repro hierarchy --fanouts 2,3,4 --chaos 5
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.analysis.metrics import summarize_recovery, summarize_resilience
from repro.analysis.reporting import banner, format_series, format_table
from repro.core.policies import POLICY_NAMES
from repro.core.simulation import (
    run_dynamic_experiment,
    run_mix_experiment,
    run_policy_comparison,
    summarize_mix_run,
)
from repro.core.utility import CandidateSet, app_utility_curve, resource_marginal_utilities
from repro.engine import ENGINE_KINDS
from repro.adversary.plan import ADVERSARY_KINDS
from repro.errors import (
    AdversaryError,
    ChaosError,
    ConfigurationError,
    FaultError,
    NetworkError,
    ObservabilityError,
    PersistenceError,
    ServiceError,
)
from repro.faults import FaultPlan, default_fault_plan
from repro.netsim import NetConfig, PartitionWindow
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import (
    ADVERSARY_KINDS as ADVERSARY_TRACE_KINDS,
    CONTROL_PLANE_KINDS,
    HIERARCHY_KINDS,
    NULL_TRACE_BUS,
    TraceBus,
    read_trace,
    summarize_trace,
    verify_trace,
    write_trace,
)
from repro.cluster.cluster import (
    ClusterSimulator,
    NodeOutage,
    outages_from_fault_plan,
    validate_outages,
)
from repro.learning.crossval import calibrate_sampling_fraction
from repro.server.config import ServerConfig
from repro.service import BACKPRESSURE_POLICIES
from repro.workloads.catalog import CATALOG, application_names, get_application
from repro.workloads.generator import ArrivalEvent, ArrivalSchedule
from repro.workloads.mixes import all_mixes, get_mix
from repro.workloads.traces import ClusterPowerTrace


def _parse_mixes(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def _parse_policies(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _fail(exc: Exception) -> int:
    """The CLI's one-line failure contract: ``error: <reason>`` on stderr,
    exit status 2, never a traceback. Every subcommand shares this path."""
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _load_fault_plan(arg: str | None) -> FaultPlan | None:
    """Resolve the ``--faults`` argument: a JSON plan path, or the literal
    ``default`` for the built-in demonstration plan.

    A bad plan raises :class:`FaultError`, which :func:`main` turns into
    the one-line exit-2 contract via :func:`_fail`."""
    if arg is None:
        return None
    if arg == "default":
        return default_fault_plan()
    return FaultPlan.load(arg)


def _parse_partition(spec: str) -> PartitionWindow:
    """Parse a ``START:END:N1+N2`` partition window ([start, end) steps)."""
    try:
        start_s, end_s, nodes_s = spec.split(":")
        start, end = int(start_s), int(end_s)
        nodes = tuple(int(n) for n in nodes_s.split("+") if n)
    except ValueError:
        raise NetworkError(
            f"--partition expects START:END:N1+N2..., got {spec!r}"
        ) from None
    return PartitionWindow(start_step=start, end_step=end, nodes=nodes)


def _parse_outage(spec: str) -> NodeOutage:
    """Parse a ``SERVER:START:END`` outage window ([start, end) steps)."""
    try:
        server_s, start_s, end_s = spec.split(":")
        server, start, end = int(server_s), int(start_s), int(end_s)
    except ValueError:
        raise NetworkError(
            f"--outage expects SERVER:START:END, got {spec!r}"
        ) from None
    try:
        return NodeOutage(server=server, start_step=start, end_step=end)
    except ConfigurationError as exc:
        raise NetworkError(f"--outage {spec!r}: {exc}") from None


def _print_resilience(fault_stats, total_ticks: int) -> None:
    summary = summarize_resilience(fault_stats, total_ticks=total_ticks)
    mttr = "-" if summary.mttr_s is None else f"{summary.mttr_s:.2f} s"
    print(
        f"faults {summary.fault_count} ({summary.recovered_count} recovered, "
        f"MTTR {mttr}); breach ticks {summary.breach_ticks}; "
        f"emergency throttles {summary.emergency_throttles}; "
        f"retries {summary.actuation_retries} "
        f"({summary.actuation_escalations} escalated); "
        f"degraded telemetry {summary.degraded_fraction:.0%} of run; "
        f"crashes {summary.crashes}"
    )


def _print_recovery(stats, *, dt_s: float = 0.1) -> None:
    summary = summarize_recovery(stats, dt_s=dt_s)
    print(
        f"recovery: {summary.restarts} restarts "
        f"({summary.hangs_detected} hangs); "
        f"downtime {summary.downtime_ticks} ticks ({summary.downtime_s:.1f} s); "
        f"journal replayed {summary.journal_records_replayed} records; "
        f"checkpoints {summary.checkpoints_written}; "
        f"relearn avoided {summary.cold_relearns_avoided} apps / "
        f"{summary.samples_restored} samples "
        f"(~{summary.relearn_cost_avoided_s:.1f} s saved)"
    )


def _write_observability(args: argparse.Namespace, bus: TraceBus | None, metrics: dict | None) -> None:
    """Honour ``--trace-out`` / ``--metrics-out`` after a run completes."""
    if getattr(args, "trace_out", None) and bus is not None:
        digest = write_trace(args.trace_out, bus)
        print(f"trace: {len(bus.events)} events -> {args.trace_out} (sha256 {digest})")
    if getattr(args, "metrics_out", None) and metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics -> {args.metrics_out}")


def cmd_mix(args: argparse.Namespace) -> int:
    mix = get_mix(args.mix)
    faults = _load_fault_plan(args.faults)
    recovery_stats = None
    bus = TraceBus() if args.trace_out else None
    if args.resume is not None:
        from repro.persistence import read_checkpoint, restore_mediator

        doc = read_checkpoint(args.resume)
        mediator = restore_mediator(doc)
        if bus is not None:
            # The trace covers the resumed stretch only; events before the
            # checkpoint belong to the run that wrote it.
            mediator.attach_trace_bus(bus)
        total_s = args.warmup + args.duration
        remaining_s = total_s - mediator.server.now_s
        print(
            f"resumed from {args.resume} at tick {doc['created_tick']} "
            f"(t={doc['sim_time_s']:.1f} s); {max(0.0, remaining_s):.1f} s to go"
        )
        if remaining_s > 0:
            mediator.run_for(remaining_s)
        result = summarize_mix_run(
            mediator, list(mix.profiles()), warmup_s=args.warmup, mix_id=args.mix
        )
    elif args.checkpoint_dir is not None:
        from repro.chaos import mix_recipe
        from repro.persistence import Supervisor

        recipe, script = mix_recipe(
            list(mix.profiles()),
            args.policy,
            args.cap,
            config=ServerConfig(),
            duration_s=args.duration,
            warmup_s=args.warmup,
            use_oracle_estimates=args.oracle,
            dt_s=0.1,
            seed=args.seed,
            faults=faults,
            resilience=None,
            engine=args.engine,
        )
        supervisor = Supervisor(
            recipe,
            script,
            args.checkpoint_dir,
            checkpoint_every_ticks=args.checkpoint_every,
            trace_bus=bus,
        )
        mediator = supervisor.run()
        recovery_stats = supervisor.stats
        result = summarize_mix_run(
            mediator, list(mix.profiles()), warmup_s=args.warmup, mix_id=args.mix
        )
    else:
        result = run_mix_experiment(
            list(mix.profiles()),
            args.policy,
            args.cap,
            mix_id=args.mix,
            duration_s=args.duration,
            warmup_s=args.warmup,
            use_oracle_estimates=args.oracle,
            seed=args.seed,
            faults=faults,
            trace_bus=bus,
            engine=args.engine,
        )
    print(banner(f"{mix} @ {args.cap:.0f} W under {args.policy}"))
    rows = [
        [name, result.normalized_throughput[name], result.power_share[name]]
        for name in sorted(result.normalized_throughput)
    ]
    print(format_table(["app", "Perf/Perf_nocap", "power share"], rows))
    print(
        f"server throughput {result.server_throughput:.3f}; "
        f"mean wall power {result.mean_wall_power_w:.1f} W"
    )
    if faults is not None and result.fault_stats is not None:
        _print_resilience(
            result.fault_stats, total_ticks=int(round(args.duration / 0.1))
        )
    if recovery_stats is not None:
        _print_recovery(recovery_stats)
    _write_observability(args, bus, result.metrics)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.chaos import run_chaos_soak

    mix = get_mix(args.mix)
    faults = _load_fault_plan(args.faults)
    seeds = list(range(args.runs))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        workdir = args.workdir if args.workdir is not None else scratch
        soak = run_chaos_soak(
            list(mix.profiles()),
            args.policy,
            args.cap,
            workdir=workdir,
            seeds=seeds,
            kills_per_run=args.kills,
            mix_id=args.mix,
            duration_s=args.duration,
            warmup_s=args.warmup,
            use_oracle_estimates=args.oracle,
            seed=args.seed,
            faults=faults,
            checkpoint_every_ticks=args.checkpoint_every,
            safe_hold_ticks=args.safe_hold,
            tear_journal_bytes_on_crash=args.tear_bytes,
            utility_tolerance=args.tolerance,
            trace=args.trace,
        )
    print(banner(f"chaos soak: {mix} @ {args.cap:.0f} W under {args.policy}"))
    rows = [
        [
            seed,
            ",".join(str(t) for t in run.kill_ticks) or "-",
            run.recovery.restarts,
            run.recovery.downtime_ticks,
            f"{run.utility_gap:.2%}",
            {True: "yes", False: "NO", None: "n/a"}[run.timeline_identical],
            "n/a"
            if run.trace_hash is None
            else ("yes" if run.trace_hash == run.baseline_trace_hash else "NO"),
        ]
        for seed, run in zip(seeds, soak.runs)
    ]
    print(
        format_table(
            [
                "seed",
                "kill ticks",
                "restarts",
                "downtime",
                "util gap",
                "bit-identical",
                "trace-stitched",
            ],
            rows,
        )
    )
    print(
        f"{len(soak.runs)} runs survived: {soak.total_restarts} restarts, "
        f"{soak.total_downtime_ticks} downtime ticks, "
        f"max utility gap {soak.max_utility_gap:.2%} "
        f"(tolerance {args.tolerance:.0%})"
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(soak.metrics(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_adversary(args: argparse.Namespace) -> int:
    from repro.chaos import run_adversary_mix, run_adversary_soak

    kinds = ADVERSARY_KINDS if args.kind == "all" else (args.kind,)
    compare = not args.no_undefended
    if args.soak > 1:
        soak = run_adversary_soak(
            kinds=kinds,
            seeds=list(range(args.soak)),
            mix_id=args.mix,
            compare_undefended=compare,
        )
    else:
        from repro.chaos import AdversarySoakResult

        soak = AdversarySoakResult(
            runs=tuple(
                run_adversary_mix(
                    kind, mix_id=args.mix, seed=args.seed, compare_undefended=compare
                )
                for kind in kinds
            )
        )
    mix = get_mix(args.mix)
    seeds_note = f"seeds 0..{args.soak - 1}" if args.soak > 1 else f"seed {args.seed}"
    print(banner(f"adversary defense: {mix}, {seeds_note}"))
    rows = []
    for run in soak.runs:
        scenario = run.scenario
        delta = "n/a"
        if run.undefended is not None:
            delta = f"{min(run.defended.normalized_throughput[a] - run.undefended.normalized_throughput[a] for a in run.honest_retention):+.4f}"
        rows.append(
            [
                scenario.kind,
                scenario.policy,
                f"{scenario.p_cap_w:.0f}",
                ",".join(run.attackers),
                f"{run.worst_detection_latency_ticks} <= {scenario.detection_bound_ticks}",
                f"{run.worst_retention:.3f} >= {scenario.retention_floor}",
                delta,
            ]
        )
    print(
        format_table(
            ["kind", "policy", "cap W", "attacker", "detect ticks", "retention", "defense delta"],
            rows,
        )
    )
    print(
        f"{len(soak.runs)} comparisons survived: every attacker quarantined "
        f"within bound, false-positive rate {soak.false_positive_rate:.0%}, "
        f"worst honest retention {soak.min_honest_retention:.3f}"
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(soak.metrics(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics -> {args.metrics_out}")
    return 0


def _parse_burst(spec: str):
    """Parse a ``START:END:MULT`` overload burst window ([start, end) s)."""
    from repro.workloads import BurstWindow

    try:
        start_s, end_s, mult_s = spec.split(":")
        return BurstWindow(float(start_s), float(end_s), float(mult_s))
    except ValueError:
        raise ConfigurationError(
            f"--burst expects START:END:MULT, got {spec!r}"
        ) from None


def cmd_serve(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.chaos import run_service_soak
    from repro.service import MediatorService, ServiceConfig

    cap_levels = (
        tuple(float(part) for part in args.cap_levels.split(",") if part)
        if args.cap_levels
        else ()
    )
    config = ServiceConfig(
        policy=args.policy,
        p_cap_w=args.cap,
        use_oracle_estimates=args.oracle,
        seed=args.seed,
        rate_per_s=args.rate,
        clients=args.clients,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period_s=args.diurnal_period,
        bursts=tuple(_parse_burst(spec) for spec in (args.burst or [])),
        work_scale=args.work_scale,
        ingest_capacity=args.capacity,
        backpressure=args.backpressure,
        cap_levels=cap_levels,
        cap_change_every_s=args.cap_every,
        checkpoint_every_ticks=args.checkpoint_every,
    )
    if args.ticks <= 0:
        raise ConfigurationError(f"--ticks must be positive, got {args.ticks}")
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
        workdir = Path(args.workdir) if args.workdir is not None else Path(scratch)
        if args.kills > 0 or args.churn > 0:
            report = run_service_soak(
                config,
                workdir,
                total_ticks=args.ticks,
                kills=args.kills,
                churn_events=args.churn,
                chaos_seed=args.chaos_seed,
                tear_journal_bytes=args.tear_bytes,
            )
            counters = dict(report.counters)
            trace_hash = report.trace_hash
            print(
                banner(
                    f"service soak: {args.ticks} ticks @ {config.p_cap_w:.0f} W "
                    f"under {config.policy}"
                )
            )
            kill_list = ",".join(str(t) for t in report.kill_ticks) or "-"
            print(
                f"kills at {kill_list}; {report.restarts} warm restarts, "
                f"{report.replayed_ticks} ticks replayed"
            )
            print(
                f"shed {report.shed_commands} regular commands (0 cap-safety); "
                f"replayed {report.replayed_deliveries} deliveries to "
                f"reconnecting clients"
            )
            print(f"stitched trace == uninterrupted baseline; sha256 {trace_hash}")
        else:
            service = MediatorService(config, workdir)
            service.run_for_ticks(args.ticks)
            service.close()
            counters = dict(service.metrics.counters())
            trace_hash = service.content_hash()
            print(
                banner(
                    f"service: {args.ticks} ticks @ {config.p_cap_w:.0f} W "
                    f"under {config.policy}"
                )
            )
            print(f"trace sha256 {trace_hash}")
        print(
            f"ingest: {counters.get('service.ingest.accepted', 0):.0f} accepted, "
            f"{counters.get('service.ingest.deferred', 0):.0f} deferred, "
            f"{counters.get('service.ingest.rejected', 0):.0f} rejected, "
            f"{counters.get('service.ingest.shed', 0):.0f} shed"
        )
        print(
            f"jobs: {counters.get('service.admit.admitted', 0):.0f} admitted, "
            f"{counters.get('service.jobs.completed', 0):.0f} completed; "
            f"caps applied {counters.get('service.commands.cap_applied', 0):.0f}; "
            f"deliveries {counters.get('service.sessions.deliveries', 0):.0f}"
        )
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(counters, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    mixes = (
        [get_mix(i) for i in _parse_mixes(args.mixes)] if args.mixes else all_mixes()
    )
    policies = (
        _parse_policies(args.policies)
        if args.policies
        else ["util-unaware", "app+res-aware"]
    )
    results = run_policy_comparison(
        mixes,
        policies,
        args.cap,
        duration_s=args.duration,
        warmup_s=args.warmup,
        use_oracle_estimates=args.oracle,
        seed=args.seed,
        engine=args.engine,
    )
    print(banner(f"{len(mixes)} mixes @ {args.cap:.0f} W"))
    rows = [
        [mid] + [results[mid][p].server_throughput for p in policies]
        for mid in sorted(results)
    ]
    means = [
        float(np.mean([results[mid][p].server_throughput for mid in results]))
        for p in policies
    ]
    rows.append(["avg"] + means)
    print(format_table(["mix"] + policies, rows))
    base = means[0]
    if base > 0:
        gains = ", ".join(f"{p}: {m / base:.3f}x" for p, m in zip(policies, means))
        print(f"relative to {policies[0]}: {gains}")
    return 0


def cmd_utility(args: argparse.Namespace) -> int:
    profile = get_application(args.app)
    config = ServerConfig()
    cset = CandidateSet.from_models(profile, config)
    budgets = [float(b) for b in np.arange(np.floor(cset.min_power_w), 26.0, 1.0)]
    curve = app_utility_curve(cset, budgets)
    print(banner(f"utility of {args.app}"))
    print(format_series(args.app, budgets, list(curve.relative_perf), x_label="W"))
    utilities = resource_marginal_utilities(profile, config)
    print(
        "marginal utility per watt: "
        + ", ".join(f"{k}: {v:.4f}" for k, v in utilities.items())
    )
    print(
        f"demand {cset.max_power_w:.1f} W, minimum {cset.min_power_w:.1f} W, "
        f"class {profile.wclass}"
    )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    fractions = [float(f) for f in args.fractions.split(",")]
    points = calibrate_sampling_fraction(
        ServerConfig(), list(CATALOG.values()), fractions, seed=args.seed
    )
    print(banner("online sampling calibration (Fig. 7)"))
    rows = [
        [f"{p.fraction:.0%}", p.power_rmse_w, p.perf_ratio, p.power_ratio]
        for p in points
    ]
    print(
        format_table(
            ["sampled", "power RMSE [W]", "perf vs oracle", "power/budget"], rows
        )
    )
    return 0


def cmd_dynamic(args: argparse.Namespace) -> int:
    schedule = ArrivalSchedule.poisson(
        rate_per_s=args.rate, horizon_s=args.horizon * 0.8, seed=args.seed
    )
    schedule = ArrivalSchedule(
        [
            ArrivalEvent(e.time_s, e.profile.with_total_work(args.work))
            for e in schedule.events
        ]
    )
    faults = _load_fault_plan(args.faults)
    result = run_dynamic_experiment(
        schedule,
        args.policy,
        args.cap,
        horizon_s=args.horizon,
        use_oracle_estimates=args.oracle,
        seed=args.seed,
        faults=faults,
        engine=args.engine,
    )
    print(banner(f"dynamic arrivals @ {args.cap:.0f} W under {args.policy}"))
    print(f"admitted  {len(result.admitted)}: {', '.join(result.admitted) or '-'}")
    print(f"rejected  {len(result.rejected)}: {', '.join(result.rejected) or '-'}")
    print(f"completed {len(result.completed)}: {', '.join(result.completed) or '-'}")
    if result.crashed:
        print(f"crashed   {len(result.crashed)}: {', '.join(result.crashed)}")
    print(f"mean normalized throughput {result.mean_normalized_throughput:.3f}")
    print(f"events: {result.events}")
    if faults is not None and result.fault_stats is not None:
        _print_resilience(
            result.fault_stats, total_ticks=int(round(args.horizon / 0.1))
        )
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    from repro.cluster.scheduler import PLACEMENT_POLICIES, PowerAwareScheduler

    caps = [float(c) for c in args.caps.split(",")]
    jobs = [get_application(n) for n in args.jobs.split(",")]
    rows = []
    objectives = {}
    for strategy in PLACEMENT_POLICIES:
        scheduler = PowerAwareScheduler(ServerConfig(), caps, strategy=strategy)
        for job in jobs:
            scheduler.place(job)
        objectives[strategy] = scheduler.cluster_objective()
        layout = "; ".join(
            f"s{slot.index}({slot.p_cap_w:.0f}W): "
            + (",".join(p.name for p in slot.apps) or "-")
            for slot in scheduler.servers
        )
        rows.append([strategy, objectives[strategy], layout])
    print(banner("job placement (extension: paper future-work i)"))
    print(format_table(["strategy", "objective", "placement"], rows))
    return 0


def cmd_zones(args: argparse.Namespace) -> int:
    from repro.server.powercap import HardwarePowercap
    from repro.server.server import SimulatedServer

    server = SimulatedServer()
    mix = get_mix(args.mix)
    for profile in mix.profiles():
        server.admit(profile.with_total_work(float("inf")))
    powercap = HardwarePowercap(server)
    names = mix.names()
    limits = [float(v) for v in args.limits.split(",")]
    if len(limits) != len(names):
        raise SystemExit(f"need {len(names)} limits for {mix}")
    for name, limit in zip(names, limits):
        powercap.set_zone(name, limit)
    result = None
    for _ in range(int(args.duration / 0.1)):
        result = server.tick(0.1)
        powercap.on_tick(result)
    print(banner(f"hardware powercap zones on {mix}"))
    rows = []
    for name in names:
        zone = powercap.zones[name]
        rows.append(
            [
                name,
                zone.limit_w,
                result.breakdown.app_w.get(name, 0.0),
                str(zone.knob),
                zone.stats.throttle_steps,
            ]
        )
    print(
        format_table(
            ["app", "limit [W]", "measured [W]", "enforced knob", "throttle steps"],
            rows,
        )
    )
    print(f"wall power {result.breakdown.wall_w:.1f} W")
    return 0


def _cluster_partition_soak(args: argparse.Namespace) -> int:
    """``cluster --chaos N``: the partition-chaos soak instead of Fig. 12."""
    from repro.chaos import run_partition_soak

    soak = run_partition_soak(
        seeds=list(range(args.seed, args.seed + args.chaos)),
        max_loss=args.loss if args.loss > 0.0 else 0.3,
    )
    print(banner(f"partition chaos soak: {len(soak.runs)} seeded schedules"))
    rows = [
        [
            run.seed,
            f"{run.loss:.0%}",
            run.partition_steps,
            run.killed_node_steps,
            run.headroom_w,
            run.outcome.final_epoch,
            run.outcome.net_stats["dropped_loss"] + run.outcome.net_stats["dropped_partition"],
        ]
        for run in soak.runs
    ]
    print(
        format_table(
            ["seed", "loss", "cut node-steps", "dead node-steps", "headroom [W]", "epochs", "drops"],
            rows,
        )
    )
    print(
        f"all {len(soak.runs)} runs held the budget invariant; "
        f"min headroom {soak.min_headroom_w:.1f} W over "
        f"{soak.total_partition_steps} partitioned + "
        f"{soak.total_killed_node_steps} killed node-steps"
    )
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    if args.chaos:
        return _cluster_partition_soak(args)
    simulator = ClusterSimulator(engine=args.engine)
    step_s = 600.0 if args.fast else 120.0
    trace = ClusterPowerTrace.synthetic_diurnal(
        peak_w=simulator.uncapped_cluster_power_w(),
        step_s=step_s,
        seed=args.seed,
    )
    outages = [_parse_outage(spec) for spec in args.outage or ()]
    plan = _load_fault_plan(args.faults)
    if plan is not None:
        outages.extend(outages_from_fault_plan(plan, step_s=step_s))
    try:
        outages = validate_outages(
            tuple(outages),
            n_steps=len(trace.demand_w),
            n_servers=simulator.n_servers,
        )
    except ConfigurationError as exc:
        raise NetworkError(str(exc)) from None
    partitions = tuple(_parse_partition(spec) for spec in args.partition or ())
    netsim = None
    if (
        args.netsim_seed is not None
        or args.loss > 0.0
        or args.latency > 0
        or args.jitter > 0
        or partitions
    ):
        netsim = NetConfig(
            latency_steps=args.latency,
            jitter_steps=args.jitter,
            loss=args.loss,
            duplicate=args.loss / 2.0,
            partitions=partitions,
            seed=args.netsim_seed if args.netsim_seed is not None else args.seed,
        )
    bus = TraceBus() if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    experiment = simulator.run(
        trace=trace,
        duration_s=15.0 if args.fast else 30.0,
        warmup_s=8.0 if args.fast else 12.0,
        seed=args.seed,
        outages=outages,
        netsim=netsim,
        trace_bus=bus,
        metrics=metrics,
    )
    title = "cluster peak shaving (Fig. 12)"
    if netsim is not None:
        title += (
            f" over lossy net (loss {netsim.loss:.0%}, "
            f"latency {netsim.latency_steps}+{netsim.jitter_steps} steps, "
            f"{len(partitions)} partitions)"
        )
    print(banner(title))
    rows = []
    for shave in sorted(experiment.results):
        for policy, r in sorted(experiment.results[shave].items()):
            rows.append(
                [f"{shave:.0%}", policy, r.aggregate_performance, r.budget_efficiency]
            )
    print(format_table(["shave", "policy", "agg perf", "perf/avail-W"], rows))
    _write_observability(args, bus, metrics.to_json() if metrics is not None else None)
    return 0


def _parse_fanouts(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part)
    except ValueError:
        raise NetworkError(
            f"--fanouts expects comma-separated integers like 3,4, got {text!r}"
        ) from None


def _parse_subtree_outage(spec: str):
    """Parse a ``PATH:START:END`` failure-domain window (dotted tree path)."""
    from repro.hierarchy import SubtreeOutage, parse_path

    try:
        path_s, start_s, end_s = spec.split(":")
        start, end = int(start_s), int(end_s)
    except ValueError:
        raise NetworkError(
            f"--outage expects PATH:START:END like 0:20:60, got {spec!r}"
        ) from None
    try:
        return SubtreeOutage(path=parse_path(path_s), start_step=start, end_step=end)
    except ConfigurationError as exc:
        raise NetworkError(f"--outage {spec!r}: {exc}") from None


def _hierarchy_soak(args: argparse.Namespace, fanouts: tuple[int, ...]) -> int:
    """``hierarchy --chaos N``: seeded failure-domain soaks on the tree."""
    from repro.chaos import run_hierarchy_soak

    soak = run_hierarchy_soak(
        seeds=list(range(args.seed, args.seed + args.chaos)),
        fanouts=fanouts,
        n_steps=args.steps,
        budget_w=args.budget,
        max_loss=args.loss if args.loss > 0.0 else 0.3,
    )
    print(banner(f"hierarchy chaos soak: {len(soak.runs)} seeded schedules"))
    rows = [
        [
            run.seed,
            f"{run.loss:.0%}",
            run.domain_outages,
            run.restarts,
            run.fallbacks,
            run.heals,
            run.headroom_w,
            f"{run.min_sibling_ratio:.3f}",
        ]
        for run in soak.runs
    ]
    print(
        format_table(
            ["seed", "loss", "domain outages", "restarts", "fallbacks",
             "heals", "headroom [W]", "sibling ratio"],
            rows,
        )
    )
    print(
        f"all {len(soak.runs)} runs held the delegation invariant at every "
        f"node; min headroom {soak.min_headroom_w:.1f} W, worst sibling "
        f"containment ratio {soak.min_sibling_ratio:.3f} over "
        f"{soak.total_domain_outages} domain outages and "
        f"{soak.total_restarts} stale-checkpoint restarts"
    )
    return 0


def cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.cluster.controlplane import ControlPlaneConfig
    from repro.hierarchy import (
        TreeSpec,
        TreeTopology,
        run_budget_tree,
        subtree_outages_from_fault_plan,
    )

    fanouts = _parse_fanouts(args.fanouts)
    if args.chaos:
        return _hierarchy_soak(args, fanouts)
    spec = TreeSpec(
        fanouts=fanouts,
        budget_w=(
            100.0 * int(np.prod(fanouts)) if args.budget is None else args.budget
        ),
    )
    outages = [_parse_subtree_outage(s) for s in args.outage or ()]
    plan = _load_fault_plan(args.faults)
    if plan is not None:
        # Hierarchy schedules are in abstract ticks; fault-plan seconds map
        # one-to-one onto them.
        topology = TreeTopology(spec=spec, config=ControlPlaneConfig())
        outages.extend(
            subtree_outages_from_fault_plan(plan, step_s=1.0, topology=topology)
        )
    net = NetConfig(
        latency_steps=args.latency,
        jitter_steps=args.jitter,
        loss=args.loss,
        duplicate=args.loss / 2.0,
        partitions=tuple(_parse_partition(s) for s in args.partition or ()),
        seed=args.seed,
    )
    bus = TraceBus() if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    outcome = run_budget_tree(
        spec,
        [spec.n_leaves] * args.steps,
        net=net,
        subtree_outages=tuple(outages),
        drain_steps=20,
        trace_bus=bus if bus is not None else NULL_TRACE_BUS,
        metrics=metrics,
    )
    print(
        banner(
            f"budget tree: {' x '.join(str(f) for f in fanouts)} = "
            f"{spec.n_leaves} servers, {outcome.budget_w:.0f} W"
        )
    )
    rows = []
    nodes_at_level = 1
    for depth, safe_w in enumerate(outcome.safe_caps_by_level_w, start=1):
        nodes_at_level *= fanouts[depth - 1]
        rows.append(
            [
                spec.level_names[depth],
                nodes_at_level,
                fanouts[depth] if depth < len(fanouts) else "-",
                safe_w,
            ]
        )
    print(format_table(["level", "nodes", "fanout", "safe cap/node [W]"], rows))
    mean_total = sum(sum(row) for row in outcome.caps_w) / len(outcome.caps_w)
    print(
        f"mediation quality {mean_total / outcome.budget_w:.1%} of budget "
        f"(peak {outcome.max_total_cap_w:.1f} W, never above budget); "
        f"fallbacks {outcome.fallbacks}, heals {outcome.heals}; "
        f"zombie-free {outcome.zombie_free}"
    )
    stats = outcome.net_stats
    print(
        f"network: {stats['sent']} sent, {stats['dropped_loss']} lost, "
        f"{stats['dropped_partition']} cut, {stats['duplicated']} duplicated "
        f"across {len(outcome.final_epochs)} fabrics"
    )
    _write_observability(
        args, bus, metrics.to_json() if metrics is not None else None
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    events = read_trace(args.path)
    # Tolerant of kinds a newer writer added: they surface in the summary's
    # ``other`` bucket instead of failing the structural verification.
    checks = verify_trace(events, strict_kinds=False)
    summary = summarize_trace(events)
    print(banner(f"trace {args.path}"))
    print(
        f"events {summary['events']} "
        f"({summary['sim_events']} sim + {summary['meta_events']} meta); "
        f"ticks {summary['ticks']} "
        f"[{summary['first_tick']}..{summary['last_tick']}], "
        f"{summary['duration_s']:.1f} s of sim time; "
        f"restarts {summary['restarts']}; "
        f"breach ticks {checks['breach_ticks']}"
    )
    print("kinds: " + ", ".join(f"{k}={v}" for k, v in summary["kinds"].items()))
    cp = {
        kind: count
        for kind, count in summary["kinds"].items()
        if kind in CONTROL_PLANE_KINDS
    }
    if cp:
        print(
            f"control plane: {sum(cp.values())} events ("
            + ", ".join(f"{k.removeprefix('cp-')}={v}" for k, v in sorted(cp.items()))
            + ")"
        )
    hier = {
        kind: count
        for kind, count in summary["kinds"].items()
        if kind in HIERARCHY_KINDS
    }
    if hier:
        print(
            f"hierarchy: {sum(hier.values())} events ("
            + ", ".join(
                f"{k.removeprefix('hier-')}={v}" for k, v in sorted(hier.items())
            )
            + ")"
        )
    adv = {
        kind: count
        for kind, count in summary["kinds"].items()
        if kind in ADVERSARY_TRACE_KINDS
    }
    if adv:
        print(
            f"adversary/defense: {sum(adv.values())} events ("
            + ", ".join(f"{k.removeprefix('adv-')}={v}" for k, v in sorted(adv.items()))
            + ")"
        )
    if summary["other"]:
        # Kinds outside the schema (e.g. a newer writer); counted, not fatal.
        print(f"other: {summary['other']} events of unrecognized kinds")
    if summary["modes"]:
        print("modes: " + ", ".join(f"{m}={n}" for m, n in summary["modes"].items()))
    if getattr(args, "metrics", None):
        # Wall-clock lives in the metrics JSON, never on the trace bus (it
        # would break hash determinism), so pairing the two files here is
        # the only place a run's hot phases appear next to its events.
        try:
            with open(args.metrics, encoding="utf-8") as fh:
                profile = json.load(fh).get("profile", {})
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read metrics file {args.metrics}: {exc.strerror}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"metrics file {args.metrics} is not valid JSON: {exc}"
            ) from exc
        top = sorted(profile.items(), key=lambda kv: -kv[1].get("total_s", 0.0))[:3]
        if top:
            print("hottest phases (from " + args.metrics + "):")
            for name, stat in top:
                print(
                    f"  {name}: {stat.get('total_s', 0.0):.3f} s over "
                    f"{stat.get('calls', 0)} calls "
                    f"(p95 {stat.get('p95_s', 0.0) * 1e6:.1f} us/call)"
                )
        else:
            print(f"no phase profile found in {args.metrics}")
    print(f"verified ok; sha256 {summary['hash']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mediating Power Struggles on a Shared Server (ISPASS 2020) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, *, cap_default: float = 100.0) -> None:
        p.add_argument("--cap", type=float, default=cap_default, help="server power cap [W]")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--oracle",
            action="store_true",
            help="bypass online learning (true response surfaces)",
        )

    def engine_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine",
            choices=list(ENGINE_KINDS),
            default="scalar",
            help="server model implementation; 'vector' is the numpy "
            "fast path, bit-identical to the scalar reference",
        )

    def faults_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--faults",
            type=str,
            default=None,
            metavar="PLAN.json",
            help="inject faults from a JSON plan ('default' for the built-in plan)",
        )

    def observability_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out",
            type=str,
            default=None,
            metavar="RUN.jsonl",
            help="record a structured trace of the run (canonical JSONL)",
        )
        p.add_argument(
            "--metrics-out",
            type=str,
            default=None,
            metavar="METRICS.json",
            help="export counters/gauges/histograms and per-phase profile",
        )

    p_mix = sub.add_parser("mix", help="one co-location under one policy")
    p_mix.add_argument("--mix", type=int, default=10, help="Table II mix id (1-15)")
    p_mix.add_argument("--policy", choices=POLICY_NAMES, default="app+res-aware")
    p_mix.add_argument("--duration", type=float, default=30.0)
    p_mix.add_argument("--warmup", type=float, default=10.0)
    p_mix.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="run supervised, checkpointing into DIR (with a write-ahead journal)",
    )
    p_mix.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        metavar="N",
        help="ticks between checkpoints (with --checkpoint-dir)",
    )
    p_mix.add_argument(
        "--resume",
        type=str,
        default=None,
        metavar="CKPT.json",
        help="restore a checkpoint and run the remaining duration",
    )
    common(p_mix)
    engine_arg(p_mix)
    faults_arg(p_mix)
    observability_args(p_mix)
    p_mix.set_defaults(func=cmd_mix)

    p_chaos = sub.add_parser(
        "chaos", help="kill/restart soak: crash the mediator, assert recovery"
    )
    p_chaos.add_argument("--mix", type=int, default=10, help="Table II mix id (1-15)")
    p_chaos.add_argument("--policy", choices=POLICY_NAMES, default="app+res-aware")
    p_chaos.add_argument("--duration", type=float, default=10.0)
    p_chaos.add_argument("--warmup", type=float, default=4.0)
    p_chaos.add_argument("--runs", type=int, default=5, help="seeded soak runs")
    p_chaos.add_argument("--kills", type=int, default=3, help="kills per run")
    p_chaos.add_argument(
        "--checkpoint-every", type=int, default=50, metavar="N",
        help="ticks between checkpoints",
    )
    p_chaos.add_argument(
        "--safe-hold", type=int, default=0, metavar="TICKS",
        help="guard-banded safe posture after each restart",
    )
    p_chaos.add_argument(
        "--tear-bytes", type=int, default=0, metavar="B",
        help="tear up to B un-fsynced bytes off the journal at each crash",
    )
    p_chaos.add_argument(
        "--tolerance", type=float, default=0.01,
        help="relative utility tolerance vs the uninterrupted baseline",
    )
    p_chaos.add_argument(
        "--workdir", type=str, default=None,
        help="keep journals/checkpoints here (default: a temp dir)",
    )
    p_chaos.add_argument(
        "--trace", action="store_true",
        help="trace every run and enforce stitched-trace == baseline hash",
    )
    p_chaos.add_argument(
        "--metrics-out", type=str, default=None, metavar="METRICS.json",
        help="export the soak's merged metrics registry",
    )
    common(p_chaos)
    faults_arg(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_adv = sub.add_parser(
        "adversary",
        help="byzantine arms: strategic tenants vs the mediator's trust defenses",
    )
    p_adv.add_argument(
        "--kind",
        choices=["all", *ADVERSARY_KINDS],
        default="all",
        help="attack class to run (default: every kind)",
    )
    p_adv.add_argument("--mix", type=int, default=1, help="Table II mix id (1-15)")
    p_adv.add_argument("--seed", type=int, default=0)
    p_adv.add_argument(
        "--soak", type=int, default=1, metavar="N",
        help="run seeds 0..N-1 per kind instead of a single seed",
    )
    p_adv.add_argument(
        "--no-undefended", action="store_true",
        help="skip the undefended comparison arm",
    )
    p_adv.add_argument(
        "--metrics-out", type=str, default=None, metavar="METRICS.json",
        help="export the defended arms' merged metrics registry",
    )
    p_adv.set_defaults(func=cmd_adversary)

    p_serve = sub.add_parser(
        "serve", help="long-running service mode: open-loop streaming ingest"
    )
    p_serve.add_argument(
        "--ticks", type=int, default=2000, help="sim ticks to run (0.1 s each)"
    )
    p_serve.add_argument("--policy", choices=POLICY_NAMES, default="app+res-aware")
    p_serve.add_argument(
        "--rate", type=float, default=0.3, help="mean job submissions per second"
    )
    p_serve.add_argument(
        "--clients", type=int, default=4, help="streaming client sessions"
    )
    p_serve.add_argument(
        "--work-scale", type=float, default=0.05,
        help="job size multiplier vs the catalog profiles",
    )
    p_serve.add_argument(
        "--diurnal-amplitude", type=float, default=0.3,
        help="sinusoidal rate modulation depth in [0, 1)",
    )
    p_serve.add_argument(
        "--diurnal-period", type=float, default=300.0, metavar="S",
        help="period of the diurnal modulation [s]",
    )
    p_serve.add_argument(
        "--burst", action="append", default=None, metavar="START:END:MULT",
        help="overload burst window in seconds (repeatable)",
    )
    p_serve.add_argument(
        "--capacity", type=int, default=16, help="bounded ingest buffer slots"
    )
    p_serve.add_argument(
        "--backpressure", choices=list(BACKPRESSURE_POLICIES), default="shed-oldest",
        help="what a full ingest buffer does to new regular commands",
    )
    p_serve.add_argument(
        "--cap-levels", type=str, default="", metavar="W1,W2,...",
        help="provisioner cap schedule, cycled through the safety lane",
    )
    p_serve.add_argument(
        "--cap-every", type=float, default=60.0, metavar="S",
        help="seconds between scheduled cap changes",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=200, metavar="N",
        help="ticks between durable service checkpoints",
    )
    p_serve.add_argument(
        "--kills", type=int, default=0,
        help="chaos: mid-stream supervisor kills (enables the soak harness)",
    )
    p_serve.add_argument(
        "--churn", type=int, default=0,
        help="chaos: client disconnect/reconnect events",
    )
    p_serve.add_argument("--chaos-seed", type=int, default=0)
    p_serve.add_argument(
        "--tear-bytes", type=int, default=256, metavar="B",
        help="tear up to B un-fsynced journal bytes at each kill",
    )
    p_serve.add_argument(
        "--workdir", type=str, default=None,
        help="keep journal/checkpoints here (default: a temp dir)",
    )
    p_serve.add_argument(
        "--metrics-out", type=str, default=None, metavar="METRICS.json",
        help="export the service counter map",
    )
    common(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_cmp = sub.add_parser("compare", help="policies x mixes comparison")
    p_cmp.add_argument("--mixes", type=str, default="", help="comma-separated mix ids (default: all)")
    p_cmp.add_argument(
        "--policies",
        type=str,
        default="",
        help=f"comma-separated from {POLICY_NAMES}",
    )
    p_cmp.add_argument("--duration", type=float, default=25.0)
    p_cmp.add_argument("--warmup", type=float, default=8.0)
    common(p_cmp)
    engine_arg(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_util = sub.add_parser("utility", help="an application's utility curves")
    p_util.add_argument("--app", choices=application_names(), required=True)
    p_util.set_defaults(func=cmd_utility)

    p_cal = sub.add_parser("calibrate", help="sampling-fraction calibration (Fig. 7)")
    p_cal.add_argument("--fractions", type=str, default="0.02,0.05,0.10,0.20,0.40")
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.set_defaults(func=cmd_calibrate)

    p_dyn = sub.add_parser("dynamic", help="Poisson arrival stream")
    p_dyn.add_argument("--rate", type=float, default=0.02, help="arrivals per second")
    p_dyn.add_argument("--horizon", type=float, default=300.0, help="simulation length [s]")
    p_dyn.add_argument("--work", type=float, default=100.0, help="work units per arrival")
    p_dyn.add_argument("--policy", choices=POLICY_NAMES, default="app+res-aware")
    common(p_dyn)
    engine_arg(p_dyn)
    faults_arg(p_dyn)
    p_dyn.set_defaults(func=cmd_dynamic)

    p_clu = sub.add_parser("cluster", help="cluster peak shaving (Fig. 12)")
    p_clu.add_argument("--fast", action="store_true", help="coarse settings")
    p_clu.add_argument("--seed", type=int, default=1)
    p_clu.add_argument(
        "--netsim-seed", type=int, default=None, metavar="SEED",
        help="distribute caps over the simulated lossy network seeded here "
        "(any netsim flag enables the control plane; default seed: --seed)",
    )
    p_clu.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-message drop probability in [0, 1)",
    )
    p_clu.add_argument(
        "--latency", type=int, default=0, metavar="STEPS",
        help="base one-way delivery latency in trace steps",
    )
    p_clu.add_argument(
        "--jitter", type=int, default=0, metavar="STEPS",
        help="uniform extra delivery latency in [0, STEPS]",
    )
    p_clu.add_argument(
        "--partition", action="append", default=None, metavar="START:END:N1+N2",
        help="cut these servers off the controller for [START, END) steps "
        "(repeatable)",
    )
    p_clu.add_argument(
        "--outage", action="append", default=None, metavar="SERVER:START:END",
        help="take a server down for [START, END) steps (repeatable)",
    )
    p_clu.add_argument(
        "--chaos", type=int, default=0, metavar="RUNS",
        help="run RUNS seeded partition-chaos schedules against the control "
        "plane instead of the Fig. 12 sweep",
    )
    engine_arg(p_clu)
    faults_arg(p_clu)
    observability_args(p_clu)
    p_clu.set_defaults(func=cmd_cluster)

    p_hier = sub.add_parser(
        "hierarchy", help="datacenter -> PDU -> rack budget-tree mediation"
    )
    p_hier.add_argument(
        "--fanouts", type=str, default="3,4", metavar="F1,F2",
        help="children per level, top-down (3,4 = 3 PDUs x 4 servers)",
    )
    p_hier.add_argument(
        "--budget", type=float, default=None, metavar="W",
        help="datacenter budget in watts (default: 100 W per server)",
    )
    p_hier.add_argument("--steps", type=int, default=120, metavar="N")
    p_hier.add_argument("--seed", type=int, default=1)
    p_hier.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-message drop probability in [0, 1), at every fabric",
    )
    p_hier.add_argument(
        "--latency", type=int, default=0, metavar="STEPS",
        help="base one-way delivery latency in steps",
    )
    p_hier.add_argument(
        "--jitter", type=int, default=0, metavar="STEPS",
        help="uniform extra delivery latency in [0, STEPS]",
    )
    p_hier.add_argument(
        "--partition", action="append", default=None, metavar="START:END:N1+N2",
        help="cut these root-fabric children (PDU uplinks) for [START, END) "
        "steps (repeatable)",
    )
    p_hier.add_argument(
        "--outage", action="append", default=None, metavar="PATH:START:END",
        help="take the whole failure domain at dotted PATH dark for "
        "[START, END) steps, controller and all (repeatable)",
    )
    p_hier.add_argument(
        "--chaos", type=int, default=0, metavar="RUNS",
        help="run RUNS seeded failure-domain chaos schedules against the "
        "tree instead of the plain replay",
    )
    faults_arg(p_hier)
    observability_args(p_hier)
    p_hier.set_defaults(func=cmd_hierarchy)

    p_place = sub.add_parser("place", help="power-aware job placement (extension)")
    p_place.add_argument(
        "--caps", type=str, default="120,100,85,75", help="per-server caps [W]"
    )
    p_place.add_argument(
        "--jobs",
        type=str,
        default="stream,pagerank,sssp,x264",
        help="comma-separated catalog applications",
    )
    p_place.set_defaults(func=cmd_place)

    p_zones = sub.add_parser("zones", help="hardware powercap zones (extension)")
    p_zones.add_argument("--mix", type=int, default=1)
    p_zones.add_argument(
        "--limits", type=str, default="15,12", help="per-app zone limits [W]"
    )
    p_zones.add_argument("--duration", type=float, default=30.0)
    p_zones.set_defaults(func=cmd_zones)

    p_trace = sub.add_parser("trace", help="inspect a recorded run trace")
    p_trace.add_argument(
        "action", choices=["summarize"], help="what to do with the trace"
    )
    p_trace.add_argument("path", help="trace file written by --trace-out")
    p_trace.add_argument(
        "--metrics",
        default=None,
        help="companion metrics JSON (--metrics-out); prints the run's "
        "top-3 hottest control-loop phases with call counts and p95",
    )
    p_trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    try:
        return int(args.func(args))
    except (
        ConfigurationError,
        FaultError,
        ServiceError,
        NetworkError,
        PersistenceError,
        ChaosError,
        ObservabilityError,
        AdversaryError,
    ) as exc:
        # Malformed configs/fault plans/network schedules, corrupt
        # checkpoints, torn journals, failed soak invariants, damaged
        # traces, broken service streams, bad attack schedules: one clear
        # line, never a traceback.
        return _fail(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
