"""Crash-tolerant mediation: checkpoints, write-ahead journal, supervision.

The mediator of :mod:`repro.core.mediator` is a long-running control loop;
this package makes one run survive the loop's *own* death. Three layers:

* :mod:`repro.persistence.checkpoint` - versioned, schema-stamped snapshots
  of every stateful component (utility matrices, sampling state, accountant
  ledgers, coordinator cursor, battery SoC, resilience counters, RNG
  streams) plus the :class:`~repro.persistence.checkpoint.RunRecipe` that
  rebuilds the surrounding objects, so a resumed run replays
  **bit-identically**;
* :mod:`repro.persistence.journal` - an append-only write-ahead event
  journal (JSONL) recording commands before they execute and ticks as they
  complete, with explicit fsync points and a torn-tail recovery rule;
* :mod:`repro.persistence.supervisor` - the watchdog that detects a died or
  hung mediator, warm-restarts it from checkpoint + journal replay, and
  optionally holds the server in the PR 1 guard-banded safe posture while
  trust is re-established.

See DESIGN.md section 8 ("Crash model and recovery") for the invariants.
"""

from repro.persistence.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    RunRecipe,
    checkpoint_filename,
    latest_checkpoint,
    read_checkpoint,
    restore_mediator,
    write_checkpoint,
)
from repro.persistence.journal import (
    JOURNAL_SCHEMA,
    JOURNAL_VERSION,
    JournalWriter,
    read_journal,
    repair_torn_tail,
)
from repro.persistence.segments import (
    SegmentedJournalWriter,
    list_segments,
    prune_segments,
    read_segmented,
    repair_segmented_tail,
    replay_records_from,
    segment_filename,
    segment_start_seq,
    segments_size_bytes,
)
from repro.persistence.supervisor import (
    AdmitApp,
    Advance,
    MediatorHung,
    MediatorKilled,
    RecoveryStats,
    SetCap,
    Supervisor,
    command_from_dict,
    command_to_dict,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "AdmitApp",
    "Advance",
    "JournalWriter",
    "MediatorHung",
    "MediatorKilled",
    "RecoveryStats",
    "RunRecipe",
    "SegmentedJournalWriter",
    "SetCap",
    "Supervisor",
    "checkpoint_filename",
    "command_from_dict",
    "command_to_dict",
    "latest_checkpoint",
    "list_segments",
    "prune_segments",
    "read_checkpoint",
    "read_journal",
    "read_segmented",
    "repair_segmented_tail",
    "repair_torn_tail",
    "replay_records_from",
    "restore_mediator",
    "segment_filename",
    "segment_start_seq",
    "segments_size_bytes",
    "write_checkpoint",
]
