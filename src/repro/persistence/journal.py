"""Write-ahead event journal: append-only JSONL with a torn-tail rule.

The journal is the fine-grained complement to checkpoints: checkpoints are
heavyweight and periodic, the journal records every unit of progress between
them. One record per line, each a JSON object with a strictly increasing
``seq`` and an ``op``:

========== ===========================================================
op          meaning / durability
========== ===========================================================
meta        run header (schema stamp, version, tick length); fsynced
command     a script command *about to execute* (write-ahead); fsynced
            before the command runs, so a command is never half-known
tick        one mediator tick completed; fsynced in batches of
            ``fsync_every_ticks`` (ticks are deterministic, so losing
            the un-synced tail only costs re-execution, never truth)
checkpoint  a checkpoint landed; carries the file name plus the resume
            position (script index, current advance deadline); fsynced
========== ===========================================================

**Torn-tail rule** (see :class:`~repro.errors.JournalError`): a crash can
tear the final line mid-write. :func:`read_journal` silently drops a
malformed *final* record - that data was never durable - but refuses a
malformed record anywhere in the interior, because replaying past a damaged
middle would diverge from the run the journal records.

Commands are journaled *before* execution (classic WAL discipline). Replay
is therefore idempotent by construction: a command that crashed mid-flight
re-executes against the pre-command state restored from the checkpoint, and
a command that completed is either covered by a later checkpoint (not
replayed) or re-executed deterministically from the same state as the first
time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import JournalError
from repro.schema import Validator

#: Schema stamp written into the journal's meta record.
JOURNAL_SCHEMA = "repro-journal"

#: Current journal format version; bump on incompatible record changes.
JOURNAL_VERSION = 1

_VALID = Validator(JournalError)

_KNOWN_OPS = ("meta", "command", "tick", "checkpoint")


class JournalWriter:
    """Appends records to one journal file with explicit durability points.

    Args:
        path: Journal file; created (with parents) if missing, appended to
            if present (warm restart continues the same file).
        fsync_every_ticks: Tick records between fsyncs. Commands, meta and
            checkpoint markers always fsync immediately.
        start_seq: First sequence number to assign; a recovering supervisor
            passes ``last durable seq + 1`` so the ordering survives the
            restart.

    Raises:
        JournalError: for a non-positive ``fsync_every_ticks`` or an
            unwritable path.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_every_ticks: int = 25,
        start_seq: int = 0,
    ) -> None:
        if fsync_every_ticks < 1:
            raise JournalError(
                f"fsync_every_ticks must be at least 1, got {fsync_every_ticks}"
            )
        self._path = Path(path)
        self._fsync_every_ticks = fsync_every_ticks
        self._seq = start_seq
        self._unsynced_ticks = 0
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self._path, "a", encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self._path}: {exc}") from None
        self._durable_offset = self._file.tell()
        self._closed = False

    @property
    def path(self) -> Path:
        return self._path

    @property
    def next_seq(self) -> int:
        """The sequence number the next record will carry."""
        return self._seq

    @property
    def durable_offset(self) -> int:
        """File offset up to which records have been fsynced.

        Everything before this offset survives any crash; everything after
        it is the at-risk tail a crash may tear (the chaos harness uses this
        to keep simulated tears honest).
        """
        return self._durable_offset

    # ------------------------------------------------------------- appends

    def append_meta(self, *, dt_s: float) -> None:
        """Write the run header (always the first record)."""
        self._append(
            {
                "op": "meta",
                "schema": JOURNAL_SCHEMA,
                "version": JOURNAL_VERSION,
                "dt_s": dt_s,
            },
            durable=True,
        )

    def append_command(self, index: int, command: dict) -> None:
        """Write-ahead record of script command ``index`` about to run."""
        self._append({"op": "command", "index": index, "command": command}, durable=True)

    def append_tick(self, tick: int) -> None:
        """Record one completed mediator tick (batched durability)."""
        self._unsynced_ticks += 1
        self._append(
            {"op": "tick", "tick": tick},
            durable=self._unsynced_ticks >= self._fsync_every_ticks,
        )

    def append_checkpoint(
        self, *, tick: int, path: str, command: int, end_s: float | None
    ) -> None:
        """Record a landed checkpoint plus the position to resume from.

        Args:
            tick: Mediator tick the checkpoint captured.
            path: Checkpoint file name (relative to the journal's directory).
            command: Script index execution stands at.
            end_s: Deadline of the in-progress ``Advance``, or ``None``
                between commands.
        """
        self._append(
            {
                "op": "checkpoint",
                "tick": tick,
                "path": path,
                "command": command,
                "end_s": end_s,
            },
            durable=True,
        )

    def _append(self, record: dict, *, durable: bool) -> None:
        if self._closed:
            raise JournalError(f"journal {self._path} is closed")
        record = {"seq": self._seq, **record}
        try:
            self._file.write(json.dumps(record) + "\n")
            if durable:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._durable_offset = self._file.tell()
                self._unsynced_ticks = 0
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self._path}: {exc}") from None
        self._seq += 1

    def abort(self) -> None:
        """Close as a crash would: nothing new becomes durable. Idempotent.

        Buffered records still reach the file (so a simulated tear can
        choose how much of the tail to destroy), but ``durable_offset``
        stays where the last fsync left it.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
        except OSError:
            pass
        self._file.close()

    def close(self) -> None:
        """Flush, fsync and close. Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._durable_offset = self._file.tell()
        except OSError:
            pass
        self._file.close()


def repair_torn_tail(path: str | Path) -> bool:
    """Trim a torn final record off a journal, in place.

    Recovery must do this before re-opening the journal for append:
    otherwise the first post-recovery record would concatenate onto the torn
    fragment and corrupt the journal's interior. Returns whether anything
    was trimmed.

    Raises:
        JournalError: if the file cannot be read or truncated.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None
    if not data:
        return False
    torn = not data.endswith(b"\n")
    if not torn:
        last_line = data.rstrip(b"\n").rsplit(b"\n", 1)[-1]
        try:
            json.loads(last_line)
        except ValueError:
            torn = True
    if not torn:
        return False
    body = data.rstrip(b"\n") if data.endswith(b"\n") else data
    cut = body.rfind(b"\n")
    keep = cut + 1 if cut >= 0 else 0
    try:
        os.truncate(path, keep)
    except OSError as exc:
        raise JournalError(f"cannot repair journal {path}: {exc}") from None
    return True


def read_journal(path: str | Path) -> list[dict]:
    """Read every durable record, applying the torn-tail rule.

    Returns:
        The validated records in order. A malformed final line is dropped
        (it was torn by a crash before reaching disk in full).

    Raises:
        JournalError: for an unreadable file, a malformed record in the
            journal's interior, an unknown ``op``, or a sequence-number
            ordering violation.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None
    lines = text.split("\n")
    while lines and lines[-1] == "":
        lines.pop()
    records: list[dict] = []
    last_seq: int | None = None
    for lineno, line in enumerate(lines, start=1):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # torn tail: the crash interrupted this write
            raise JournalError(
                f"{path}:{lineno}: malformed record in the journal interior "
                "(only the final record may be torn)"
            ) from None
        where = f"journal[{lineno}]"
        obj = _VALID.as_dict(raw, where)
        seq = _VALID.as_int(_VALID.require(obj, "seq", where), f"{where}.seq")
        op = _VALID.choice(_VALID.require(obj, "op", where), f"{where}.op", _KNOWN_OPS)
        if last_seq is not None and seq <= last_seq:
            raise JournalError(
                f"{path}:{lineno}: sequence number {seq} does not increase "
                f"past {last_seq}"
            )
        last_seq = seq
        if op == "meta":
            version = _VALID.as_int(
                _VALID.require(obj, "version", where), f"{where}.version"
            )
            if version != JOURNAL_VERSION:
                raise JournalError(
                    f"{path}:{lineno}: journal version {version} is not supported "
                    f"(this build reads version {JOURNAL_VERSION})"
                )
        elif op == "command":
            _VALID.as_int(_VALID.require(obj, "index", where), f"{where}.index")
            _VALID.as_dict(_VALID.require(obj, "command", where), f"{where}.command")
        elif op == "tick":
            _VALID.as_int(_VALID.require(obj, "tick", where), f"{where}.tick")
        else:  # checkpoint
            _VALID.as_int(_VALID.require(obj, "tick", where), f"{where}.tick")
            _VALID.as_str(_VALID.require(obj, "path", where), f"{where}.path")
            _VALID.as_int(_VALID.require(obj, "command", where), f"{where}.command")
            end_s = _VALID.require(obj, "end_s", where)
            if end_s is not None:
                _VALID.as_number(end_s, f"{where}.end_s")
        records.append(obj)
    return records
