"""Supervised mediation: detect a dead or hung mediator and warm-restart it.

The :class:`Supervisor` owns the whole crash-tolerance loop. It drives a
mediator through a declarative *script* of commands (:class:`AdmitApp`,
:class:`SetCap`, :class:`Advance`), journaling each command before it
executes and each tick as it completes, and checkpointing every
``checkpoint_every_ticks`` ticks. When the mediator dies
(:class:`MediatorKilled`, raised by a crash-injection hook or a real bug)
or hangs past the per-tick deadline (:class:`MediatorHung`), the supervisor

1. tears the journal's un-fsynced tail if asked to (simulating what a real
   crash does to buffered writes - fsynced bytes are never lost),
2. restores the latest checkpoint and replays every journal record after
   its marker - commands re-execute, ticks re-step - landing on the exact
   pre-crash state (everything is deterministic, so the replay is
   bit-identical to the lost execution),
3. writes a *fresh* checkpoint, so repeated crashes always make forward
   progress, and
4. optionally holds the server in the PR 1 guard-banded safe posture
   (:meth:`~repro.core.mediator.PowerMediator.begin_safe_hold`) while trust
   in the restarted loop is re-established.

Recovery cost is tracked in :class:`RecoveryStats`, including the learning
state (calibration samples) that checkpoint restore saved from a cold
relearn.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.mediator import PowerMediator
from repro.errors import CheckpointError, ReproError
from repro.learning.sampling import Sampler
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.persistence.checkpoint import (
    RunRecipe,
    read_checkpoint,
    restore_mediator,
    write_checkpoint,
)
from repro.persistence.journal import JournalWriter, read_journal, repair_torn_tail
from repro.workloads.generator import PhasedProfile
from repro.workloads.profiles import WorkloadProfile


class MediatorKilled(ReproError):
    """The mediator process died mid-tick (raised by crash injection)."""


class MediatorHung(ReproError):
    """A mediator tick overran the supervisor's liveness deadline."""


# --------------------------------------------------------------------- script


@dataclass(frozen=True)
class AdmitApp:
    """Script command: admit one application (mediator event E2)."""

    profile: WorkloadProfile
    phased: PhasedProfile | None = None
    group_width: int | None = None
    skip_overhead: bool = False


@dataclass(frozen=True)
class SetCap:
    """Script command: change the PSys cap (mediator event E1)."""

    p_cap_w: float


@dataclass(frozen=True)
class Advance:
    """Script command: run the mediation loop for a stretch of sim time."""

    duration_s: float


Command = AdmitApp | SetCap | Advance


def command_to_dict(command: Command) -> dict:
    """Serialize a script command for the write-ahead journal."""
    if isinstance(command, AdmitApp):
        return {
            "kind": "admit",
            "profile": command.profile.to_dict(),
            "phased": None
            if command.phased is None
            else [[t, p.to_dict()] for t, p in command.phased.segments],
            "group_width": command.group_width,
            "skip_overhead": command.skip_overhead,
        }
    if isinstance(command, SetCap):
        return {"kind": "set_cap", "p_cap_w": command.p_cap_w}
    if isinstance(command, Advance):
        return {"kind": "advance", "duration_s": command.duration_s}
    raise TypeError(f"not a script command: {command!r}")


def command_from_dict(data: dict) -> Command:
    """Inverse of :func:`command_to_dict` (extra keys like ``end_s`` are
    resume context, not part of the command, and are ignored here)."""
    kind = data["kind"]
    if kind == "admit":
        phased = data["phased"]
        return AdmitApp(
            profile=WorkloadProfile.from_dict(data["profile"]),
            phased=None
            if phased is None
            else PhasedProfile(
                [(float(t), WorkloadProfile.from_dict(p)) for t, p in phased]
            ),
            group_width=data["group_width"],
            skip_overhead=bool(data["skip_overhead"]),
        )
    if kind == "set_cap":
        return SetCap(p_cap_w=float(data["p_cap_w"]))
    if kind == "advance":
        return Advance(duration_s=float(data["duration_s"]))
    raise ValueError(f"unknown command kind {kind!r}")


# ---------------------------------------------------------------- accounting


@dataclass
class RecoveryStats:
    """Counters describing what crash recovery cost - and what it saved.

    Attributes:
        restarts: Warm restarts performed (kills + hangs recovered from).
        hangs_detected: Restarts triggered by the tick deadline rather
            than outright death.
        downtime_ticks: Ticks that had to be re-executed from the journal
            because they happened after the last checkpoint.
        journal_records_replayed: Total journal records (commands + ticks)
            replayed across all recoveries.
        checkpoints_written: Snapshots written, including the post-recovery
            ones.
        samples_restored: Calibration samples that arrived intact inside
            checkpoints instead of being re-measured.
        cold_relearns_avoided: Per-application calibrations that restore
            made unnecessary (one per managed app per recovery, for
            learning policies).
    """

    restarts: int = 0
    hangs_detected: int = 0
    downtime_ticks: int = 0
    journal_records_replayed: int = 0
    checkpoints_written: int = 0
    samples_restored: int = 0
    cold_relearns_avoided: int = 0


@dataclass
class _Position:
    """Where script execution stands: the command index, plus - when that
    command is an in-progress ``Advance`` - its absolute deadline."""

    command: int = 0
    end_s: float | None = None


# ---------------------------------------------------------------- supervisor


class Supervisor:
    """Runs a script against a crash-prone mediator, restarting as needed.

    Args:
        recipe: How to (re)build the mediator; also stamped into every
            checkpoint so a restore never depends on live objects.
        script: The commands to execute, in order.
        workdir: Directory receiving ``journal.jsonl`` and the
            ``ckpt-*.json`` snapshots.
        checkpoint_every_ticks: Snapshot cadence during ``Advance``.
        fsync_every_ticks: Journal tick-record durability cadence.
        tick_deadline_s: Wall-clock budget for one mediator tick; ``None``
            disables hang detection.
        tick_hook: Called as ``tick_hook(mediator, tick_count)`` before
            every tick - the chaos harness raises :class:`MediatorKilled`
            from here.
        safe_hold_ticks: Guard-banded safe-posture length applied after
            each warm restart (0 keeps restarts bit-identical).
        tear_journal_bytes_on_crash: On each crash, drop up to this many
            bytes from the journal tail - clamped so fsynced bytes never
            disappear - to exercise the torn-tail rule.
        max_restarts: Hard stop against a deterministically crashing loop.
        trace_bus: Optional trace sink. The supervisor attaches it to every
            mediator incarnation, records the bus mark alongside each
            checkpoint, and on recovery truncates to the restored
            checkpoint's mark before replay - so the stitched sim stream
            hashes identically to an uninterrupted run (when
            ``safe_hold_ticks`` is 0). Crash/restore forensics land in the
            trace as meta events, outside the hash.
    """

    JOURNAL_NAME = "journal.jsonl"

    def __init__(
        self,
        recipe: RunRecipe,
        script: list[Command],
        workdir: str | Path,
        *,
        checkpoint_every_ticks: int = 50,
        fsync_every_ticks: int = 25,
        tick_deadline_s: float | None = None,
        tick_hook: Callable[[PowerMediator, int], None] | None = None,
        safe_hold_ticks: int = 0,
        tear_journal_bytes_on_crash: int = 0,
        max_restarts: int = 50,
        trace_bus: TraceBus | None = None,
    ) -> None:
        self._recipe = recipe
        self._script = list(script)
        self._workdir = Path(workdir)
        self._checkpoint_every_ticks = checkpoint_every_ticks
        self._fsync_every_ticks = fsync_every_ticks
        self._tick_deadline_s = tick_deadline_s
        self._tick_hook = tick_hook
        self._safe_hold_ticks = safe_hold_ticks
        self._tear_bytes = tear_journal_bytes_on_crash
        self._max_restarts = max_restarts
        self._stats = RecoveryStats()
        self._mediator: PowerMediator | None = None
        self._journal: JournalWriter | None = None
        self._pos = _Position()
        self._ticks_since_checkpoint = 0
        self._trace = NULL_TRACE_BUS if trace_bus is None else trace_bus
        # Checkpoint file name -> bus mark (the seq the next sim event gets)
        # at snapshot time. In-memory only: traces belong to one process run.
        self._bus_marks: dict[str, int] = {}

    @property
    def stats(self) -> RecoveryStats:
        return self._stats

    @property
    def mediator(self) -> PowerMediator | None:
        """The currently supervised mediator (changes across restarts)."""
        return self._mediator

    @property
    def journal_path(self) -> Path:
        return self._workdir / self.JOURNAL_NAME

    def run(self) -> PowerMediator:
        """Execute the whole script, surviving kills and hangs.

        Returns:
            The mediator that completed the final command (after any number
            of warm restarts).

        Raises:
            CheckpointError: if recovery exceeds ``max_restarts``.
        """
        self._mediator = self._recipe.build()
        if self._trace.active:
            self._mediator.attach_trace_bus(self._trace)
        self._journal = JournalWriter(
            self.journal_path, fsync_every_ticks=self._fsync_every_ticks
        )
        self._journal.append_meta(dt_s=self._mediator.dt_s)
        self._checkpoint()
        while True:
            try:
                self._execute()
                break
            except (MediatorKilled, MediatorHung) as exc:
                if isinstance(exc, MediatorHung):
                    self._stats.hangs_detected += 1
                if self._stats.restarts >= self._max_restarts:
                    raise CheckpointError(
                        f"gave up after {self._stats.restarts} restarts: {exc}"
                    ) from exc
                if self._trace.active:
                    self._trace.emit_meta(
                        "crash",
                        {
                            "reason": "hang" if isinstance(exc, MediatorHung) else "kill",
                            "restarts_so_far": self._stats.restarts,
                        },
                    )
                self._crash_journal()
                self._recover()
        self._journal.close()
        return self._mediator

    # ----------------------------------------------------------- execution

    def _execute(self) -> None:
        """Run the script from the current position to the end."""
        assert self._mediator is not None and self._journal is not None
        while self._pos.command < len(self._script):
            index = self._pos.command
            command = self._script[index]
            if isinstance(command, Advance):
                if self._pos.end_s is None:
                    # Journal the absolute deadline once; recomputing it
                    # after a restart could drift by a float ulp.
                    end_s = self._mediator.server.now_s + command.duration_s
                    record = command_to_dict(command)
                    record["end_s"] = end_s
                    self._journal.append_command(index, record)
                    self._pos = _Position(command=index, end_s=end_s)
                self._advance(self._pos.end_s)
            else:
                self._journal.append_command(index, command_to_dict(command))
                self._apply(command)
            self._pos = _Position(command=index + 1, end_s=None)
        self._checkpoint()

    def _advance(self, end_s: float) -> None:
        """Tick the mediator up to ``end_s`` (mirrors ``run_for``'s loop)."""
        mediator, journal = self._mediator, self._journal
        assert mediator is not None and journal is not None
        while mediator.server.now_s < end_s - 1e-9:
            if self._tick_hook is not None:
                self._tick_hook(mediator, mediator.tick_count)
            started = time.monotonic()
            mediator.step()
            if (
                self._tick_deadline_s is not None
                and time.monotonic() - started > self._tick_deadline_s
            ):
                # Do NOT journal the overrun tick: recovery replays to the
                # previous durable tick and redoes this one from scratch.
                raise MediatorHung(
                    f"tick {mediator.tick_count} exceeded the "
                    f"{self._tick_deadline_s:.3f} s deadline"
                )
            journal.append_tick(mediator.tick_count)
            self._ticks_since_checkpoint += 1
            if self._ticks_since_checkpoint >= self._checkpoint_every_ticks:
                self._checkpoint()

    def _apply(self, command: Command) -> None:
        assert self._mediator is not None
        if isinstance(command, AdmitApp):
            self._mediator.add_application(
                command.profile,
                phased=command.phased,
                group_width=command.group_width,
                skip_overhead=command.skip_overhead,
            )
        elif isinstance(command, SetCap):
            self._mediator.set_power_cap(command.p_cap_w)
        else:  # pragma: no cover - Advance is handled by _execute
            raise TypeError(f"cannot apply {command!r}")

    def _checkpoint(self) -> None:
        assert self._mediator is not None and self._journal is not None
        path = write_checkpoint(self._workdir, self._mediator, self._recipe)
        self._journal.append_checkpoint(
            tick=self._mediator.tick_count,
            path=path.name,
            command=self._pos.command,
            end_s=self._pos.end_s,
        )
        if self._trace.active:
            # The mark pins the sim-event prefix this snapshot captured;
            # recovery truncates back to it before replay re-emits the rest.
            self._bus_marks[path.name] = self._trace.mark()
            self._trace.emit_meta(
                "checkpoint", {"tick": self._mediator.tick_count, "path": path.name}
            )
        self._ticks_since_checkpoint = 0
        self._stats.checkpoints_written += 1

    # ------------------------------------------------------------ recovery

    def _crash_journal(self) -> None:
        """Close the journal the way a crash would: buffered writes may be
        torn, fsynced bytes survive."""
        assert self._journal is not None
        durable = self._journal.durable_offset
        self._journal.abort()
        if self._tear_bytes > 0:
            size = self.journal_path.stat().st_size
            keep = max(durable, size - self._tear_bytes)
            if keep < size:
                os.truncate(self.journal_path, keep)

    def _recover(self) -> None:
        """Warm restart: latest checkpoint + journal replay."""
        repair_torn_tail(self.journal_path)
        records = read_journal(self.journal_path)
        marker_at = max(
            (i for i, rec in enumerate(records) if rec["op"] == "checkpoint"),
            default=None,
        )
        if marker_at is None:
            raise CheckpointError(
                f"journal {self.journal_path} holds no checkpoint marker; "
                "cannot recover"
            )
        marker = records[marker_at]
        doc = read_checkpoint(self._workdir / marker["path"])
        self._mediator = restore_mediator(doc)
        if self._trace.active:
            # Rewind the sim stream to the snapshot's prefix, note the
            # restore for forensics, then re-attach so replay (and the rest
            # of the run) re-emits onto the same bus. attach_trace_bus syncs
            # the tick cursor from the restored timeline, so re-applied
            # commands stamp exactly as they did pre-crash.
            mark = self._bus_marks.get(marker["path"])
            dropped = 0 if mark is None else self._trace.truncate_to_mark(mark)
            self._trace.emit_meta(
                "restore",
                {
                    "tick": self._mediator.tick_count,
                    "checkpoint": marker["path"],
                    "dropped_events": dropped,
                },
            )
            self._mediator.attach_trace_bus(self._trace)
        self._credit_restored_learning()
        self._pos = _Position(
            command=int(marker["command"]),
            end_s=None if marker["end_s"] is None else float(marker["end_s"]),
        )
        tail = records[marker_at + 1 :]
        replayed_ticks = 0
        for rec in tail:
            if rec["op"] == "command":
                command = command_from_dict(rec["command"])
                if isinstance(command, Advance):
                    self._pos = _Position(
                        command=int(rec["index"]),
                        end_s=float(rec["command"]["end_s"]),
                    )
                else:
                    self._apply(command)
                    self._pos = _Position(command=int(rec["index"]) + 1)
            elif rec["op"] == "tick":
                self._mediator.step()
                self._stats.downtime_ticks += 1
                replayed_ticks += 1
        self._stats.journal_records_replayed += len(tail)
        if self._trace.active:
            self._trace.emit_meta(
                "replayed", {"records": len(tail), "ticks": replayed_ticks}
            )
        self._stats.restarts += 1
        last_seq = records[-1]["seq"]
        self._journal = JournalWriter(
            self.journal_path,
            fsync_every_ticks=self._fsync_every_ticks,
            start_seq=last_seq + 1,
        )
        # A fresh snapshot caps the replay a *second* crash would need and
        # guarantees forward progress under repeated failures.
        self._checkpoint()
        self._mediator.begin_safe_hold(self._safe_hold_ticks)

    def _credit_restored_learning(self) -> None:
        """Account for the calibration state the checkpoint carried over."""
        assert self._mediator is not None
        if not self._mediator.policy.needs_learning:
            return
        if self._recipe.use_oracle_estimates:
            return
        apps = self._mediator.managed_apps()
        if not apps:
            return
        per_app = Sampler.budget_from_fraction(
            self._recipe.config, self._recipe.sampler_fraction
        )
        self._stats.cold_relearns_avoided += len(apps)
        self._stats.samples_restored += len(apps) * per_app
