"""Journal segment rotation, replay cursors, and retention pruning.

One :class:`~repro.persistence.journal.JournalWriter` file grows without
bound - fatal for the service mode, whose journal must survive multi-day
soaks in bounded disk. This module shards the same record stream across
**segments**: files named ``journal-<start_seq>.jsonl`` where ``start_seq``
is the sequence number of the file's first record. Because sequence numbers
are global and gap-free, the filename doubles as an index: a replay cursor
finds its segment with a binary search over the directory listing and never
opens the segments before it, and retention can delete whole prefix
segments once a checkpoint makes their records obsolete.

Durability semantics are inherited from the single-file journal:

* within a segment, the usual fsync points apply;
* rotation closes (flush + fsync) the outgoing segment, so **only the last
  segment may ever be torn**. A malformed final line in an interior segment
  means lost durable records, which :func:`read_segmented` detects as a
  sequence discontinuity against the next segment's filename and refuses
  with :class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import JournalError
from repro.persistence.journal import JournalWriter, read_journal, repair_torn_tail

__all__ = [
    "SegmentedJournalWriter",
    "list_segments",
    "prune_segments",
    "read_segmented",
    "repair_segmented_tail",
    "replay_records_from",
    "segment_filename",
    "segment_start_seq",
    "segments_size_bytes",
]

_SEGMENT_RE = re.compile(r"^journal-(\d{10})\.jsonl$")


def segment_filename(start_seq: int) -> str:
    """Canonical segment name; zero-padded so lexicographic order is seq order."""
    if start_seq < 0:
        raise JournalError(f"segment start_seq must be non-negative, got {start_seq}")
    return f"journal-{start_seq:010d}.jsonl"


def segment_start_seq(path: str | Path) -> int:
    """The first sequence number a segment file claims to hold."""
    name = Path(path).name
    match = _SEGMENT_RE.match(name)
    if match is None:
        raise JournalError(f"{name!r} is not a journal segment name")
    return int(match.group(1))


def list_segments(directory: str | Path) -> list[Path]:
    """Every segment in ``directory``, in sequence order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        (p for p in directory.iterdir() if _SEGMENT_RE.match(p.name)),
        key=segment_start_seq,
    )


def segments_size_bytes(directory: str | Path) -> int:
    """Total on-disk footprint of the journal's segments."""
    return sum(p.stat().st_size for p in list_segments(directory))


class SegmentedJournalWriter:
    """A :class:`JournalWriter` that rotates to a new file every N records.

    The record stream - sequence numbers, ops, durability points - is
    exactly what one unsegmented writer would produce; only the file
    boundaries differ. Rotation happens *before* the append that would
    exceed ``records_per_segment``, and the outgoing segment is closed with
    a final fsync so every interior segment is durable in full.

    Args:
        directory: Segment directory; created if missing.
        records_per_segment: Records per file before rotating.
        fsync_every_ticks: Passed through to each segment's writer.
        start_seq: First sequence number (a recovering service passes
            ``last durable seq + 1``; the new segment's filename records it).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        records_per_segment: int = 4096,
        fsync_every_ticks: int = 25,
        start_seq: int = 0,
    ) -> None:
        if records_per_segment < 1:
            raise JournalError(
                f"records_per_segment must be at least 1, got {records_per_segment}"
            )
        self._directory = Path(directory)
        self._records_per_segment = records_per_segment
        self._fsync_every_ticks = fsync_every_ticks
        self._records_in_segment = 0
        self._closed = False
        self._writer = self._open_segment(start_seq)

    def _open_segment(self, start_seq: int) -> JournalWriter:
        path = self._directory / segment_filename(start_seq)
        return JournalWriter(
            path, fsync_every_ticks=self._fsync_every_ticks, start_seq=start_seq
        )

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def next_seq(self) -> int:
        return self._writer.next_seq

    @property
    def current_segment(self) -> Path:
        """The file the next record will land in (the only tearable one)."""
        return self._writer.path

    @property
    def durable_offset(self) -> int:
        """Durable offset within the *current* segment (interior segments
        are durable in full by the rotation rule)."""
        return self._writer.durable_offset

    def _maybe_rotate(self) -> None:
        if self._records_in_segment < self._records_per_segment:
            return
        next_seq = self._writer.next_seq
        self._writer.close()  # flush + fsync: interior segments are never torn
        self._writer = self._open_segment(next_seq)
        self._records_in_segment = 0

    def append_meta(self, *, dt_s: float) -> None:
        self._maybe_rotate()
        self._writer.append_meta(dt_s=dt_s)
        self._records_in_segment += 1

    def append_command(self, index: int, command: dict) -> None:
        self._maybe_rotate()
        self._writer.append_command(index, command)
        self._records_in_segment += 1

    def append_tick(self, tick: int) -> None:
        self._maybe_rotate()
        self._writer.append_tick(tick)
        self._records_in_segment += 1

    def append_checkpoint(
        self, *, tick: int, path: str, command: int, end_s: float | None
    ) -> None:
        self._maybe_rotate()
        self._writer.append_checkpoint(tick=tick, path=path, command=command, end_s=end_s)
        self._records_in_segment += 1

    def abort(self) -> None:
        """Crash-close: the current segment keeps its at-risk tail."""
        if self._closed:
            return
        self._closed = True
        self._writer.abort()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()


def repair_segmented_tail(directory: str | Path) -> bool:
    """Trim a torn final record off the *last* segment, in place.

    Interior segments were fsynced whole at rotation, so only the last may
    legitimately be torn; damage anywhere else surfaces later as a
    :func:`read_segmented` discontinuity. Returns whether anything was
    trimmed.
    """
    segments = list_segments(directory)
    if not segments:
        return False
    return repair_torn_tail(segments[-1])


def read_segmented(directory: str | Path) -> list[dict]:
    """Read the full record stream across all segments, validating stitching.

    Checks, per segment: the first record's seq matches the filename's
    ``start_seq`` (a renamed or cross-wired file fails loudly), and for
    interior segments the last record's seq reaches exactly to the next
    segment's ``start_seq`` (a short interior segment means durable records
    were lost, which the torn-tail rule does not excuse).

    Raises:
        JournalError: on an empty directory, any single-segment damage, or
            a cross-segment discontinuity.
    """
    segments = list_segments(directory)
    if not segments:
        raise JournalError(f"no journal segments in {directory}")
    records: list[dict] = []
    for index, path in enumerate(segments):
        start_seq = segment_start_seq(path)
        segment_records = read_journal(path)
        last = index == len(segments) - 1
        if not segment_records:
            if last:
                continue  # freshly rotated, crashed before the first append
            raise JournalError(
                f"{path.name}: interior segment holds no records"
            )
        first_seq = segment_records[0]["seq"]
        if first_seq != start_seq:
            raise JournalError(
                f"{path.name}: first record seq {first_seq} does not match "
                f"the filename's start_seq {start_seq}"
            )
        if not last:
            next_start = segment_start_seq(segments[index + 1])
            end_seq = segment_records[-1]["seq"]
            if end_seq + 1 != next_start:
                raise JournalError(
                    f"{path.name}: segment ends at seq {end_seq} but the next "
                    f"segment starts at {next_start}; durable records are missing"
                )
        records.extend(segment_records)
    return records


def replay_records_from(directory: str | Path, from_seq: int) -> list[dict]:
    """The records with ``seq >= from_seq``, without reading earlier segments.

    This is the replay cursor: a recovering service knows the last sequence
    number its checkpoint covers and asks for everything after it. Segments
    wholly before the cursor are skipped by filename alone (and may already
    have been pruned - the cursor never needs them).

    Raises:
        JournalError: if ``from_seq`` is negative, or precedes the first
            retained segment (the records it asks for were pruned away).
    """
    if from_seq < 0:
        raise JournalError(f"replay cursor must be non-negative, got {from_seq}")
    segments = list_segments(directory)
    if not segments:
        raise JournalError(f"no journal segments in {directory}")
    if from_seq < segment_start_seq(segments[0]):
        raise JournalError(
            f"replay cursor {from_seq} precedes the first retained segment "
            f"({segments[0].name}); the records were pruned"
        )
    # Keep the last segment whose start_seq <= from_seq, plus everything after.
    keep_from = 0
    for index, path in enumerate(segments):
        if segment_start_seq(path) <= from_seq:
            keep_from = index
    records: list[dict] = []
    for index in range(keep_from, len(segments)):
        path = segments[index]
        segment_records = read_journal(path)
        last = index == len(segments) - 1
        if not segment_records and not last:
            raise JournalError(f"{path.name}: interior segment holds no records")
        if segment_records and segment_records[0]["seq"] != segment_start_seq(path):
            raise JournalError(
                f"{path.name}: first record seq {segment_records[0]['seq']} does "
                f"not match the filename's start_seq {segment_start_seq(path)}"
            )
        if not last and segment_records:
            next_start = segment_start_seq(segments[index + 1])
            if segment_records[-1]["seq"] + 1 != next_start:
                raise JournalError(
                    f"{path.name}: segment ends at seq {segment_records[-1]['seq']} "
                    f"but the next segment starts at {next_start}; durable "
                    "records are missing"
                )
        records.extend(r for r in segment_records if r["seq"] >= from_seq)
    return records


def prune_segments(directory: str | Path, keep_from_seq: int) -> int:
    """Delete segments whose records all precede ``keep_from_seq``.

    Called by retention once a durable checkpoint covers everything up to
    ``keep_from_seq``: replay will never ask for earlier records. A segment
    survives if any of its records could be >= ``keep_from_seq`` (i.e. the
    *next* segment's start_seq exceeds the cursor), and the last segment
    always survives (it is the append target). Returns segments deleted.
    """
    if keep_from_seq < 0:
        raise JournalError(f"retention cursor must be non-negative, got {keep_from_seq}")
    segments = list_segments(directory)
    deleted = 0
    for index in range(len(segments) - 1):
        next_start = segment_start_seq(segments[index + 1])
        if next_start <= keep_from_seq:
            try:
                segments[index].unlink()
            except OSError as exc:
                raise JournalError(
                    f"cannot prune segment {segments[index].name}: {exc}"
                ) from None
            deleted += 1
        else:
            break  # segments are ordered; nothing later is prunable either
    return deleted
