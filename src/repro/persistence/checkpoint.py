"""Checkpoints: versioned, schema-stamped snapshots of one mediated run.

A checkpoint document has four parts::

    {
      "schema": "repro-checkpoint",   # stamp: is this even one of ours?
      "version": 1,                   # format version; mismatches refuse
      "created_tick": 120,            # ticks executed when snapshotted
      "sim_time_s": 12.0,
      "recipe": { ... },              # how to BUILD the run (RunRecipe)
      "state":  { ... }               # how to RESTORE it (state_dict tree)
    }

The **recipe** holds everything needed to construct a fresh, identical
mediator - server config, policy name, sampler spec, seeds, fault plan,
resilience tunables. The **state** is the mediator's composite
:meth:`~repro.core.mediator.PowerMediator.state_dict`: every RNG stream,
ledger, cursor and counter. ``recipe.build()`` followed by
``mediator.load_state_dict(state)`` yields a mediator whose next tick is
bit-identical to what the checkpointed one would have produced.

Deliberately absent from the state: the profiling corpus, the trained
collaborative estimator, the population view and the fallback policy. They
are pure, deterministic functions of the recipe and rebuild lazily - this is
the "relearn cost avoided" the recovery accounting reports, since the
*calibration samples* (the expensive online measurements) do travel in the
candidate-set snapshots.

Writes are atomic (tmp file + fsync + rename), so a crash mid-checkpoint
leaves the previous checkpoint intact. Loads validate schema and version
before touching any field and fail with a one-line
:class:`~repro.errors.CheckpointError` naming the offending path - never a
traceback from deep inside a codec.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CheckpointError, ConfigurationError, ReproError
from repro.schema import Validator
from repro.core.mediator import PowerMediator
from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.resilience import ResilienceConfig
from repro.core.simulation import default_battery
from repro.engine import ENGINE_KINDS
from repro.faults.plan import FaultPlan
from repro.learning.sampling import sampler_from_spec
from repro.server.config import DEFAULT_SERVER_CONFIG, ServerConfig
from repro.server.server import SimulatedServer

#: Schema stamp written into every checkpoint document.
CHECKPOINT_SCHEMA = "repro-checkpoint"

#: Current checkpoint format version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1

_VALID = Validator(CheckpointError)

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(ServerConfig)}
_RESILIENCE_FIELDS = {f.name for f in dataclasses.fields(ResilienceConfig)}


@dataclass(frozen=True)
class RunRecipe:
    """Constructor-side description of one mediated run.

    Everything the mediator's ``__init__`` needs, as dumb serializable data.
    Drivers that want crash tolerance build their mediator *from* a recipe
    (``recipe.build()``) instead of calling the constructor directly, so the
    checkpoint layer never has to reverse-engineer a live object.

    Attributes:
        policy: Paper policy name (see
            :data:`~repro.core.policies.POLICY_NAMES`).
        p_cap_w: Initial power cap (later E1 changes live in the journal
            and the accountant's snapshot).
        config: Server hardware parameters.
        use_battery: Install :func:`~repro.core.simulation.default_battery`;
            ``None`` defers to ``policy.uses_esd``.
        sampler: A :func:`~repro.learning.sampling.sampler_spec` dict, or
            ``None`` for the mediator's default (stratified at 10%).
        use_oracle_estimates: Bypass the learning pipeline.
        power_noise_std_w / perf_noise_relative_std: Calibration noise.
        dt_s: Tick length.
        seed: Seed for calibration noise (and the server's sensors).
        faults: Optional fault plan injected during the run.
        resilience: Degraded-mode tunables, or ``None`` for defaults.
        engine: Server model implementation (``"scalar"``/``"vector"``).
            Bit-identical results, so restoring a checkpoint under either
            engine is legal; the recipe records the one the run requested.
    """

    policy: str
    p_cap_w: float
    config: ServerConfig = DEFAULT_SERVER_CONFIG
    use_battery: bool | None = None
    sampler: dict | None = None
    use_oracle_estimates: bool = False
    power_noise_std_w: float = 0.3
    perf_noise_relative_std: float = 0.02
    dt_s: float = 0.1
    seed: int = 0
    faults: FaultPlan | None = None
    resilience: ResilienceConfig | None = None
    engine: str = "scalar"

    @property
    def wants_battery(self) -> bool:
        """Whether :meth:`build` installs an ESD."""
        if self.use_battery is not None:
            return self.use_battery
        return make_policy(self.policy).uses_esd

    @property
    def sampler_fraction(self) -> float:
        """The calibration budget fraction this recipe's sampler spends."""
        if self.sampler is None:
            return 0.10
        return float(self.sampler["fraction"])

    def build(self) -> PowerMediator:
        """Construct a fresh mediator exactly as this recipe describes."""
        server = SimulatedServer(self.config, seed=self.seed, engine=self.engine)
        return PowerMediator(
            server,
            make_policy(self.policy),
            self.p_cap_w,
            battery=default_battery() if self.wants_battery else None,
            sampler=None if self.sampler is None else sampler_from_spec(self.sampler),
            use_oracle_estimates=self.use_oracle_estimates,
            power_noise_std_w=self.power_noise_std_w,
            perf_noise_relative_std=self.perf_noise_relative_std,
            dt_s=self.dt_s,
            seed=self.seed,
            faults=self.faults,
            resilience=self.resilience,
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "p_cap_w": self.p_cap_w,
            "config": dataclasses.asdict(self.config),
            "use_battery": self.use_battery,
            "sampler": self.sampler,
            "use_oracle_estimates": self.use_oracle_estimates,
            "power_noise_std_w": self.power_noise_std_w,
            "perf_noise_relative_std": self.perf_noise_relative_std,
            "dt_s": self.dt_s,
            "seed": self.seed,
            "faults": None
            if self.faults is None
            else {
                "seed": self.faults.seed,
                "faults": [spec.to_dict() for spec in self.faults.specs],
            },
            "resilience": None
            if self.resilience is None
            else dataclasses.asdict(self.resilience),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: dict, *, where: str = "recipe") -> "RunRecipe":
        """Rebuild a recipe, validating field by field.

        Raises:
            CheckpointError: naming the offending JSON path on any
                malformed, unknown, or semantically invalid field.
        """
        obj = _VALID.as_dict(data, where)
        policy = _VALID.choice(
            _VALID.require(obj, "policy", where), f"{where}.policy", POLICY_NAMES
        )
        config_raw = _VALID.as_dict(
            _VALID.require(obj, "config", where), f"{where}.config"
        )
        for key in config_raw:
            if key not in _CONFIG_FIELDS:
                _VALID.fail(f"{where}.config.{key}", "unknown server-config field")
        use_battery = obj.get("use_battery")
        if use_battery is not None:
            use_battery = _VALID.as_bool(use_battery, f"{where}.use_battery")
        sampler = obj.get("sampler")
        if sampler is not None:
            sampler = dict(_VALID.as_dict(sampler, f"{where}.sampler"))
            _VALID.as_number(
                _VALID.require(sampler, "fraction", f"{where}.sampler"),
                f"{where}.sampler.fraction",
            )
        faults_raw = obj.get("faults")
        faults = None
        if faults_raw is not None:
            try:
                faults = FaultPlan.from_json(json.dumps(faults_raw))
            except ReproError as exc:
                raise CheckpointError(f"{where}.faults: {exc}") from None
        resilience_raw = obj.get("resilience")
        resilience = None
        if resilience_raw is not None:
            resilience_raw = _VALID.as_dict(resilience_raw, f"{where}.resilience")
            for key in resilience_raw:
                if key not in _RESILIENCE_FIELDS:
                    _VALID.fail(
                        f"{where}.resilience.{key}", "unknown resilience field"
                    )
            resilience = ResilienceConfig(**resilience_raw)
        try:
            config = ServerConfig(**config_raw)
        except (ConfigurationError, TypeError) as exc:
            raise CheckpointError(f"{where}.config: {exc}") from None
        try:
            return cls(
                policy=policy,
                p_cap_w=_VALID.as_number(
                    _VALID.require(obj, "p_cap_w", where), f"{where}.p_cap_w"
                ),
                config=config,
                use_battery=use_battery,
                sampler=sampler,
                use_oracle_estimates=_VALID.as_bool(
                    obj.get("use_oracle_estimates", False),
                    f"{where}.use_oracle_estimates",
                ),
                power_noise_std_w=_VALID.as_number(
                    obj.get("power_noise_std_w", 0.3), f"{where}.power_noise_std_w"
                ),
                perf_noise_relative_std=_VALID.as_number(
                    obj.get("perf_noise_relative_std", 0.02),
                    f"{where}.perf_noise_relative_std",
                ),
                dt_s=_VALID.as_number(obj.get("dt_s", 0.1), f"{where}.dt_s"),
                seed=_VALID.as_int(obj.get("seed", 0), f"{where}.seed"),
                faults=faults,
                resilience=resilience,
                engine=_VALID.choice(
                    obj.get("engine", "scalar"), f"{where}.engine", ENGINE_KINDS
                ),
            )
        except ConfigurationError as exc:
            raise CheckpointError(f"{where}: {exc}") from None


# --------------------------------------------------------------- file layer


def checkpoint_filename(tick: int) -> str:
    """Canonical file name for the checkpoint taken at ``tick``."""
    return f"ckpt-{tick:08d}.json"


def write_checkpoint(
    directory: str | Path, mediator: PowerMediator, recipe: RunRecipe
) -> Path:
    """Atomically write a checkpoint of ``mediator`` into ``directory``.

    The document lands under :func:`checkpoint_filename` for the current
    tick; re-checkpointing the same tick overwrites (the content is
    identical by determinism). Atomicity is tmp + fsync + rename, so readers
    never observe a half-written checkpoint.

    Raises:
        CheckpointError: when the directory or file cannot be written.
    """
    directory = Path(directory)
    doc = {
        "schema": CHECKPOINT_SCHEMA,
        "version": CHECKPOINT_VERSION,
        "created_tick": mediator.tick_count,
        "sim_time_s": mediator.server.now_s,
        "recipe": recipe.to_dict(),
        "state": mediator.state_dict(),
    }
    path = directory / checkpoint_filename(mediator.tick_count)
    tmp = path.with_name(path.name + ".tmp")
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from None
    return path


def read_checkpoint(path: str | Path) -> dict:
    """Read and validate one checkpoint document.

    Validation is layered so every failure is a single clear line: file
    readability, JSON well-formedness, schema stamp, format version, then
    the presence and types of the top-level fields. The recipe and state
    trees are validated by their consumers
    (:meth:`RunRecipe.from_dict`, the component codecs).

    Raises:
        CheckpointError: on any of the above.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: not valid JSON ({exc})") from None
    obj = _VALID.as_dict(doc, "checkpoint")
    schema = _VALID.as_str(
        _VALID.require(obj, "schema", "checkpoint"), "checkpoint.schema"
    )
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: schema {schema!r} is not {CHECKPOINT_SCHEMA!r}; "
            "this is not a mediator checkpoint"
        )
    version = _VALID.as_int(
        _VALID.require(obj, "version", "checkpoint"), "checkpoint.version"
    )
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    _VALID.as_int(
        _VALID.require(obj, "created_tick", "checkpoint"), "checkpoint.created_tick"
    )
    _VALID.as_number(
        _VALID.require(obj, "sim_time_s", "checkpoint"), "checkpoint.sim_time_s"
    )
    _VALID.as_dict(_VALID.require(obj, "recipe", "checkpoint"), "checkpoint.recipe")
    _VALID.as_dict(_VALID.require(obj, "state", "checkpoint"), "checkpoint.state")
    return obj


def restore_mediator(doc: dict) -> PowerMediator:
    """Build and restore a mediator from a validated checkpoint document.

    Raises:
        CheckpointError: when the state tree does not fit the recipe's
            mediator (a checkpoint edited by hand, or cross-wired files).
    """
    recipe = RunRecipe.from_dict(doc["recipe"], where="checkpoint.recipe")
    mediator = recipe.build()
    try:
        mediator.load_state_dict(doc["state"])
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint.state: does not match its own recipe "
            f"({type(exc).__name__}: {exc})"
        ) from None
    return mediator


def latest_checkpoint(directory: str | Path) -> Path | None:
    """The most recent checkpoint in ``directory``, or ``None``.

    Checkpoint names embed the zero-padded tick, so lexicographic order is
    creation order.
    """
    candidates = sorted(Path(directory).glob("ckpt-*.json"))
    return candidates[-1] if candidates else None
