"""PowerMediator: the top-level framework object (the paper's Fig. 6).

One mediator manages one server under one policy:

* it owns the **utility pipeline** - an exhaustively profiled corpus of
  previously seen applications, a trained collaborative estimator, and the
  online sampler that calibrates each arriving application;
* it reacts to the **events** the Accountant raises (E1 cap change, E2
  arrival, E3 departure, E4 phase change) by re-calibrating and/or
  re-allocating;
* every allocation epoch it builds a :class:`~repro.core.policies.PolicyContext`,
  asks the policy for an :class:`~repro.core.coordinator.AllocationPlan`,
  and hands the plan to the Coordinator, which executes it tick by tick;
* it records a per-tick **timeline** (powers, knobs, battery state) from
  which every figure of the paper is rebuilt.

Overheads are charged honestly: an arriving application spends the
calibration/re-allocation latency (~800 ms on the paper's server) suspended
while the rest of the system keeps running under the old plan, exactly as the
paper's Fig. 11a timeline shows.

Resilience (see :mod:`repro.core.resilience`): when constructed with a
:class:`~repro.faults.plan.FaultPlan`, the mediator drives a
:class:`~repro.faults.injector.FaultInjector` each tick and survives what it
breaks. Wall power is *sensed* through the psys energy counter
(wraparound-safe counter differencing, optionally filtered by telemetry
faults) rather than read from the engine's breakdown; a
:class:`~repro.core.resilience.TelemetryWatchdog` downgrades planning to a
widened guard band when the sensor goes stale; an
:class:`~repro.core.resilience.ActuationRetrier` re-drives unverified knob
writes with exponential backoff; a detected cap breach triggers the
coordinator's emergency floor-throttle within the same tick and only a
breach persisting into the next tick raises
:class:`~repro.errors.SimulationError`. Breach detection itself uses the
engine's true wall power - the stand-in for the trusted out-of-band power
monitor (CPLD/BMC) real servers carry precisely because in-band telemetry
can lie.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.adversary.engine import AdversaryEngine
from repro.adversary.plan import AdversarySchedule, AdversarySpec
from repro.core.accountant import Accountant
from repro.core.coordinator import AllocationPlan, CoordinationMode, Coordinator, TimeSlot
from repro.core.events import DepartureEvent, Event, PhaseChangeEvent
from repro.core.policies import AppResAwarePolicy, Policy, PolicyContext
from repro.core.resilience import (
    ActuationRetrier,
    FaultStats,
    ResilienceConfig,
    TelemetryWatchdog,
)
from repro.core.trust import (
    AppObservation,
    DefenseConfig,
    TrustScorer,
    TrustState,
)
from repro.core.utility import CandidateSet
from repro.esd.battery import LeadAcidBattery
from repro.esd.controller import DutyCycle, EsdController, compute_duty_cycle
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.learning.collaborative import CollaborativeEstimator
from repro.learning.crossval import build_exhaustive_corpus
from repro.learning.matrix import PreferenceMatrix
from repro.learning.sampling import Sampler, StratifiedSampler
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiling import PhaseProfiler
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.server.config import KnobSetting
from repro.server.rapl import energy_delta_j
from repro.server.server import ApplicationHandle, SimulatedServer
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import PhasedProfile
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class TickRecord:
    """One timeline sample (the raw material of Figs. 8, 10, 11, 12).

    Attributes:
        time_s: End-of-tick simulation time.
        p_cap_w: Cap in force.
        wall_w: Server wall power.
        mode: Coordination mode in force.
        app_power_w: Per-app instantaneous ``P_X``.
        app_knobs: Per-app knob settings (running apps only).
        progressed: Work completed this tick per app.
        battery_soc: Battery state of charge (``None`` without an ESD).
        observed_wall_w: What the wall-power *sensor* reported this tick
            (``None`` for a dropped sample); equals ``wall_w`` on a healthy
            run.
        degraded: Whether the telemetry watchdog had the mediator in
            degraded mode during this tick.
        breach: Whether true wall power exceeded the cap this tick (the
            emergency throttle fired in response).
    """

    time_s: float
    p_cap_w: float
    wall_w: float
    mode: CoordinationMode
    app_power_w: dict[str, float]
    app_knobs: dict[str, KnobSetting]
    progressed: dict[str, float]
    battery_soc: float | None
    observed_wall_w: float | None = None
    degraded: bool = False
    breach: bool = False


def _tick_record_to_dict(record: TickRecord) -> dict:
    """JSON form of one timeline sample (checkpoint codec)."""
    return {
        "time_s": float(record.time_s),
        "p_cap_w": float(record.p_cap_w),
        "wall_w": float(record.wall_w),
        "mode": record.mode.value,
        "app_power_w": {name: float(w) for name, w in record.app_power_w.items()},
        "app_knobs": {name: knob.to_json() for name, knob in record.app_knobs.items()},
        "progressed": {name: float(w) for name, w in record.progressed.items()},
        "battery_soc": None if record.battery_soc is None else float(record.battery_soc),
        "observed_wall_w": (
            None if record.observed_wall_w is None else float(record.observed_wall_w)
        ),
        "degraded": record.degraded,
        "breach": record.breach,
    }


def _tick_record_from_dict(data: dict) -> TickRecord:
    """Inverse of :func:`_tick_record_to_dict`."""
    soc = data["battery_soc"]
    observed = data["observed_wall_w"]
    return TickRecord(
        time_s=float(data["time_s"]),
        p_cap_w=float(data["p_cap_w"]),
        wall_w=float(data["wall_w"]),
        mode=CoordinationMode(data["mode"]),
        app_power_w={name: float(w) for name, w in data["app_power_w"].items()},
        app_knobs={
            name: KnobSetting.from_json(raw) for name, raw in data["app_knobs"].items()
        },
        progressed={name: float(w) for name, w in data["progressed"].items()},
        battery_soc=None if soc is None else float(soc),
        observed_wall_w=None if observed is None else float(observed),
        degraded=bool(data["degraded"]),
        breach=bool(data["breach"]),
    )


def _handle_to_dict(handle: ApplicationHandle) -> dict:
    """JSON form of a departed application's final handle."""
    return {
        "profile": handle.profile.to_dict(),
        "admitted_at_s": handle.admitted_at_s,
        "work_done": handle.work_done,
        "completed": handle.completed,
        "completed_at_s": handle.completed_at_s,
        "resume_debt_s": handle.resume_debt_s,
        "resumes": handle.resumes,
        "hung": handle.hung,
    }


def _handle_from_dict(name: str, data: dict) -> ApplicationHandle:
    """Inverse of :func:`_handle_to_dict`."""
    completed_at = data["completed_at_s"]
    return ApplicationHandle(
        name=name,
        profile=WorkloadProfile.from_dict(data["profile"]),
        admitted_at_s=float(data["admitted_at_s"]),
        work_done=float(data["work_done"]),
        completed=bool(data["completed"]),
        completed_at_s=None if completed_at is None else float(completed_at),
        resume_debt_s=float(data["resume_debt_s"]),
        resumes=int(data["resumes"]),
        hung=bool(data["hung"]),
    )


@dataclass
class ManagedApp:
    """Mediator-side record of one application under management.

    Attributes:
        profile: Current profile (phased workloads swap it at boundaries).
        phased: The phase script, when the workload is dynamic.
        arrived_at_s: Admission time.
        peak_rate: Uncapped rate of the *current* profile (the normalization
            denominator for this app's throughput).
    """

    profile: WorkloadProfile
    phased: PhasedProfile | None
    arrived_at_s: float
    peak_rate: float


class PowerMediator:
    """Power-struggle mediation for one server under one policy.

    Args:
        server: The server to manage.
        policy: One of the paper's five schemes.
        p_cap_w: Initial power cap (E1 messages can change it later).
        battery: The server's ESD; required by ESD-aware policies.
        corpus: Previously-seen-application matrices; defaults to an
            exhaustive profiling of the full catalog *excluding* nothing -
            experiments studying cold-start can pass their own.
        sampler: Online sampling strategy for calibration (default:
            stratified at the paper's 10%).
        use_oracle_estimates: Bypass the learning pipeline and hand policies
            the true response surfaces; used to separate policy quality from
            estimation error in ablations.
        power_noise_std_w / perf_noise_relative_std: Measurement noise on
            online calibration samples.
        dt_s: Tick length for :meth:`run_for`.
        seed: Seed for calibration noise.
        faults: Optional fault plan; when given, a
            :class:`~repro.faults.injector.FaultInjector` degrades the
            substrate on schedule and the resilience layer earns its keep.
        resilience: Degraded-mode tunables (defaults are sensible).
        adversaries: Optional strategic-tenant schedule; an
            :class:`~repro.adversary.engine.AdversaryEngine` executes it
            against the server each tick. Attacks act purely through the
            substrate (parasitic draw, inflated heartbeats) - the mediator's
            only countermeasure is the TrustScorer.
        defense: TrustScorer tunables; defenses are *on by default* and
            cost nothing on honest runs (the scorer is pure bookkeeping and
            draws no RNG). Pass ``DefenseConfig(enabled=False)`` to study
            undefended behaviour.
    """

    def __init__(
        self,
        server: SimulatedServer,
        policy: Policy,
        p_cap_w: float,
        *,
        battery: LeadAcidBattery | None = None,
        corpus: PreferenceMatrix | None = None,
        sampler: Sampler | None = None,
        use_oracle_estimates: bool = False,
        power_noise_std_w: float = 0.3,
        perf_noise_relative_std: float = 0.02,
        dt_s: float = 0.1,
        seed: int = 0,
        faults: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        trace_bus: TraceBus | None = None,
        adversaries: AdversarySchedule | None = None,
        defense: DefenseConfig | None = None,
        oracle_cache: dict | None = None,
    ) -> None:
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if policy.uses_esd and battery is None:
            raise ConfigurationError(f"policy {policy.name!r} requires a battery")
        self._server = server
        self._policy = policy
        self._battery = battery
        self._dt_s = dt_s
        self._rng = np.random.default_rng(seed)
        self._power_noise_std_w = power_noise_std_w
        self._perf_noise_relative_std = perf_noise_relative_std
        self._sampler = sampler if sampler is not None else StratifiedSampler(0.10, seed=seed)
        self._use_oracle = use_oracle_estimates

        self._metrics = MetricsRegistry()
        self._profiler = PhaseProfiler()
        self._trace = NULL_TRACE_BUS
        self._timeline: list[TickRecord] = []

        self._coordinator = Coordinator(server)
        self._accountant = Accountant(server)
        if trace_bus is not None:
            self.attach_trace_bus(trace_bus)
        self._accountant.notify_cap_change(p_cap_w)

        self._corpus = (
            corpus
            if corpus is not None
            else build_exhaustive_corpus(server.config, list(CATALOG.values()))
        )
        #: Optional fleet-wide cache of oracle CandidateSets, keyed by
        #: (profile, config, width-restriction). CandidateSet construction is
        #: pure and deterministic, so identical servers running the same
        #: workload share one set instead of rebuilding it per mediator at
        #: every allocation epoch. Pass one dict to every mediator in a fleet.
        self._oracle_cache = oracle_cache
        self._estimator: CollaborativeEstimator | None = None
        self._population: CandidateSet | None = None
        self._estimates: dict[str, CandidateSet] = {}
        self._oracle: dict[str, CandidateSet] = {}
        self._managed: dict[str, ManagedApp] = {}
        self._finished: dict[str, ApplicationHandle] = {}
        self._finished_peaks: dict[str, float] = {}
        self._calibration_pending_s = 0.0

        self._resilience_cfg = resilience if resilience is not None else ResilienceConfig()
        self._injector = (
            FaultInjector(faults, server, battery=battery) if faults is not None else None
        )
        self._watchdog = TelemetryWatchdog(self._resilience_cfg)
        self._retrier = ActuationRetrier(server.knobs, self._resilience_cfg)
        self._fault_stats = FaultStats(self._metrics)
        self._fallback_policy: Policy | None = None
        self._actuation_faulted: set[str] = set()
        self._breach_last_tick = False
        self._last_psys_energy_j = server.rapl.read_energy_j("psys")
        self._safe_hold_ticks = 0

        self._adversary = AdversaryEngine(server, adversaries)
        self._trust = TrustScorer(defense)

    # ------------------------------------------------------------ accessors

    @property
    def server(self) -> SimulatedServer:
        return self._server

    @property
    def policy(self) -> Policy:
        return self._policy

    @property
    def p_cap_w(self) -> float:
        cap = self._accountant.p_cap_w
        assert cap is not None  # set in __init__
        return cap

    @property
    def coordinator(self) -> Coordinator:
        return self._coordinator

    @property
    def accountant(self) -> Accountant:
        return self._accountant

    @property
    def timeline(self) -> list[TickRecord]:
        """The recorded per-tick history (live list; treat as read-only)."""
        return self._timeline

    @property
    def battery(self) -> LeadAcidBattery | None:
        return self._battery

    @property
    def fault_stats(self) -> FaultStats:
        """Resilience counters for this run (live object)."""
        return self._fault_stats

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self._injector

    @property
    def trace_bus(self) -> TraceBus:
        """The attached trace sink (the shared no-op bus by default)."""
        return self._trace

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry (resilience counters included)."""
        return self._metrics

    @property
    def profiler(self) -> PhaseProfiler:
        """Wall-clock timers around the control loop's phases."""
        return self._profiler

    def attach_trace_bus(self, bus: TraceBus) -> None:
        """Route this mediator's (and its components') events to ``bus``.

        May be called mid-run - the supervisor re-attaches after a warm
        restart. The bus cursor is synced to this mediator's position: the
        cursor an uninterrupted run would have between ticks is the *start*
        time of the last executed tick, which keeps events emitted before
        the next tick (cap changes, admissions, replayed commands) stamped
        identically to an uninterrupted run's.
        """
        self._trace = bus
        self._coordinator.trace_bus = bus
        self._accountant.trace_bus = bus
        if self._timeline:
            last = self._timeline[-1]
            bus.begin_tick(len(self._timeline) - 1, last.time_s - self._dt_s)
        else:
            bus.begin_tick(0, self._server.now_s)

    def export_metrics(self) -> dict:
        """The run's metrics JSON: registry plus the per-phase profile.

        Counters/gauges/histograms are deterministic per seed; the
        ``profile`` section is wall-clock and is not.
        """
        self._metrics.gauge("mediator.ticks").set(float(len(self._timeline)))
        self._metrics.gauge("mediator.managed_apps").set(float(len(self._managed)))
        if self._battery is not None:
            self._metrics.gauge("esd.soc").set(self._battery.soc)
        # Vector models count scalar-superclass fallbacks (off-grid queries
        # that silently bypass the fast path). Sync them into the registry so
        # they show up in metrics instead of only as mystery slowdowns. The
        # counter is created on first fallback only: honest on-grid runs keep
        # a registry identical to the scalar engine's.
        fallbacks = getattr(self._server.perf_model, "fallbacks", 0) + getattr(
            self._server.power_model, "fallbacks", 0
        )
        if fallbacks:
            counter = self._metrics.counter("engine.fallback")
            if fallbacks > counter.value:
                counter.inc(fallbacks - counter.value)
        doc = self._metrics.to_json()
        doc["profile"] = self._profiler.report()
        return doc

    @property
    def degraded_telemetry(self) -> bool:
        """Whether the telemetry watchdog currently distrusts the sensor."""
        return self._watchdog.degraded

    @property
    def adversary_engine(self) -> AdversaryEngine:
        """The strategic-tenant runtime (empty on honest runs)."""
        return self._adversary

    @property
    def trust(self) -> TrustScorer:
        """The defense's trust scorer (live object)."""
        return self._trust

    def register_adversary(self, spec: AdversarySpec) -> None:
        """Attach a strategic-behaviour spec to a (present or future) tenant.

        Service mode calls this at admission time for adversarial clients;
        experiments may also call it before :meth:`add_application`.

        Raises:
            AdversaryError: when the app already has a *different* spec
                (re-registering an identical one is a no-op, so journal
                replay is idempotent).
        """
        self._adversary.register(spec)

    @property
    def dt_s(self) -> float:
        """Tick length (the supervisor's journal granularity)."""
        return self._dt_s

    @property
    def tick_count(self) -> int:
        """Ticks executed so far (== recorded timeline length)."""
        return len(self._timeline)

    @property
    def safe_hold_remaining(self) -> int:
        """Ticks left in the post-restart guard-banded safe posture."""
        return self._safe_hold_ticks

    def managed_apps(self) -> list[str]:
        """Applications currently under management, sorted."""
        return sorted(self._managed)

    def finished_handle(self, app: str) -> ApplicationHandle:
        """Final handle of a departed application.

        Raises:
            SchedulingError: if the app never finished here.
        """
        try:
            return self._finished[app]
        except KeyError:
            raise SchedulingError(f"{app!r} has not finished on this server") from None

    def peak_rate_of(self, app: str) -> float:
        """The uncapped rate used to normalize the app's throughput.

        For departed applications the rate recorded at departure is used,
        so narrow-group apps stay normalized to the peak of the core group
        they actually had.
        """
        if app in self._managed:
            return self._managed[app].peak_rate
        if app in self._finished:
            return self._finished_peaks[app]
        raise SchedulingError(f"{app!r} is not known to this mediator")

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot every piece of mutable mediation state.

        Together with the constructor recipe (server config, policy name,
        sampler spec, seeds, fault plan - see
        :mod:`repro.persistence.checkpoint`), this is sufficient to rebuild
        a mediator that continues the run **bit-identically**: all RNG
        streams, the event ledger, the coordinator's execution cursor, the
        battery's charge/fade accounting, and the resilience counters travel
        in full. Derived artifacts (corpus, trained estimator, population
        view, fallback policy) are deliberately absent - they are
        deterministic functions of the recipe and rebuild lazily.
        """
        esd = self._coordinator.esd_controller
        return {
            "rng": self._rng.bit_generator.state,
            "server": self._server.state_dict(),
            "battery": None if self._battery is None else self._battery.state_dict(),
            "managed": {
                name: {
                    "profile": m.profile.to_dict(),
                    "phased": None
                    if m.phased is None
                    else [[t, p.to_dict()] for t, p in m.phased.segments],
                    "segment": self._segment_index(m),
                    "arrived_at_s": m.arrived_at_s,
                    "peak_rate": float(m.peak_rate),
                }
                for name, m in self._managed.items()
            },
            "finished": {
                name: _handle_to_dict(handle) for name, handle in self._finished.items()
            },
            "finished_peaks": {
                name: float(rate) for name, rate in self._finished_peaks.items()
            },
            "estimates": {name: cs.to_dict() for name, cs in self._estimates.items()},
            "oracle": {name: cs.to_dict() for name, cs in self._oracle.items()},
            "timeline": [_tick_record_to_dict(r) for r in self._timeline],
            "calibration_pending_s": self._calibration_pending_s,
            "coordinator": self._coordinator.state_dict(),
            "esd_controller": None if esd is None else esd.state_dict(),
            "accountant": self._accountant.state_dict(),
            "watchdog": self._watchdog.state_dict(),
            "retrier": self._retrier.state_dict(),
            "fault_stats": self._fault_stats.state_dict(),
            "injector": None if self._injector is None else self._injector.state_dict(),
            "actuation_faulted": sorted(self._actuation_faulted),
            "breach_last_tick": self._breach_last_tick,
            "last_psys_energy_j": self._last_psys_energy_j,
            "safe_hold_ticks": self._safe_hold_ticks,
            "adversary": self._adversary.state_dict(),
            "trust": self._trust.state_dict(),
        }

    @staticmethod
    def _segment_index(managed: ManagedApp) -> int | None:
        """Identity index of the current profile among the phased segments.

        ``None`` when the app is not phased *or* when the current profile is
        the caller's own instance (equal to segment 0 but not yet swapped by
        :meth:`_check_phase_boundaries`) - the restore keeps the freshly
        parsed profile distinct in that case, replicating the original
        identity relations exactly.
        """
        if managed.phased is None:
            return None
        for i, (_, profile) in enumerate(managed.phased.segments):
            if profile is managed.profile:
                return i
        return None

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        The mediator must have been built from the same recipe (same config,
        policy, seeds, fault plan) and not yet run. Component snapshots are
        installed without re-running admission, adoption, or calibration -
        those paths have side effects (placement, actuation, RNG draws) the
        snapshots already reflect. Afterwards the next :meth:`step` produces
        the same tick the checkpointed run would have produced.
        """
        self._rng.bit_generator.state = state["rng"]
        self._server.load_state_dict(state["server"])
        if self._battery is not None and state["battery"] is not None:
            self._battery.load_state_dict(state["battery"])
        self._managed = {}
        for name, fields in state["managed"].items():
            profile = WorkloadProfile.from_dict(fields["profile"])
            phased = None
            if fields["phased"] is not None:
                phased = PhasedProfile(
                    [
                        (float(t), WorkloadProfile.from_dict(p))
                        for t, p in fields["phased"]
                    ]
                )
                if fields["segment"] is not None:
                    profile = phased.segments[int(fields["segment"])][1]
            # Re-link the engine handle to the mediator's instance: phase
            # boundary detection compares profiles by identity.
            self._server.handle_of(name).profile = profile
            self._managed[name] = ManagedApp(
                profile=profile,
                phased=phased,
                arrived_at_s=float(fields["arrived_at_s"]),
                peak_rate=float(fields["peak_rate"]),
            )
        self._finished = {
            name: _handle_from_dict(name, data)
            for name, data in state["finished"].items()
        }
        self._finished_peaks = {
            name: float(rate) for name, rate in state["finished_peaks"].items()
        }
        self._estimates = {
            name: CandidateSet.from_dict(data)
            for name, data in state["estimates"].items()
        }
        self._oracle = {
            name: CandidateSet.from_dict(data) for name, data in state["oracle"].items()
        }
        self._timeline = [_tick_record_from_dict(r) for r in state["timeline"]]
        self._calibration_pending_s = float(state["calibration_pending_s"])
        esd = None
        if state["esd_controller"] is not None:
            assert self._battery is not None
            cycle = state["esd_controller"]["cycle"]
            esd = EsdController(
                self._battery,
                DutyCycle(
                    off_s=float(cycle["off_s"]),
                    on_s=float(cycle["on_s"]),
                    charge_w=float(cycle["charge_w"]),
                    discharge_w=float(cycle["discharge_w"]),
                ),
            )
            esd.load_state_dict(state["esd_controller"])
        self._coordinator.load_state_dict(state["coordinator"], esd_controller=esd)
        self._accountant.load_state_dict(
            state["accountant"], plan=self._coordinator.plan
        )
        self._watchdog.load_state_dict(state["watchdog"])
        self._retrier.load_state_dict(state["retrier"])
        self._fault_stats.load_state_dict(state["fault_stats"])
        if self._injector is not None and state["injector"] is not None:
            self._injector.load_state_dict(state["injector"])
        self._actuation_faulted = set(state["actuation_faulted"])
        self._breach_last_tick = bool(state["breach_last_tick"])
        self._last_psys_energy_j = float(state["last_psys_energy_j"])
        self._safe_hold_ticks = int(state["safe_hold_ticks"])
        # Pre-adversary checkpoints lack these keys: default to honest.
        if "adversary" in state:
            self._adversary.load_state_dict(state["adversary"])
        if "trust" in state:
            self._trust.load_state_dict(state["trust"])

    # ------------------------------------------------------------- messages

    def set_power_cap(self, new_cap_w: float) -> None:
        """E1: adopt a new cap and re-allocate immediately."""
        self._accountant.notify_cap_change(new_cap_w)
        if self._managed:
            self.reallocate()

    def add_application(
        self,
        profile: WorkloadProfile,
        *,
        phased: PhasedProfile | None = None,
        skip_overhead: bool = False,
        group_width: int | None = None,
    ) -> None:
        """E2: admit, calibrate, and re-allocate.

        The new application sits suspended for the calibration/re-allocation
        latency (charged on the next :meth:`run_for` ticks) while incumbents
        keep running under the old plan - matching the paper's measured
        ~800 ms settling window.

        Args:
            profile: The application (or the initial segment when phased).
            phased: Optional phase script driving E4 events later.
            skip_overhead: Skip the latency charge (used by tests).
            group_width: Cores to reserve (default: the knob maximum).
                Narrower groups admit more than two applications with full
                direct-resource isolation; the app's knob space, candidate
                sets and allocations are restricted accordingly.
        """
        if phased is not None and phased.initial != profile:
            raise ConfigurationError("profile must be the phased workload's initial segment")
        self._accountant.notify_arrival(profile)
        self._server.admit(profile, start_suspended=True, group_width=group_width)
        self._managed[profile.name] = ManagedApp(
            profile=profile,
            phased=phased,
            arrived_at_s=self._server.now_s,
            peak_rate=self._width_peak_rate(profile, profile.name),
        )
        self._refresh_views(profile.name)
        if not skip_overhead:
            self._calibration_pending_s += self._server.config.reallocation_latency_s
        self.reallocate()

    def remove_application(self, app: str, *, completed: bool = False) -> ApplicationHandle:
        """E3 (forced variant): remove an app and re-allocate the headroom."""
        handle = self._server.remove(app)
        self._finished[app] = handle
        self._finished_peaks[app] = self._managed[app].peak_rate
        self._managed.pop(app, None)
        self._estimates.pop(app, None)
        self._oracle.pop(app, None)
        self._retrier.forget(app)
        self._actuation_faulted.discard(app)
        self._adversary.forget(app)
        self._trust.forget(app)
        if not completed:
            # Natural completions were already logged by the Accountant.
            self._accountant._log.append(  # noqa: SLF001 - mediator is the owner
                DepartureEvent(time_s=self._server.now_s, app=app, completed=False)
            )
            self._trace.emit(
                "departure",
                {"at_s": self._server.now_s, "app": app, "completed": False},
            )
        if self._managed:
            self.reallocate()
        return handle

    # ----------------------------------------------------------- allocation

    def ensure_plan(self) -> None:
        """Adopt an IDLE plan if none exists, so an empty server can tick.

        Closed-loop runs admit an application (which plans) before the
        first tick; an open-loop service must be able to tick an empty
        server while it waits for arrivals. Idempotent - a no-op once any
        plan (idle or real) has been adopted or restored.
        """
        if self._coordinator.plan is None:
            self._coordinator.adopt(
                AllocationPlan(mode=CoordinationMode.IDLE, p_cap_w=self.p_cap_w)
            )

    def reallocate(self) -> AllocationPlan:
        """Build a context, plan, and hand the plan to the Coordinator.

        Degraded modes bend this path in two ways. While the telemetry
        watchdog distrusts the wall sensor, planning targets the *effective*
        cap (true cap minus the degraded guard band) so estimation slack
        cannot push the unobservable wall over the real limit. While the
        battery is untrusted (outage window, or detached), an ESD-aware
        policy is replaced by the App+Res-Aware fallback - consolidated
        duty cycling (R4) needs a battery it can bank on, so the plan
        degrades to spatial/temporal coordination (R3a/R3b) until the ESD
        recovers.

        The defense layer bends it a third way: quarantined applications
        are omitted from the context entirely (the coordinator suspends
        them by omission), SUSPECT/PROBATION apps plan at reduced utility
        weight, and the effective cap carries the defense guard band while
        anyone is off full trust.
        """
        if not self._managed:
            raise SchedulingError("no applications to allocate power to")
        quarantined = set(self._trust.quarantined_apps())
        planned = [n for n in sorted(self._managed) if n not in quarantined]
        policy = self._policy
        battery = self._battery
        if policy.uses_esd and not self._battery_trusted():
            policy = self._get_fallback_policy()
            battery = None
        with self._profiler.phase("allocate"):
            if not planned:
                # Every tenant is quarantined: hold the server idle rather
                # than hand the budget to known liars.
                plan = AllocationPlan(
                    mode=CoordinationMode.IDLE, p_cap_w=self._effective_cap_w()
                )
            else:
                ctx = PolicyContext(
                    config=self._server.config,
                    p_cap_w=self._effective_cap_w(),
                    oracle={n: self._oracle[n] for n in planned},
                    estimates={n: self._estimates[n] for n in planned},
                    population=self._get_population(),
                    battery=battery,
                    trust_weights=self._trust.weights() or None,
                )
                plan = self._guard_plan(policy.plan(ctx))
        esd_controller = None
        if plan.mode is CoordinationMode.ESD:
            assert self._battery is not None and plan.duty_cycle is not None
            esd_controller = EsdController(self._battery, plan.duty_cycle)
        previous = self._coordinator.plan
        with self._profiler.phase("actuate"):
            self._coordinator.adopt(plan, esd_controller=esd_controller)
        self._accountant.adopt_plan(plan)
        self._metrics.counter("mediator.reallocations").inc()
        self._metrics.counter(f"coordination.adoptions.{plan.mode.value}").inc()
        self._emit_allocation(plan, previous)
        return plan

    def _emit_allocation(self, plan: AllocationPlan, previous: AllocationPlan | None) -> None:
        """Trace the adopted plan (and the mode transition, when one occurred)."""
        if not self._trace.active:
            return
        prev_mode = None if previous is None else previous.mode.value
        if prev_mode != plan.mode.value:
            self._trace.emit(
                "mode-switch", {"from_mode": prev_mode, "to_mode": plan.mode.value}
            )
        payload: dict = {
            "mode": plan.mode.value,
            "cap_w": plan.p_cap_w,
            "knobs": {name: knob.to_json() for name, knob in plan.knobs.items()},
            "slots": len(plan.slots),
        }
        if plan.allocation is not None:
            payload["budget_w"] = plan.allocation.budget_w
            payload["objective"] = plan.allocation.objective
            payload["apps"] = {
                name: {"power_w": a.power_w, "excluded": a.excluded}
                for name, a in plan.allocation.apps.items()
            }
        if plan.duty_cycle is not None:
            payload["duty_cycle"] = {
                "on_s": plan.duty_cycle.on_s,
                "off_s": plan.duty_cycle.off_s,
                "charge_w": plan.duty_cycle.charge_w,
                "discharge_w": plan.duty_cycle.discharge_w,
            }
        self._trace.emit("allocation", payload)

    def _battery_trusted(self) -> bool:
        """Whether R4 consolidated duty cycling may rely on the ESD now."""
        if self._battery is None or not self._battery.available:
            return False
        if self._injector is not None and "battery" in self._injector.active_kinds():
            return False
        return True

    def _effective_cap_w(self) -> float:
        """The cap planning targets: reduced while telemetry is degraded,
        while a post-restart safe hold is in force, or while the defense
        distrusts any tenant (an undetected accomplice may still be burning
        unaccounted watts)."""
        cap = self.p_cap_w
        if self._watchdog.degraded or self._safe_hold_ticks > 0:
            cap *= 1.0 - self._resilience_cfg.degraded_guard_band
        if self._trust.distrusted():
            cap *= 1.0 - self._trust.config.guard_band
        return cap

    def begin_safe_hold(self, ticks: int) -> None:
        """Enter the guard-banded safe posture for the next ``ticks`` ticks.

        The supervisor calls this after a warm restart: the mediator was
        dead for a while, so the first allocations after recovery target the
        same reduced effective cap degraded telemetry would - covering any
        drift the checkpoint+journal could not see. A zero or negative count
        is a no-op (the default posture), keeping restored runs bit-identical
        to uninterrupted ones unless the caller opts in.
        """
        if ticks <= 0:
            return
        self._safe_hold_ticks = ticks
        if self._managed:
            self.reallocate()  # adopt the guard-banded cap immediately

    def _get_fallback_policy(self) -> Policy:
        if self._fallback_policy is None:
            self._fallback_policy = AppResAwarePolicy()
        return self._fallback_policy

    def _guard_plan(self, plan: AllocationPlan) -> AllocationPlan:
        """Per-application RAPL guard: enforce each app's allocated budget
        by *true* power.

        Utility-aware policies choose knobs from estimates; when estimation
        error makes a chosen knob's true draw exceed the app's budget, the
        hardware power limit would clamp it. The guard models that clamp by
        replacing the knob with the best true-power-feasible one under the
        same budget (and suspending the app when nothing fits). This is the
        mechanism that keeps the wall under the cap despite estimation
        error - the performance cost of bad estimates remains, through
        mis-divided budgets and under-used allocations.
        """
        if plan.mode is CoordinationMode.IDLE or plan.allocation is None:
            return plan

        def trimmed(name: str, knob: KnobSetting, budget_w: float) -> KnobSetting | None:
            oracle = self._oracle[name]
            if oracle.power_w[oracle.index_of(knob)] <= budget_w + 1e-9:
                return knob
            idx = oracle.best_index_under(budget_w)
            return oracle.knobs[idx] if idx is not None else None

        if plan.mode is CoordinationMode.SPACE:
            knobs: dict[str, KnobSetting] = {}
            for name, knob in plan.knobs.items():
                budget = plan.allocation.apps[name].power_w
                new = trimmed(name, knob, budget)
                if new is not None:
                    knobs[name] = new
            return AllocationPlan(
                mode=plan.mode,
                p_cap_w=plan.p_cap_w,
                allocation=plan.allocation,
                knobs=knobs,
            )

        if plan.mode is CoordinationMode.TIME:
            budget = self._server.config.dynamic_budget_w(plan.p_cap_w)
            slots = []
            for slot in plan.slots:
                slot_knobs: dict[str, KnobSetting] = {}
                apps = []
                for name in slot.apps:
                    new = trimmed(name, slot.knobs[name], budget)
                    if new is not None:
                        apps.append(name)
                        slot_knobs[name] = new
                if apps:
                    slots.append(
                        TimeSlot(apps=tuple(apps), duration_s=slot.duration_s, knobs=slot_knobs)
                    )
            if not slots:
                return AllocationPlan(
                    mode=CoordinationMode.IDLE,
                    p_cap_w=plan.p_cap_w,
                    allocation=plan.allocation,
                )
            return AllocationPlan(
                mode=plan.mode,
                p_cap_w=plan.p_cap_w,
                allocation=plan.allocation,
                slots=tuple(slots),
            )

        # ESD: trim the ON-phase knobs to their budgets, then recompute the
        # Eq. (5) schedule from the *true* ON-phase powers (the paper tunes
        # the duty cycle from measured draws).
        assert self._battery is not None
        knobs = {}
        true_sum = 0.0
        for name, knob in plan.knobs.items():
            budget = plan.allocation.apps[name].power_w
            new = trimmed(name, knob, budget)
            if new is not None:
                knobs[name] = new
                oracle = self._oracle[name]
                true_sum += float(oracle.power_w[oracle.index_of(new)])
        if not knobs:
            return AllocationPlan(
                mode=CoordinationMode.IDLE,
                p_cap_w=plan.p_cap_w,
                allocation=plan.allocation,
            )
        cfg = self._server.config
        cycle = compute_duty_cycle(
            p_idle_w=cfg.p_idle_w,
            p_cm_w=cfg.p_cm_w,
            sum_app_w=true_sum,
            p_cap_w=plan.p_cap_w,
            efficiency=self._battery.efficiency,
            period_s=cfg.duty_cycle_period_s,
        )
        return AllocationPlan(
            mode=plan.mode,
            p_cap_w=plan.p_cap_w,
            allocation=plan.allocation,
            knobs=knobs,
            duty_cycle=cycle,
        )

    # ------------------------------------------------------------- execution

    def run_for(self, duration_s: float) -> None:
        """Advance the simulation, handling events as they arise.

        Raises:
            ConfigurationError: on a non-positive duration.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        end = self._server.now_s + duration_s
        while self._server.now_s < end - 1e-9:
            self._one_tick()

    def step(self) -> None:
        """Advance exactly one tick (the supervisor's unit of progress)."""
        self._one_tick()

    def _one_tick(self) -> None:
        dt = self._dt_s
        self._trace.begin_tick(len(self._timeline), self._server.now_s)
        if self._injector is not None:
            with self._profiler.phase("faults"):
                self._apply_faults()
        # Calibration latency: the newest arrival stays suspended while the
        # measurement/optimization pipeline settles.
        if self._calibration_pending_s > 0:
            self._calibration_pending_s = max(0.0, self._calibration_pending_s - dt)
        if self._adversary.specs():
            with self._profiler.phase("adversary"):
                self._drive_adversaries()
        with self._profiler.phase("actuate"):
            self._service_actuation()
        with self._profiler.phase("coordinate"):
            action = self._coordinator.step(dt)
        # The knobs the engine is about to compute with; the defense checks
        # attribution against these, not against whatever a same-tick
        # emergency throttle may have actuated afterwards.
        tick_knobs = (
            {name: self._server.knobs.knob_of(name) for name in self._managed}
            if self._trust.config.enabled and self._managed
            else {}
        )
        with self._profiler.phase("engine"):
            result = self._server.tick(
                dt,
                esd_charge_w=action.esd_charge_w,
                esd_discharge_w=action.esd_discharge_w,
                deep_sleep=action.deep_sleep,
            )
        with self._profiler.phase("telemetry"):
            observed_w, fresh = self._sample_wall_power(dt)
            self._watch_telemetry(fresh)
            breach = self._police_cap(result)
        plan = self._coordinator.plan
        record = TickRecord(
            time_s=result.time_s,
            p_cap_w=self.p_cap_w,
            wall_w=result.breakdown.wall_w,
            mode=plan.mode if plan is not None else CoordinationMode.IDLE,
            app_power_w=dict(result.breakdown.app_w),
            app_knobs={
                name: self._server.knobs.knob_of(name)
                for name in result.breakdown.app_w
            },
            progressed=dict(result.progressed),
            battery_soc=self._battery.soc if self._battery is not None else None,
            observed_wall_w=observed_w,
            degraded=self._watchdog.degraded,
            breach=breach,
        )
        self._timeline.append(record)
        self._record_tick(record, action)
        if tick_knobs:
            # Must run before the phase-boundary swap: the evidence is
            # checked against the profile the engine actually ticked with.
            with self._profiler.phase("defense"):
                self._observe_trust(result, tick_knobs)
        self._check_phase_boundaries()
        with self._profiler.phase("events"):
            for event in self._accountant.poll(result, telemetry_fresh=fresh):
                self._handle_event(event)
        if self._safe_hold_ticks > 0:
            self._safe_hold_ticks -= 1
            if self._safe_hold_ticks == 0 and self._managed:
                self.reallocate()  # the hold expired: restore the full cap

    def _record_tick(self, record: TickRecord, action) -> None:
        """Feed the tick into the metrics registry and the trace bus."""
        self._metrics.counter("mediator.ticks").inc()
        self._metrics.histogram("mediator.wall_w").observe(record.wall_w)
        self._metrics.histogram("mediator.headroom_w").observe(
            record.p_cap_w - record.wall_w
        )
        if action.esd_charge_w > 0:
            self._metrics.histogram("esd.charge_w").observe(action.esd_charge_w)
        if action.esd_discharge_w > 0:
            self._metrics.histogram("esd.discharge_w").observe(action.esd_discharge_w)
        if not self._trace.active:
            return
        self._trace.emit(
            "tick",
            {
                "time_s": record.time_s,
                "cap_w": record.p_cap_w,
                "wall_w": record.wall_w,
                "mode": record.mode.value,
                "soc": record.battery_soc,
                "degraded": record.degraded,
                "breach": record.breach,
                "app_w": record.app_power_w,
            },
        )
        if action.esd_charge_w > 0 or action.esd_discharge_w > 0:
            self._trace.emit(
                "battery",
                {
                    "charge_w": action.esd_charge_w,
                    "discharge_w": action.esd_discharge_w,
                    "soc": record.battery_soc,
                },
            )

    # ------------------------------------------------------------- resilience

    def _apply_faults(self) -> None:
        """Advance the fault injector and journal its window transitions."""
        assert self._injector is not None
        now = self._server.now_s
        crashed, transitions = self._injector.begin_tick(now)
        battery_changed = False
        rapl_recovered = False
        for tr in transitions:
            kind, mode = tr.spec.kind, tr.spec.mode
            if tr.entered:
                self._accountant.notify_fault(kind, tr.target, detail=mode)
                if not tr.spec.instantaneous:
                    self._fault_stats.open_episode(kind, tr.target, now)
            else:
                self._accountant.notify_recovery(kind, tr.target, detail=mode)
                self._fault_stats.close_episode(kind, tr.target, now)
                if kind == "rapl":
                    rapl_recovered = True
            if kind == "battery":
                battery_changed = True
        for app in crashed:
            self._fault_stats.crashes += 1
            if app in self._managed:
                self.remove_application(app, completed=False)
        if battery_changed and self._managed and self._policy.uses_esd:
            # Degrade R4 to the fallback (or restore it) right away.
            self.reallocate()
        elif rapl_recovered and self._managed:
            # Apps defensively suspended (or escalated) while the actuator
            # was faulted stay parked until a plan re-actuates them; do it
            # now that writes verify again.
            self.reallocate()

    def _service_actuation(self) -> None:
        """Run the retry loop and journal actuation fault episodes."""
        now = self._server.now_s
        for app in self._server.knobs.failed_writes():
            if app not in self._actuation_faulted:
                self._actuation_faulted.add(app)
                self._accountant.notify_fault(
                    "actuation", app, detail="knob write failed readback verification"
                )
                self._fault_stats.open_episode("actuation", app, now)
        verified, escalated = self._retrier.service(self._fault_stats)
        for app in escalated:
            self._actuation_faulted.discard(app)
            self._accountant.notify_recovery(
                "actuation", app, detail="suspended after exhausting retries"
            )
            self._fault_stats.close_episode("actuation", app, now)
        still_failed = set(self._server.knobs.failed_writes())
        for app in sorted(self._actuation_faulted - still_failed):
            self._actuation_faulted.discard(app)
            self._accountant.notify_recovery(
                "actuation", app, detail="knob write verified"
            )
            self._fault_stats.close_episode("actuation", app, now)
        # A retry that verified may have left the app defensively suspended
        # by the coordinator; re-adopting the plan resumes it properly.
        if verified and self._managed and any(
            app in self._managed and self._server.knobs.is_suspended(app)
            for app in verified
        ):
            self.reallocate()

    def _sample_wall_power(self, dt_s: float) -> tuple[float | None, bool]:
        """Read the wall-power sensor: psys counter delta over the tick.

        Counter differencing is wraparound-safe (the 32-bit ``energy_uj``
        register wraps every ~54 s at the paper's 80 W cap). The true sample
        then passes through any active telemetry fault.
        """
        energy = self._server.rapl.read_energy_j("psys")
        true_sample = energy_delta_j(energy, self._last_psys_energy_j) / dt_s
        self._last_psys_energy_j = energy
        if self._injector is None:
            return true_sample, True
        value, fresh = self._injector.filter_wall_sample(true_sample)
        if value is None:
            self._fault_stats.dropped_samples += 1
        elif not fresh:
            self._fault_stats.stale_samples += 1
        return value, fresh

    def _watch_telemetry(self, fresh: bool) -> None:
        """Feed the watchdog; re-plan on degraded/recovered transitions."""
        transition = self._watchdog.observe(fresh)
        now = self._server.now_s
        if transition == "degraded":
            self._accountant.notify_fault(
                "telemetry-watchdog",
                detail="consecutive missing/stale wall samples; guard band widened",
            )
            self._fault_stats.open_episode("telemetry-watchdog", None, now)
            if self._managed:
                self.reallocate()  # adopt the reduced effective cap
        elif transition == "recovered":
            self._accountant.notify_recovery(
                "telemetry-watchdog", detail="fresh wall samples resumed"
            )
            self._fault_stats.close_episode("telemetry-watchdog", None, now)
            if self._managed:
                self.reallocate()  # restore the full cap
        if self._watchdog.degraded:
            self._fault_stats.degraded_ticks += 1

    def _police_cap(self, result) -> bool:
        """Detect a cap breach and respond within the same tick.

        Detection uses the engine's true wall power - the stand-in for a
        trusted out-of-band monitor, deliberately immune to telemetry
        faults. A first breach fires the coordinator's emergency floor
        throttle; a breach that *persists* into the next tick means the
        emergency path failed and the run is genuinely broken.
        """
        wall_w = result.breakdown.wall_w
        breach = wall_w > self.p_cap_w + 1e-6
        if breach:
            self._fault_stats.breach_ticks += 1
            self._fault_stats.open_episode("cap-breach", None, self._server.now_s)
            self._accountant.notify_fault(
                "cap-breach",
                detail=f"wall {wall_w:.3f} W over cap {self.p_cap_w:.3f} W",
            )
            if self._breach_last_tick:
                raise SimulationError(
                    f"wall power {wall_w:.3f} W still exceeds the cap "
                    f"{self.p_cap_w:.3f} W one tick after emergency throttling"
                )
            self._coordinator.emergency_throttle(self.p_cap_w)
            self._fault_stats.emergency_throttles += 1
        elif self._breach_last_tick:
            self._fault_stats.close_episode("cap-breach", None, self._server.now_s)
            self._accountant.notify_recovery(
                "cap-breach", detail="wall back under cap after emergency throttle"
            )
            if self._managed:
                self.reallocate()  # leave the emergency floors behind
        self._breach_last_tick = breach
        return breach

    # ---------------------------------------------------- adversary defense

    def _drive_adversaries(self) -> None:
        """Execute the registered attack specs for the coming tick."""
        esd = self._coordinator.esd_controller
        esd_on = bool(esd is not None and esd.in_on_phase)
        transitions = self._adversary.begin_tick(self._server.now_s, esd_on=esd_on)
        for app, kind, edge in transitions:
            self._metrics.counter(f"adversary.windows.{edge}").inc()
            self._trace.emit(
                f"adv-attack-{edge}",
                {"app": app, "kind": kind, "at_s": self._server.now_s},
            )

    def _observe_trust(self, result, tick_knobs: dict[str, KnobSetting]) -> None:
        """Feed one tick of evidence to the TrustScorer and act on it.

        Each managed app is cross-checked against the power/perf models the
        mediator already plans with. On any state-machine transition the
        posture changed, so the plan is rebuilt immediately (quarantine
        suspension, de-weighting, and the defense guard band all flow
        through :meth:`reallocate`).
        """
        observable = not self._server.heartbeats.in_blackout
        observations = []
        for name in sorted(self._managed):
            managed = self._managed[name]
            knob = tick_knobs.get(name)
            if knob is None:
                continue
            running = name in result.breakdown.app_w
            segment = self._segment_index(managed)
            observations.append(
                AppObservation(
                    app=name,
                    running=running,
                    claimed_rate=self._server.heartbeats.exact_rate(name),
                    attributed_w=result.breakdown.app_w.get(name, 0.0),
                    expected_w=self._server.power_model.app_power_w(
                        managed.profile, knob
                    ),
                    supported_rate=self._server.perf_model.rate(
                        managed.profile, knob
                    ),
                    fingerprint=(
                        knob.freq_ghz,
                        knob.cores,
                        knob.dram_power_w,
                        running,
                        -1 if segment is None else segment,
                    ),
                    observable=observable,
                )
            )
        transitions = self._trust.observe(len(self._timeline) - 1, observations)
        if not transitions:
            return
        trace_kind = {
            TrustState.SUSPECT: "adv-suspect",
            TrustState.QUARANTINED: "adv-quarantine",
            TrustState.PROBATION: "adv-probation",
            TrustState.TRUSTED: "adv-trusted",
        }
        for tr in transitions:
            self._metrics.counter(f"defense.transitions.{tr.to_state.value}").inc()
            self._trace.emit(
                trace_kind[tr.to_state],
                {
                    "app": tr.app,
                    "from": tr.from_state.value,
                    "score": tr.score,
                    "strikes": tr.strikes,
                },
            )
            if tr.to_state is TrustState.QUARANTINED:
                self._accountant.notify_fault(
                    "trust",
                    tr.app,
                    detail=f"{tr.from_state.value} -> {tr.to_state.value}",
                )
        self._metrics.gauge("defense.quarantined_apps").set(
            float(len(self._trust.quarantined_apps()))
        )
        # Only quarantine-machinery edges actuate a replan. A SUSPECT edge
        # must not: replanning changes the suspect's knob, which restarts
        # the efficiency-check cooldown - the defense's own actuation would
        # keep resetting its evidence and an inflator would oscillate at
        # SUSPECT forever. De-weighting of suspects still lands at the next
        # replan any other cause triggers.
        actuating = {TrustState.QUARANTINED, TrustState.PROBATION}
        if self._managed and any(
            tr.to_state in actuating or tr.from_state in actuating
            for tr in transitions
        ):
            self.reallocate()

    def _handle_event(self, event: Event) -> None:
        if isinstance(event, DepartureEvent):
            handle = self._server.remove(event.app)
            self._finished[event.app] = handle
            self._finished_peaks[event.app] = self._managed[event.app].peak_rate
            self._managed.pop(event.app, None)
            self._estimates.pop(event.app, None)
            self._oracle.pop(event.app, None)
            self._adversary.forget(event.app)
            self._trust.forget(event.app)
            if self._managed:
                self.reallocate()
        elif isinstance(event, PhaseChangeEvent):
            # Re-calibrate the deviating application, then re-allocate.
            self._refresh_views(event.app)
            self._calibration_pending_s += self._server.config.reallocation_latency_s
            self.reallocate()

    def _check_phase_boundaries(self) -> None:
        """Swap phased profiles at their progress boundaries.

        The swap changes the app's true behaviour; the Accountant's E4
        detector then notices the power deviation and triggers
        re-calibration, exactly as on the real system.
        """
        for name, managed in self._managed.items():
            if managed.phased is None:
                continue
            handle = self._server.handle_of(name)
            before = managed.profile
            after = managed.phased.profile_at(handle.progress_fraction)
            if after is not before:
                managed.profile = after
                managed.peak_rate = self._width_peak_rate(after, name)
                handle.profile = after

    def _width_peak_rate(self, profile: WorkloadProfile, app: str) -> float:
        """Uncapped rate within the app's reserved core group.

        ``Perf_nocap`` for a narrow-group application is its best rate on
        the cores it actually owns - it can never reach the full-width peak.
        """
        width = self._server.topology.group_of(app).width
        cfg = self._server.config
        knob = KnobSetting(cfg.freq_max_ghz, min(width, cfg.cores_max), cfg.dram_power_max_w)
        return self._server.perf_model.rate(profile, knob)

    # ------------------------------------------------------------- learning

    def _refresh_views(self, app: str) -> None:
        """(Re)build the oracle and estimated candidate sets for one app.

        Both views are restricted to the app's core-group width: a knob
        asking for more cores than the group reserves cannot be actuated,
        so it must not be allocatable either.
        """
        with self._profiler.phase("learn"):
            self._metrics.counter("mediator.calibrations").inc()
            profile = self._managed[app].profile
            config = self._server.config
            width = self._server.topology.group_of(app).width
            cache_key = None
            oracle = None
            if self._oracle_cache is not None:
                # Fleet-wide reuse: the oracle set is a pure function of
                # (profile, config, width restriction) - frozen, hashable
                # values - so allocation epochs across a whole fleet build
                # each distinct CandidateSet once. The sets are treated as
                # read-only by every consumer.
                cache_key = (profile, config, width if width < config.cores_max else None)
                oracle = self._oracle_cache.get(cache_key)
            if oracle is None:
                oracle = CandidateSet.from_models(
                    profile, config, power_model=self._server.power_model
                )
                if width < config.cores_max:
                    oracle = oracle.subset(
                        [i for i, k in enumerate(oracle.knobs) if k.cores <= width],
                        rebase_nocap=True,
                    )
                if cache_key is not None:
                    self._oracle_cache[cache_key] = oracle
            self._oracle[app] = oracle
            if self._use_oracle or not self._policy.needs_learning:
                self._estimates[app] = oracle
                return
            estimator = self._get_estimator()
            samples: dict[KnobSetting, tuple[float, float]] = {}
            peak_power_w = float(np.max(oracle.power_w))
            for knob in self._sampler.select(config):
                power = self._server.power_model.app_power_w(profile, knob)
                perf = self._server.perf_model.rate(profile, knob)
                # An inflating tenant lies to the calibration pipeline too:
                # its sampled performance is distorted before measurement
                # noise, so the learned candidate set overrates it.
                perf = self._adversary.distort_calibration(
                    app, self._server.now_s, power, perf, peak_power_w
                )
                if self._power_noise_std_w > 0:
                    power = max(
                        0.0, power + float(self._rng.normal(0.0, self._power_noise_std_w))
                    )
                if self._perf_noise_relative_std > 0:
                    perf = max(
                        0.0,
                        perf
                        * (1.0 + float(self._rng.normal(0.0, self._perf_noise_relative_std))),
                    )
                if self._watchdog.degraded:
                    # Calibrating on an untrusted sensor: err toward
                    # over-estimating draw so allocations stay defensible.
                    power *= self._resilience_cfg.conservative_inflation
                samples[knob] = (power, perf)
            estimate = estimator.estimate(self._corpus, samples)
            estimated = CandidateSet.from_estimates(
                app, config, estimate.power_w, estimate.perf
            )
            if width < config.cores_max:
                estimated = estimated.subset(
                    [i for i, k in enumerate(estimated.knobs) if k.cores <= width],
                    rebase_nocap=True,
                )
            self._estimates[app] = estimated

    def _get_estimator(self) -> CollaborativeEstimator:
        if self._estimator is None:
            self._estimator = CollaborativeEstimator()
            self._estimator.train(self._corpus)
        return self._estimator

    def _get_population(self) -> CandidateSet:
        """The average application's surface (for Server+Res-Aware)."""
        if self._population is None:
            mask = self._corpus.observed_mask()
            power = self._corpus.power_rows()
            perf = self._corpus.perf_rows()
            if power.shape[0] == 0:
                raise ConfigurationError("corpus is empty; cannot build population view")
            power = np.where(mask, power, np.nan)
            perf = np.where(mask, perf, np.nan)
            scales = np.nanmax(perf, axis=1, keepdims=True)
            mean_power = np.nanmean(power, axis=0)
            mean_perf = np.nanmean(perf / scales, axis=0)
            self._population = CandidateSet.from_estimates(
                "population-average", self._server.config, mean_power, mean_perf
            )
        return self._population

    # -------------------------------------------------------------- metrics

    def normalized_throughput(self, app: str, *, since_s: float = 0.0) -> float:
        """``(work done / elapsed) / peak_rate`` over the recorded timeline.

        This is the per-application term of objective (1) measured over the
        experiment window rather than predicted by the allocator.
        """
        records = [r for r in self._timeline if r.time_s > since_s]
        if not records:
            return 0.0
        work = sum(r.progressed.get(app, 0.0) for r in records)
        # The first record's tick started dt before its timestamp; the
        # window spans from there - otherwise that tick's work is counted
        # against too little time and throughput can read slightly above 1.
        elapsed = records[-1].time_s - (records[0].time_s - self._dt_s)
        if elapsed <= 0:
            return 0.0
        return (work / elapsed) / self.peak_rate_of(app)

    def server_objective(self, *, since_s: float = 0.0) -> float:
        """Sum of normalized throughputs over all known apps (objective 1)."""
        names = set(self._managed) | set(self._finished)
        return sum(self.normalized_throughput(n, since_s=since_s) for n in names)
