"""Experiment drivers for the single-server evaluations (Figs. 8 and 10).

These wrap the mediator into the exact protocol of Section IV: admit a
Table II mix onto a freshly booted server, run under a fixed cap, and report
each application's throughput normalized to uncapped execution, plus the
power split the allocator settled on.

Both drivers accept a :class:`~repro.faults.plan.FaultPlan` and close with
:func:`verify_cap_invariant`: every timeline tick must either respect the
cap or be explicitly flagged as a breach the resilience layer responded to
(and those flags must agree with the breach counter) - a silent overshoot in
the timeline is a driver bug, not data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.plan import AdversarySchedule
from repro.core.trust import DefenseConfig
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.core.mediator import PowerMediator
from repro.core.policies import Policy, make_policy
from repro.core.resilience import FaultStats, ResilienceConfig
from repro.observability.trace import TraceBus
from repro.esd.battery import LeadAcidBattery
from repro.faults.plan import FaultPlan
from repro.server.config import ServerConfig, DEFAULT_SERVER_CONFIG
from repro.server.server import SimulatedServer
from repro.workloads.generator import ArrivalSchedule
from repro.workloads.mixes import Mix
from repro.workloads.profiles import WorkloadProfile


def verify_cap_invariant(
    mediator: PowerMediator, *, tolerance_w: float = 1e-6
) -> int:
    """Post-run audit of the cap invariant over the recorded timeline.

    Every tick must satisfy ``wall <= cap + tolerance`` *unless* the tick is
    flagged as a breach (the emergency throttle fired and the next tick is
    clean - persistent breaches raise during the run). Flagged ticks must
    also agree with the mediator's breach counter, so violations surface
    through accounting instead of hiding in the timeline.

    Returns:
        The number of (flagged) breach ticks.

    Raises:
        SimulationError: on a silent violation or a counter mismatch.
    """
    flagged = 0
    for record in mediator.timeline:
        over = record.wall_w > record.p_cap_w + tolerance_w
        if over and not record.breach:
            raise SimulationError(
                f"timeline records wall {record.wall_w:.3f} W over cap "
                f"{record.p_cap_w:.3f} W at t={record.time_s:.2f} s without a "
                "breach flag"
            )
        if record.breach:
            flagged += 1
    counted = mediator.fault_stats.breach_ticks
    if flagged != counted:
        raise SimulationError(
            f"timeline flags {flagged} breach ticks but the fault counter "
            f"recorded {counted}"
        )
    return flagged


@dataclass(frozen=True)
class MixExperimentResult:
    """Outcome of one (mix, policy, cap) run.

    Attributes:
        mix_id: Table II mix number (0 for ad-hoc app lists).
        policy: Policy name.
        p_cap_w: The enforced cap.
        normalized_throughput: Per-app ``Perf/Perf_nocap`` measured over the
            window (the bars of Figs. 8a and 10).
        power_share: Per-app fraction of total allocated application power
            (the splits of Fig. 8b); zeros under temporal coordination.
        server_throughput: Sum of normalized throughputs (the paper's
            "overall server throughput", maximum = number of apps).
        mean_wall_power_w: Average wall power over the window.
        fault_stats: Resilience counters of the run (all-zero on a clean
            run; ``None`` only on results built by older callers).
        metrics: The run's exported metrics JSON (counters, gauges,
            histograms, and the wall-clock ``profile`` section); ``None``
            only on results built by older callers.
    """

    mix_id: int
    policy: str
    p_cap_w: float
    normalized_throughput: dict[str, float]
    power_share: dict[str, float]
    server_throughput: float
    mean_wall_power_w: float
    fault_stats: FaultStats | None = None
    metrics: dict | None = None


def default_battery() -> LeadAcidBattery:
    """The evaluation's Lead-Acid UPS: server-scale, modest C-rates.

    Sized like a small server UPS (~12 V, 7 Ah -> ~300 kJ); at the paper's
    duty-cycle energies (hundreds of joules per period) its capacity never
    binds - the power limits and the ~0.70 round-trip efficiency do, which
    is what produces the paper's 60-40 OFF-ON split at the 80 W cap.
    """
    return LeadAcidBattery(
        capacity_j=300_000.0,
        efficiency=0.70,
        max_charge_w=50.0,
        max_discharge_w=60.0,
        initial_soc=0.0,
    )


def run_mix_experiment(
    apps: list[WorkloadProfile],
    policy: Policy | str,
    p_cap_w: float,
    *,
    mix_id: int = 0,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    duration_s: float = 60.0,
    warmup_s: float = 10.0,
    battery: LeadAcidBattery | None = None,
    use_oracle_estimates: bool = False,
    dt_s: float = 0.1,
    seed: int = 0,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    trace_bus: TraceBus | None = None,
    adversaries: AdversarySchedule | None = None,
    defense: DefenseConfig | None = None,
    engine: str = "scalar",
) -> MixExperimentResult:
    """Run one co-location under one policy and cap.

    Args:
        apps: The applications to co-locate (admitted at t=0, back to back).
        policy: A policy instance or its paper name.
        p_cap_w: The server power cap.
        mix_id: Table II number for reporting.
        config: Server parameters (Table I defaults).
        duration_s: Measurement window after warm-up.
        warmup_s: Settling time excluded from the metrics (covers
            calibration latencies and the first duty-cycle periods).
        battery: ESD to install; defaults to :func:`default_battery` when
            the policy needs one.
        use_oracle_estimates: Bypass the learning pipeline (ablations).
        dt_s: Simulation tick.
        seed: Calibration-noise seed (and the fault plan's noise, through
            the plan's own seed).
        faults: Optional fault plan injected during the run.
        resilience: Degraded-mode tunables.
        trace_bus: Optional observability sink; same seed and arguments
            produce a byte-identical event stream on it.
        adversaries: Optional strategic-tenant schedule; named apps behave
            adversarially (see :mod:`repro.adversary.plan`).
        defense: TrustScorer tunables (defenses default on).
        engine: Server model implementation, ``"scalar"`` (reference) or
            ``"vector"`` (fast path); trace hashes and results are
            bit-identical between the two.

    Raises:
        ConfigurationError: for an empty app list.
    """
    if not apps:
        raise ConfigurationError("need at least one application")
    if isinstance(policy, str):
        policy = make_policy(policy)
    if policy.uses_esd and battery is None:
        battery = default_battery()
    server = SimulatedServer(config, seed=seed, engine=engine)
    mediator = PowerMediator(
        server,
        policy,
        p_cap_w,
        battery=battery,
        use_oracle_estimates=use_oracle_estimates,
        dt_s=dt_s,
        seed=seed,
        faults=faults,
        resilience=resilience,
        trace_bus=trace_bus,
        adversaries=adversaries,
        defense=defense,
    )
    for profile in apps:
        # Steady-state runs must not see departures; give everyone ample work.
        mediator.add_application(
            profile.with_total_work(float("inf")), skip_overhead=True
        )
    mediator.run_for(warmup_s + duration_s)
    return summarize_mix_run(mediator, apps, warmup_s=warmup_s, mix_id=mix_id)


def summarize_mix_run(
    mediator: PowerMediator,
    apps: list[WorkloadProfile],
    *,
    warmup_s: float,
    mix_id: int = 0,
) -> MixExperimentResult:
    """Summarize a finished mix run into a :class:`MixExperimentResult`.

    Shared by :func:`run_mix_experiment` and the crash-recovery paths
    (supervised and chaos-soak runs), so an interrupted-and-recovered run is
    scored by exactly the same arithmetic as an uninterrupted one. Also
    enforces :func:`verify_cap_invariant`.
    """
    names = [p.name for p in apps]
    throughput = {
        name: mediator.normalized_throughput(name, since_s=warmup_s) for name in names
    }
    plan = mediator.coordinator.plan
    shares: dict[str, float] = {name: 0.0 for name in names}
    if plan is not None and plan.allocation is not None:
        for name in names:
            if name in plan.allocation.apps:
                shares[name] = plan.allocation.share_of(name)
    window = [r for r in mediator.timeline if r.time_s > warmup_s]
    mean_wall = sum(r.wall_w for r in window) / len(window) if window else 0.0
    verify_cap_invariant(mediator)
    return MixExperimentResult(
        mix_id=mix_id,
        policy=mediator.policy.name,
        p_cap_w=mediator.p_cap_w,
        normalized_throughput=throughput,
        power_share=shares,
        server_throughput=sum(throughput.values()),
        mean_wall_power_w=mean_wall,
        fault_stats=mediator.fault_stats,
        metrics=mediator.export_metrics(),
    )


def run_policy_comparison(
    mixes: list[Mix],
    policies: list[str],
    p_cap_w: float,
    *,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    duration_s: float = 60.0,
    warmup_s: float = 10.0,
    use_oracle_estimates: bool = False,
    dt_s: float = 0.1,
    seed: int = 0,
    engine: str = "scalar",
) -> dict[int, dict[str, MixExperimentResult]]:
    """The Figs. 8a/10 harness: every mix under every policy at one cap.

    Returns ``{mix_id: {policy_name: result}}``.
    """
    results: dict[int, dict[str, MixExperimentResult]] = {}
    for mix in mixes:
        per_policy: dict[str, MixExperimentResult] = {}
        for name in policies:
            per_policy[name] = run_mix_experiment(
                list(mix.profiles()),
                name,
                p_cap_w,
                mix_id=mix.mix_id,
                config=config,
                duration_s=duration_s,
                warmup_s=warmup_s,
                use_oracle_estimates=use_oracle_estimates,
                dt_s=dt_s,
                seed=seed,
                engine=engine,
            )
        results[mix.mix_id] = per_policy
    return results


@dataclass(frozen=True)
class DynamicExperimentResult:
    """Outcome of a dynamic arrival/departure run (Section IV-C at scale).

    Attributes:
        policy: Policy name.
        p_cap_w: The enforced cap.
        admitted: Applications that were admitted.
        rejected: Arrivals that found no free core group and were turned
            away (the server was fully consolidated).
        completed: Applications that finished within the horizon.
        mean_normalized_throughput: Mean over admitted apps of measured
            ``Perf/Perf_nocap`` between admission and completion (or the
            horizon).
        events: Count of each Accountant event kind observed.
        crashed: Applications force-departed by an injected crash (they are
            *not* in ``completed`` - a crash is not a completion).
        fault_stats: Resilience counters of the run.
        metrics: The run's exported metrics JSON (counters, gauges,
            histograms, per-phase profile), same shape as
            :attr:`MixExperimentResult.metrics`.
    """

    policy: str
    p_cap_w: float
    admitted: tuple[str, ...]
    rejected: tuple[str, ...]
    completed: tuple[str, ...]
    mean_normalized_throughput: float
    events: dict[str, int]
    crashed: tuple[str, ...] = ()
    fault_stats: FaultStats | None = None
    metrics: dict | None = None


def run_dynamic_experiment(
    schedule: "ArrivalSchedule",
    policy: Policy | str,
    p_cap_w: float,
    *,
    horizon_s: float,
    config: ServerConfig = DEFAULT_SERVER_CONFIG,
    group_width: int | None = None,
    battery: LeadAcidBattery | None = None,
    use_oracle_estimates: bool = False,
    dt_s: float = 0.1,
    seed: int = 0,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    trace_bus: TraceBus | None = None,
    engine: str = "scalar",
) -> DynamicExperimentResult:
    """Replay an arrival schedule against one mediated server.

    Arrivals that do not fit (no free core group) are rejected - a cluster
    scheduler would place them elsewhere; this driver studies one server.
    Departures happen naturally on completion (event E3). All calibration
    and re-allocation overheads are charged.

    Args:
        schedule: The arrivals to replay (consumed; pass a fresh schedule
            or call :meth:`ArrivalSchedule.reset` to reuse).
        policy: Policy instance or paper name.
        p_cap_w: Server power cap.
        horizon_s: Simulation length.
        config: Server hardware.
        group_width: Core-group width per arrival (narrower admits more
            concurrent applications).
        battery: ESD; defaults to :func:`default_battery` for ESD policies.
        use_oracle_estimates / dt_s / seed: As in :func:`run_mix_experiment`.
        faults / resilience: As in :func:`run_mix_experiment`.
        engine: As in :func:`run_mix_experiment`.
    """
    if horizon_s <= 0:
        raise ConfigurationError("horizon_s must be positive")
    if isinstance(policy, str):
        policy = make_policy(policy)
    if policy.uses_esd and battery is None:
        battery = default_battery()
    server = SimulatedServer(config, seed=seed, engine=engine)
    mediator = PowerMediator(
        server,
        policy,
        p_cap_w,
        battery=battery,
        use_oracle_estimates=use_oracle_estimates,
        dt_s=dt_s,
        seed=seed,
        faults=faults,
        resilience=resilience,
        trace_bus=trace_bus,
    )
    admitted: list[str] = []
    rejected: list[str] = []
    admission_time: dict[str, float] = {}
    while server.now_s < horizon_s - 1e-9:
        for event in schedule.pop_due(server.now_s):
            try:
                mediator.add_application(event.profile, group_width=group_width)
                admitted.append(event.profile.name)
                admission_time[event.profile.name] = server.now_s
            except SchedulingError:
                rejected.append(event.profile.name)
        next_arrival = schedule.next_time_s()
        run_until = min(
            horizon_s, next_arrival if next_arrival is not None else horizon_s
        )
        # Idle server with nothing to do: jump straight to the next arrival.
        if not mediator.managed_apps():
            server.tick(max(dt_s, run_until - server.now_s))
            continue
        mediator.run_for(max(dt_s, run_until - server.now_s))

    # Crashed apps also land in the finished registry (forced E3) - only a
    # handle that actually ran out of work counts as completed.
    completed = tuple(
        name
        for name in admitted
        if name in mediator._finished  # noqa: SLF001
        and mediator.finished_handle(name).completed
    )
    crashed = tuple(
        name
        for name in admitted
        if name in mediator._finished  # noqa: SLF001
        and not mediator.finished_handle(name).completed
    )
    # Per-app throughput over its *residency* (admission to completion, or
    # to the horizon for apps still running) - averaging over the whole
    # horizon would dilute finished apps with their own absence.
    throughputs = []
    for name in admitted:
        if name in completed:
            handle = mediator.finished_handle(name)
            end = handle.completed_at_s if handle.completed_at_s is not None else horizon_s
        elif name in crashed:
            # Residency ends at the crash; the work it did still counts.
            handle = mediator.finished_handle(name)
            end = server.now_s
        else:
            handle = server.handle_of(name)
            end = server.now_s
        elapsed = max(dt_s, end - admission_time[name])
        throughputs.append(
            (handle.work_done / elapsed) / mediator.peak_rate_of(name)
        )
    # Event counts ride the run's metrics registry (one source of truth for
    # exported counters) and come back out as the result's plain dict.
    for event in mediator.accountant.event_log:
        mediator.metrics.counter(f"events.{type(event).__name__}").inc()
    events = {
        name[len("events.") :]: int(value)
        for name, value in mediator.metrics.counters().items()
        if name.startswith("events.")
    }
    verify_cap_invariant(mediator)
    return DynamicExperimentResult(
        policy=policy.name,
        p_cap_w=p_cap_w,
        admitted=tuple(admitted),
        rejected=tuple(rejected),
        completed=completed,
        mean_normalized_throughput=(
            float(sum(throughputs) / len(throughputs)) if throughputs else 0.0
        ),
        events=events,
        crashed=crashed,
        fault_stats=mediator.fault_stats,
        metrics=mediator.export_metrics(),
    )
