"""PowerAllocator: apportioning the dynamic power budget (R1 + R2).

Given each co-located application's candidate set (its power/performance
response over the knob space, measured or estimated) and the server's dynamic
budget ``P_cap - P_idle - P_cm``, the allocator solves

    maximize   sum_X Perf_X(knob_X) / Perf_X_nocap      (objective 1)
    subject to sum_X P_X(knob_X) <= budget

choosing one knob setting per application. Because each knob choice fixes
*both* the app's total power and its division across direct resources, R1
(per-app apportioning) and R2 (per-resource apportioning) are solved jointly.

This is a multiple-choice knapsack. It is solved exactly (up to a watt
discretization) by dynamic programming over the budget:

* per-app choice sets are first reduced to their Pareto frontier (a dominated
  knob - more power for no more performance - is never chosen);
* power costs are rounded *up* to the grid so discretization can never cause
  a cap overshoot;
* an application may be *excluded* (not scheduled this epoch, cost 0,
  utility 0) - that is how the allocator signals that the budget cannot host
  everyone and temporal coordination must take over (R3b/R4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError, PowerBudgetError
from repro.core.utility import CandidateSet, pareto_envelope
from repro.server.config import KnobSetting


@dataclass(frozen=True)
class AppAllocation:
    """The allocator's decision for one application.

    Attributes:
        app: Application name.
        excluded: ``True`` when the app gets no power this epoch (temporal
            coordination will schedule it).
        knob: Chosen knob setting (the app's minimum-power knob when
            excluded, so a coordinator can still run it in its time slot).
        power_w: Expected ``P_X`` at the chosen knob (0 when excluded).
        relative_perf: Expected ``Perf/Perf_nocap`` at the chosen knob
            (0 when excluded).
    """

    app: str
    excluded: bool
    knob: KnobSetting
    power_w: float
    relative_perf: float

    def to_dict(self) -> dict:
        """JSON-safe form, used by checkpoints."""
        return {
            "app": self.app,
            "excluded": self.excluded,
            "knob": self.knob.to_json(),
            "power_w": self.power_w,
            "relative_perf": self.relative_perf,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AppAllocation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            app=data["app"],
            excluded=bool(data["excluded"]),
            knob=KnobSetting.from_json(data["knob"]),
            power_w=float(data["power_w"]),
            relative_perf=float(data["relative_perf"]),
        )


@dataclass(frozen=True)
class Allocation:
    """A complete apportioning of the dynamic budget.

    Attributes:
        budget_w: The dynamic budget that was divided.
        apps: Per-application decisions, keyed by name.
        objective: Achieved sum of relative performances (objective 1).
    """

    budget_w: float
    apps: dict[str, AppAllocation]
    objective: float

    @property
    def total_power_w(self) -> float:
        """Expected total application power under this allocation."""
        return sum(a.power_w for a in self.apps.values() if not a.excluded)

    @property
    def included(self) -> list[str]:
        """Apps scheduled to run simultaneously, sorted."""
        return sorted(n for n, a in self.apps.items() if not a.excluded)

    @property
    def excluded(self) -> list[str]:
        """Apps the budget could not host, sorted."""
        return sorted(n for n, a in self.apps.items() if a.excluded)

    def share_of(self, app: str) -> float:
        """The app's fraction of the allocated application power (the
        paper's 46%-54% style splits). Zero when excluded or nothing runs."""
        total = self.total_power_w
        if total <= 0:
            return 0.0
        alloc = self.apps[app]
        return 0.0 if alloc.excluded else alloc.power_w / total

    def to_dict(self) -> dict:
        """JSON-safe form, used by checkpoints."""
        return {
            "budget_w": self.budget_w,
            "apps": {name: alloc.to_dict() for name, alloc in self.apps.items()},
            "objective": self.objective,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Allocation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            budget_w=float(data["budget_w"]),
            apps={
                name: AppAllocation.from_dict(alloc)
                for name, alloc in data["apps"].items()
            },
            objective=float(data["objective"]),
        )


class PowerAllocator:
    """Exact multiple-choice-knapsack apportioning of the dynamic budget.

    Args:
        grain_w: Budget discretization. 0.25 W keeps rounding loss well
            under the knob space's own power granularity.
        allow_exclusion: Permit scheduling only a subset (needed whenever
            the budget cannot host every app's cheapest config). Disable to
            make :meth:`allocate` raise instead - useful in tests.
    """

    def __init__(self, *, grain_w: float = 0.25, allow_exclusion: bool = True) -> None:
        if grain_w <= 0:
            raise ConfigurationError("grain_w must be positive")
        self._grain_w = grain_w
        self._allow_exclusion = allow_exclusion

    @property
    def grain_w(self) -> float:
        return self._grain_w

    @staticmethod
    def _check_weights(
        names: list[str], weights: Mapping[str, float] | None
    ) -> dict[str, float] | None:
        """Validate ``weights`` against ``names``; ``None`` when trivial.

        Collapsing the all-ones case to ``None`` keeps the weighted code
        path from ever perturbing an unweighted solve (golden traces pin
        defense-on == defense-off when every tenant is trusted).
        """
        if weights is None:
            return None
        weight_of: dict[str, float] = {}
        for name in names:
            value = float(weights.get(name, 1.0))
            if not math.isfinite(value) or value <= 0.0:
                raise ConfigurationError(
                    f"allocation weight for {name!r} must be positive and "
                    f"finite, got {value}"
                )
            weight_of[name] = value
        if all(value == 1.0 for value in weight_of.values()):
            return None
        return weight_of

    def allocate(
        self,
        candidates: dict[str, CandidateSet],
        budget_w: float,
        *,
        weights: Mapping[str, float] | None = None,
    ) -> Allocation:
        """Divide ``budget_w`` across the applications in ``candidates``.

        Args:
            candidates: Per-app candidate sets.
            budget_w: The dynamic budget to divide.
            weights: Optional per-app utility multipliers in (0, 1] - the
                TrustScorer's allocation de-weighting. A distrusted app's
                performance counts for less in the objective, so the
                knapsack shifts budget toward trusted tenants. Omitted apps
                weigh 1.0; ``None`` (or all-ones) is bit-identical to the
                unweighted solve. With weights in force, ``objective`` is
                reported in weighted units; per-app ``relative_perf`` stays
                unweighted truth.

        Returns:
            The optimal :class:`Allocation` (up to discretization). Because
            power costs are rounded *up* to the grid, the DP can lose a
            boundary configuration the exact arithmetic would admit; the
            result is therefore floored at the exact fair split, so the
            utility-aware allocator never returns a worse plan than the
            utility-blind fallback.

        Raises:
            PowerBudgetError: when exclusion is disabled and the budget
                cannot host every application simultaneously.
            ConfigurationError: on an empty candidate map or a non-positive
                weight.
        """
        if not candidates:
            raise ConfigurationError("no applications to allocate power to")
        names = sorted(candidates)
        weight_of = self._check_weights(names, weights)
        budget = max(0.0, budget_w)
        steps = int(math.floor(budget / self._grain_w))

        # Per-app options: (grid cost, utility, knob index); option index 0
        # is always "excluded".
        options: dict[str, list[tuple[int, float, int | None]]] = {}
        for name in names:
            cset = candidates[name]
            opts: list[tuple[int, float, int | None]] = [(0, 0.0, None)]
            for idx in pareto_envelope(cset):
                cost = int(math.ceil(cset.power_w[idx] / self._grain_w - 1e-9))
                if cost <= steps:
                    utility = float(cset.perf[idx] / cset.perf_nocap)
                    if weight_of is not None:
                        utility *= weight_of[name]
                    # A tiny inclusion bonus breaks ties toward running the
                    # app rather than idling it for equal objective value.
                    opts.append((cost, utility + 1e-9, idx))
            options[name] = opts
            if len(opts) == 1 and not self._allow_exclusion:
                raise PowerBudgetError(
                    f"budget {budget_w:.2f} W cannot host {name!r} "
                    f"(cheapest config needs {cset.min_power_w:.2f} W) and "
                    "exclusion is disabled"
                )

        # DP over apps x budget grid, tracking the chosen option per cell.
        neg_inf = -np.inf
        value = np.zeros(steps + 1)
        choice = np.zeros((len(names), steps + 1), dtype=int)
        for i, name in enumerate(names):
            new_value = np.full(steps + 1, neg_inf)
            for opt_idx, (cost, utility, _) in enumerate(options[name]):
                if cost > steps:
                    continue
                shifted = np.full(steps + 1, neg_inf)
                if cost == 0:
                    shifted = value + utility
                else:
                    shifted[cost:] = value[: steps + 1 - cost] + utility
                better = shifted > new_value
                new_value = np.where(better, shifted, new_value)
                choice[i][better] = opt_idx
            value = new_value

        best_w = int(np.argmax(value))
        objective = float(value[best_w])

        # Backtrack the chosen options.
        apps: dict[str, AppAllocation] = {}
        w = best_w
        for i in range(len(names) - 1, -1, -1):
            name = names[i]
            opt_idx = int(choice[i][w])
            cost, utility, knob_idx = options[name][opt_idx]
            cset = candidates[name]
            if knob_idx is None:
                min_idx = int(np.argmin(cset.power_w))
                apps[name] = AppAllocation(
                    app=name,
                    excluded=True,
                    knob=cset.knobs[min_idx],
                    power_w=0.0,
                    relative_perf=0.0,
                )
                if not self._allow_exclusion:
                    raise PowerBudgetError(
                        f"budget {budget_w:.2f} W cannot host all of {names} "
                        "simultaneously and exclusion is disabled"
                    )
            else:
                apps[name] = AppAllocation(
                    app=name,
                    excluded=False,
                    knob=cset.knobs[knob_idx],
                    power_w=float(cset.power_w[knob_idx]),
                    relative_perf=float(cset.perf[knob_idx] / cset.perf_nocap),
                )
            w -= cost
        dp_result = Allocation(budget_w=budget_w, apps=apps, objective=objective)
        fair = self.allocate_fair(candidates, budget_w, weights=weights)
        if fair.excluded and not self._allow_exclusion:
            return dp_result
        return dp_result if dp_result.objective >= fair.objective else fair

    def allocate_fair(
        self,
        candidates: dict[str, CandidateSet],
        budget_w: float,
        *,
        weights: Mapping[str, float] | None = None,
    ) -> Allocation:
        """Equal per-app budgets with per-app best-fit knobs.

        This is *not* the paper's proposal - it is the building block of the
        fairness-oriented baselines: each application independently gets
        ``budget / k`` and picks its best configuration underneath it.
        ``weights`` only scales the reported objective (the floor comparison
        in :meth:`allocate` must be in the same units); each app's knob
        choice under its own share is weight-independent.
        """
        if not candidates:
            raise ConfigurationError("no applications to allocate power to")
        names = sorted(candidates)
        weight_of = self._check_weights(names, weights)
        share = max(0.0, budget_w) / len(names)
        apps: dict[str, AppAllocation] = {}
        objective = 0.0
        for name in names:
            cset = candidates[name]
            idx = cset.best_index_under(share)
            if idx is None:
                min_idx = int(np.argmin(cset.power_w))
                apps[name] = AppAllocation(
                    app=name,
                    excluded=True,
                    knob=cset.knobs[min_idx],
                    power_w=0.0,
                    relative_perf=0.0,
                )
            else:
                rel = float(cset.perf[idx] / cset.perf_nocap)
                apps[name] = AppAllocation(
                    app=name,
                    excluded=False,
                    knob=cset.knobs[idx],
                    power_w=float(cset.power_w[idx]),
                    relative_perf=rel,
                )
                objective += rel if weight_of is None else rel * weight_of[name]
        return Allocation(budget_w=budget_w, apps=apps, objective=objective)
