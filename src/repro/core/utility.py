"""Power utility curves: the quantities behind the paper's Figs. 2, 3 and 9.

Three related constructs:

* :class:`CandidateSet` - an application's (power, performance) points over
  the knob space, either from the true models (oracle) or from collaborative
  -filtering estimates. Everything downstream (allocator, policies, utility
  plots) consumes candidate sets, which is what makes "estimated" and
  "oracle" interchangeable in experiments.
* :func:`app_utility_curve` - the application-level utility curve of Fig. 2:
  best achievable relative performance as a function of the app's power
  budget (the upper envelope over all knob settings).
* :func:`resource_marginal_utilities` - the resource-level utilities of
  Fig. 3/9d: performance gained per extra watt spent on each direct resource
  (one more core, one DVFS step, one DRAM watt) from a reference setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class CandidateSet:
    """An application's (power, performance) response over the knob space.

    Attributes:
        app: Application name.
        knobs: Knob settings, aligned with the arrays.
        power_w: ``P_X`` at each knob (watts).
        perf: Work rate at each knob.
        perf_nocap: The rate at the uncapped knob - the normalization
            denominator of objective (1).
    """

    app: str
    knobs: tuple[KnobSetting, ...]
    power_w: np.ndarray
    perf: np.ndarray
    perf_nocap: float

    def __post_init__(self) -> None:
        if not (len(self.knobs) == len(self.power_w) == len(self.perf)):
            raise ConfigurationError("knobs, power and perf must align")
        if len(self.knobs) == 0:
            raise ConfigurationError("candidate set cannot be empty")
        if self.perf_nocap <= 0:
            raise ConfigurationError("perf_nocap must be positive")

    @classmethod
    def from_models(
        cls,
        profile: WorkloadProfile,
        config: ServerConfig,
        *,
        power_model: PowerModel | None = None,
    ) -> "CandidateSet":
        """Oracle candidate set from the true response models.

        A vector power model (:class:`repro.engine.VectorPowerModel`) exposes
        ``surface_of``; its precomputed columns are gathered wholesale instead
        of looping 432 scalar queries - bit-identical either way, so the fast
        path needs no behavioural carve-outs.
        """
        power_model = power_model if power_model is not None else PowerModel(config)
        perf_model = power_model.perf_model
        surface_of = getattr(power_model, "surface_of", None)
        if surface_of is not None and power_model.config is config:
            surface = surface_of(profile)
            return cls(
                app=profile.name,
                knobs=surface.knobs,
                power_w=surface.app_power_w.copy(),
                perf=surface.rate.copy(),
                perf_nocap=float(surface.peak_rate),
            )
        knobs = tuple(config.knob_space())
        power = np.array([power_model.app_power_w(profile, k) for k in knobs])
        perf = np.array([perf_model.rate(profile, k) for k in knobs])
        return cls(
            app=profile.name,
            knobs=knobs,
            power_w=power,
            perf=perf,
            perf_nocap=float(perf_model.peak_rate(profile)),
        )

    @classmethod
    def from_estimates(
        cls,
        app: str,
        config: ServerConfig,
        power_w: np.ndarray,
        perf: np.ndarray,
    ) -> "CandidateSet":
        """Candidate set from collaborative-filtering estimates.

        ``perf_nocap`` is taken as the estimate at the uncapped knob (which
        the stratified sampler always measures, so it is typically exact).
        """
        knobs = tuple(config.knob_space())
        if len(power_w) != len(knobs) or len(perf) != len(knobs):
            raise ConfigurationError("estimate arrays must cover the knob space")
        nocap_idx = knobs.index(config.max_knob)
        nocap = float(perf[nocap_idx])
        if nocap <= 0:
            raise ConfigurationError(f"estimated uncapped performance of {app!r} is zero")
        return cls(
            app=app,
            knobs=knobs,
            power_w=np.asarray(power_w, dtype=float),
            perf=np.asarray(perf, dtype=float),
            perf_nocap=nocap,
        )

    def to_dict(self) -> dict:
        """JSON-safe form, used by checkpoints.

        Knobs are listed explicitly (not assumed to be the full knob space)
        so subset sets - narrow core groups, throttle paths - round-trip.
        """
        return {
            "app": self.app,
            "knobs": [knob.to_json() for knob in self.knobs],
            "power_w": [float(p) for p in self.power_w],
            "perf": [float(p) for p in self.perf],
            "perf_nocap": float(self.perf_nocap),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateSet":
        """Inverse of :meth:`to_dict`."""
        return cls(
            app=data["app"],
            knobs=tuple(KnobSetting.from_json(raw) for raw in data["knobs"]),
            power_w=np.asarray(data["power_w"], dtype=float),
            perf=np.asarray(data["perf"], dtype=float),
            perf_nocap=float(data["perf_nocap"]),
        )

    @property
    def min_power_w(self) -> float:
        """The cheapest runnable configuration's power."""
        return float(self.power_w.min())

    @property
    def max_power_w(self) -> float:
        """The unconstrained demand (power at the most expensive config)."""
        return float(self.power_w.max())

    def relative_perf(self) -> np.ndarray:
        """``perf / perf_nocap`` per knob - the objective-(1) terms."""
        return self.perf / self.perf_nocap

    def subset(self, indices: list[int], *, rebase_nocap: bool = False) -> "CandidateSet":
        """A candidate set restricted to ``indices`` (e.g. the hardware
        throttle path used by utility-blind enforcement).

        Args:
            indices: Positions to keep, in the desired order.
            rebase_nocap: Recompute ``perf_nocap`` as the subset's best
                performance. Use this when the restriction is *physical*
                (an application admitted with a narrow core group can never
                reach the full-width peak, so its uncapped reference is the
                subset's own best), not when it is merely a search-space
                reduction like the throttle path.
        """
        if not indices:
            raise ConfigurationError("subset needs at least one index")
        perf = self.perf[indices]
        nocap = float(perf.max()) if rebase_nocap else self.perf_nocap
        return CandidateSet(
            app=self.app,
            knobs=tuple(self.knobs[i] for i in indices),
            power_w=self.power_w[indices],
            perf=perf,
            perf_nocap=nocap,
        )

    def index_of(self, knob: KnobSetting) -> int:
        """Index of a knob within this set.

        Raises:
            ConfigurationError: when the knob is not present.
        """
        try:
            return self.knobs.index(knob)
        except ValueError:
            raise ConfigurationError(f"{knob} is not in this candidate set") from None

    def best_index_under(self, budget_w: float) -> int | None:
        """Index of the best-performance knob fitting ``budget_w``; ``None``
        when nothing fits."""
        feasible = self.power_w <= budget_w + 1e-9
        if not feasible.any():
            return None
        masked = np.where(feasible, self.perf, -np.inf)
        return int(np.argmax(masked))


def pareto_envelope(candidates: CandidateSet) -> list[int]:
    """Indices of the power-performance Pareto frontier, by ascending power.

    A knob is on the frontier when no other knob delivers at least its
    performance for strictly less power. The allocator's DP only needs these
    points (choosing a dominated config is never optimal), which shrinks the
    per-app choice set from ~432 to a few dozen.
    """
    order = np.lexsort((-candidates.perf, candidates.power_w))
    frontier: list[int] = []
    best_perf = -np.inf
    for idx in order:
        perf = candidates.perf[idx]
        if perf > best_perf + 1e-12:
            frontier.append(int(idx))
            best_perf = perf
    return frontier


@dataclass(frozen=True)
class UtilityCurve:
    """An application-level utility curve (one line of Fig. 2).

    Attributes:
        app: Application name.
        budgets_w: Power budgets (ascending).
        relative_perf: Best achievable ``Perf/Perf_nocap`` at each budget
            (0.0 where the budget cannot run the app at all).
    """

    app: str
    budgets_w: tuple[float, ...]
    relative_perf: tuple[float, ...]

    def value_at(self, budget_w: float) -> float:
        """Utility at the largest tabulated budget ``<= budget_w``."""
        value = 0.0
        for b, v in zip(self.budgets_w, self.relative_perf):
            if b <= budget_w + 1e-9:
                value = v
            else:
                break
        return value

    def marginal_utility(self) -> list[float]:
        """Finite-difference slope (utility per watt) between budget points.

        This is the per-watt "slope" the paper's R1 discussion is about -
        the quantity that differs across applications and across budget
        levels, making even apportioning suboptimal.
        """
        slopes: list[float] = []
        for i in range(1, len(self.budgets_w)):
            dp = self.budgets_w[i] - self.budgets_w[i - 1]
            dv = self.relative_perf[i] - self.relative_perf[i - 1]
            slopes.append(dv / dp if dp > 0 else 0.0)
        return slopes


def app_utility_curve(
    candidates: CandidateSet,
    budgets_w: list[float] | None = None,
    *,
    grain_w: float = 1.0,
) -> UtilityCurve:
    """The Fig. 2 curve: best relative performance vs. power budget.

    Args:
        candidates: The app's candidate set (oracle or estimated).
        budgets_w: Budgets to tabulate; defaults to a 1 W grid from just
            below the cheapest config to the unconstrained demand.
        grain_w: Grid spacing for the default budget list.
    """
    if budgets_w is None:
        lo = np.floor(candidates.min_power_w)
        hi = np.ceil(candidates.max_power_w)
        budgets_w = [float(b) for b in np.arange(lo, hi + grain_w / 2, grain_w)]
    values: list[float] = []
    for budget in budgets_w:
        idx = candidates.best_index_under(budget)
        values.append(
            float(candidates.perf[idx] / candidates.perf_nocap) if idx is not None else 0.0
        )
    return UtilityCurve(
        app=candidates.app,
        budgets_w=tuple(budgets_w),
        relative_perf=tuple(values),
    )


def resource_marginal_utilities(
    profile: WorkloadProfile,
    config: ServerConfig,
    *,
    reference: KnobSetting | None = None,
    power_model: PowerModel | None = None,
) -> dict[str, float]:
    """The Fig. 3 quantities: performance per watt of each direct resource.

    From a ``reference`` knob setting (default: one core below max, one DVFS
    step below max, one DRAM watt below max - so every resource has headroom
    to grow), computes the marginal utility of spending the next watt on:

    * ``"core"`` - activating one more core,
    * ``"frequency"`` - one DVFS step up on all active cores,
    * ``"memory"`` - one more DRAM watt.

    Returns ``{resource: delta_relative_perf_per_watt}``; a resource already
    at its maximum contributes 0.0.
    """
    power_model = power_model if power_model is not None else PowerModel(config)
    perf_model = power_model.perf_model
    freqs = config.frequencies_ghz
    if reference is None:
        reference = KnobSetting(
            freqs[-2] if len(freqs) > 1 else freqs[-1],
            max(config.cores_min, config.cores_max - 1),
            max(config.dram_power_min_w, config.dram_power_max_w - config.dram_power_step_w),
        )
    config.validate_knob(reference)
    base_power = power_model.app_power_w(profile, reference)
    base_perf = perf_model.rate(profile, reference)
    nocap = perf_model.peak_rate(profile)

    def utility_of(step: KnobSetting, *, min_delta_w: float = 0.0) -> float:
        """Marginal utility of one knob step, in relative-perf per watt.

        ``min_delta_w`` floors the power delta at the knob's *allocation*
        granularity: raising a DRAM allocation an app does not use changes
        its actual draw by ~0 W, but the watt is still committed from the
        budget - dividing a negligible gain by a negligible draw would
        otherwise report a spuriously high utility.
        """
        d_power = power_model.app_power_w(profile, step) - base_power
        d_perf = (perf_model.rate(profile, step) - base_perf) / nocap
        denom = max(d_power, min_delta_w)
        if denom <= 1e-9:
            return max(0.0, d_perf)
        return d_perf / denom

    utilities: dict[str, float] = {"core": 0.0, "frequency": 0.0, "memory": 0.0}
    if reference.cores < config.cores_max:
        utilities["core"] = utility_of(
            KnobSetting(reference.freq_ghz, reference.cores + 1, reference.dram_power_w)
        )
    freq_idx = min(
        range(len(freqs)), key=lambda i: abs(freqs[i] - reference.freq_ghz)
    )
    if freq_idx + 1 < len(freqs):
        utilities["frequency"] = utility_of(
            KnobSetting(freqs[freq_idx + 1], reference.cores, reference.dram_power_w)
        )
    if reference.dram_power_w + config.dram_power_step_w <= config.dram_power_max_w + 1e-9:
        utilities["memory"] = utility_of(
            KnobSetting(
                reference.freq_ghz,
                reference.cores,
                reference.dram_power_w + config.dram_power_step_w,
            ),
            min_delta_w=config.dram_power_step_w,
        )
    return utilities
