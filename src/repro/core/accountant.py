"""Accountant: cap/app bookkeeping and event detection (Section III-C).

"The accountant keeps track of the server power cap, scheduled applications,
and the status of each application. ... The accountant periodically polls the
status of the application and the server power draw. It triggers E3, if an
application has finished execution. It triggers E4, if the power draw of an
application changes significantly from its allocated power budget."

E1 (cap change) and E2 (arrival) are explicit messages; the Accountant
stamps and logs them. E3 and E4 come out of :meth:`Accountant.poll`, which
the mediator calls once per tick. E4 detection is debounced (a configurable
number of consecutive deviating polls) so transient knob-switching noise and
duty-cycle edges do not thrash re-calibration, and suppressed entirely in
temporal-coordination modes, where an application's instantaneous draw is
*supposed* to swing between zero and its ON power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.core.coordinator import AllocationPlan, CoordinationMode
from repro.core.events import (
    ArrivalEvent,
    CapChangeEvent,
    DepartureEvent,
    Event,
    FaultEvent,
    PhaseChangeEvent,
    RecoveryEvent,
    event_from_dict,
    event_to_dict,
)
from repro.server.server import SimulatedServer, TickResult
from repro.workloads.profiles import WorkloadProfile


class Accountant:
    """Polls server state and raises the E1-E4 events of the paper.

    Args:
        server: The server being watched.
        deviation_threshold_w: Absolute per-app deviation from the allocated
            budget that counts as "significant" for E4.
        deviation_polls: Consecutive deviating polls before E4 fires.
    """

    def __init__(
        self,
        server: SimulatedServer,
        *,
        deviation_threshold_w: float = 3.0,
        deviation_polls: int = 5,
    ) -> None:
        if deviation_threshold_w <= 0:
            raise ConfigurationError("deviation_threshold_w must be positive")
        if deviation_polls < 1:
            raise ConfigurationError("deviation_polls must be at least 1")
        self._server = server
        self._threshold_w = deviation_threshold_w
        self._deviation_polls = deviation_polls
        self._p_cap_w: float | None = None
        self._plan: AllocationPlan | None = None
        self._deviation_counts: dict[str, int] = {}
        self._suppressed: set[str] = set()
        self._log: list[Event] = []
        #: Trace sink for the E1-E4/F/R stream; the mediator re-points this
        #: when a bus is attached. Not serialized - traces belong to a run.
        self.trace_bus: TraceBus = NULL_TRACE_BUS

    # ------------------------------------------------------------- messages

    @property
    def p_cap_w(self) -> float | None:
        """The cap currently being enforced (``None`` before the first E1)."""
        return self._p_cap_w

    @property
    def event_log(self) -> list[Event]:
        """All events raised so far, in order (copies are cheap views)."""
        return list(self._log)

    def notify_cap_change(self, new_cap_w: float) -> CapChangeEvent:
        """E1 message: the server's budget changed."""
        if new_cap_w <= 0:
            raise ConfigurationError("power cap must be positive")
        self._p_cap_w = new_cap_w
        event = CapChangeEvent(time_s=self._server.now_s, new_cap_w=new_cap_w)
        self._log.append(event)
        self.trace_bus.emit("cap-change", {"at_s": event.time_s, "new_cap_w": new_cap_w})
        return event

    def notify_arrival(self, profile: WorkloadProfile) -> ArrivalEvent:
        """E2 message: a new application was scheduled here."""
        event = ArrivalEvent(time_s=self._server.now_s, profile=profile)
        self._log.append(event)
        self.trace_bus.emit("arrival", {"at_s": event.time_s, "app": profile.name})
        return event

    def adopt_plan(self, plan: AllocationPlan) -> None:
        """Reset deviation tracking against a fresh allocation."""
        self._plan = plan
        self._deviation_counts.clear()
        self._suppressed.clear()

    def notify_fault(
        self, kind: str, target: str | None = None, detail: str = ""
    ) -> FaultEvent:
        """F message: a substrate fault was injected or detected."""
        event = FaultEvent(
            time_s=self._server.now_s, kind=kind, target=target, detail=detail
        )
        self._log.append(event)
        self.trace_bus.emit(
            "fault", {"at_s": event.time_s, "kind": kind, "target": target, "detail": detail}
        )
        return event

    def notify_recovery(
        self, kind: str, target: str | None = None, detail: str = ""
    ) -> RecoveryEvent:
        """R message: a previously raised fault cleared."""
        event = RecoveryEvent(
            time_s=self._server.now_s, kind=kind, target=target, detail=detail
        )
        self._log.append(event)
        self.trace_bus.emit(
            "recovery", {"at_s": event.time_s, "kind": kind, "target": target, "detail": detail}
        )
        return event

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot the cap, ledgers, debounce counters, and event log.

        The adopted plan is *not* serialized here - the coordinator owns the
        canonical copy, and :meth:`load_state_dict` re-links to it so both
        components keep referring to the same object after a restore.
        """
        return {
            "p_cap_w": self._p_cap_w,
            "deviation_counts": dict(self._deviation_counts),
            "suppressed": sorted(self._suppressed),
            "log": [event_to_dict(event) for event in self._log],
        }

    def load_state_dict(self, state: dict, *, plan: AllocationPlan | None) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Args:
            state: The snapshot.
            plan: The coordinator's restored plan; passed in (rather than
                deserialized twice) so deviation tracking and execution keep
                sharing one plan object, as they do in a live run.
        """
        cap = state["p_cap_w"]
        self._p_cap_w = None if cap is None else float(cap)
        self._plan = plan
        self._deviation_counts = {
            app: int(count) for app, count in state["deviation_counts"].items()
        }
        self._suppressed = set(state["suppressed"])
        self._log = [event_from_dict(item) for item in state["log"]]

    # -------------------------------------------------------------- polling

    def poll(self, result: TickResult, *, telemetry_fresh: bool = True) -> list[Event]:
        """Inspect one tick; returns any E3/E4 events raised.

        E3: applications whose completion this tick reported.
        E4: applications whose measured draw deviated from their allocated
        budget for ``deviation_polls`` consecutive polls (SPACE mode only -
        see the module docstring).

        Args:
            result: The tick to inspect.
            telemetry_fresh: Whether this tick's power samples reflect the
                current tick. E4 detection is suppressed on stale samples -
                a frozen reading that happens to deviate says nothing about
                the application's behaviour, and re-calibrating from it
                would poison the utility estimates.
        """
        events: list[Event] = []
        for name in result.completed:
            event = DepartureEvent(time_s=result.time_s, app=name, completed=True)
            self._log.append(event)
            self.trace_bus.emit(
                "departure", {"at_s": result.time_s, "app": name, "completed": True}
            )
            events.append(event)
        if (
            telemetry_fresh
            and self._plan is not None
            and self._plan.mode is CoordinationMode.SPACE
            and self._plan.allocation is not None
        ):
            for name, expected in self._plan.allocation.apps.items():
                if expected.excluded or name in self._suppressed:
                    continue
                if name in result.completed or name not in result.breakdown.app_w:
                    continue
                observed = result.breakdown.app_w[name]
                if abs(observed - expected.power_w) > self._threshold_w:
                    self._deviation_counts[name] = self._deviation_counts.get(name, 0) + 1
                else:
                    self._deviation_counts[name] = 0
                if self._deviation_counts[name] >= self._deviation_polls:
                    event = PhaseChangeEvent(
                        time_s=result.time_s,
                        app=name,
                        observed_power_w=observed,
                        allocated_power_w=expected.power_w,
                    )
                    self._log.append(event)
                    self.trace_bus.emit(
                        "phase-change",
                        {
                            "at_s": result.time_s,
                            "app": name,
                            "observed_w": observed,
                            "allocated_w": expected.power_w,
                        },
                    )
                    events.append(event)
                    # One E4 per app per plan epoch; the re-allocation it
                    # triggers resets suppression via adopt_plan().
                    self._suppressed.add(name)
                    self._deviation_counts[name] = 0
        return events
