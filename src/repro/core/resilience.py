"""Degraded-mode machinery: how the mediator survives a hostile substrate.

Three cooperating pieces, all owned by :class:`~repro.core.mediator.PowerMediator`:

* :class:`TelemetryWatchdog` - classifies each tick's wall-power sample as
  fresh or not. After ``stale_threshold`` consecutive non-fresh samples the
  mediator enters *degraded telemetry* mode: it plans against a reduced
  effective cap (guard band widened by ``degraded_guard_band``), substitutes
  the power model's predicted wall power for the missing observation, and
  treats calibration samples conservatively. Recovery requires
  ``recovery_threshold`` consecutive fresh samples (hysteresis, so a single
  good sample mid-blackout does not flap the mode).

* :class:`ActuationRetrier` - drains the knob controller's failed-writes
  registry with exponential backoff (retry after 1, 2, 4, ... ticks). After
  ``max_attempts`` failed verifications of the same write it escalates: the
  app is suspended (``SIGSTOP`` bypasses the RAPL actuation path entirely),
  which bounds the damage a stuck actuator can do to the cap.

* :class:`FaultStats` - the run's resilience ledger: breach ticks, retries,
  degraded-mode ticks, emergency throttles, and open fault episodes paired
  into MTTR intervals (see :mod:`repro.core.events`).

The mediator's breach policy lives with these: a detected cap breach
triggers :meth:`~repro.core.coordinator.Coordinator.emergency_throttle`
within the same tick, and only a breach that *persists* on the following
tick raises :class:`~repro.errors.SimulationError` - one transient tick of
overshoot under a fault is survivable; two in a row means the emergency
path itself failed, which is a bug.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RetryExhaustedError
from repro.observability.metrics import MetricsRegistry
from repro.server.config import KnobSetting
from repro.server.knobs import KnobController
from repro.util.retry import RetryPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables of the degraded-mode machinery.

    Attributes:
        stale_threshold: Consecutive non-fresh wall samples before entering
            degraded telemetry mode (the paper's 0.5 s ticks make 3 ticks a
            1.5 s detection latency - comparable to one reallocation).
        recovery_threshold: Consecutive fresh samples required to leave it.
        degraded_guard_band: Extra fractional guard band applied to the cap
            while degraded (on top of the RAPL guard band).
        conservative_inflation: Factor applied to sampled per-app powers
            while degraded, so calibration errs toward over-estimating
            draw.
        max_actuation_attempts: Verified-write attempts per app before the
            retrier escalates to suspension.
        actuation_deadline_ticks: Optional total tick budget for one app's
            retry sequence; when set, the retrier escalates to suspension
            once the sequence has been outstanding this long even if
            attempts remain (``None`` keeps the attempts-only default).
    """

    stale_threshold: int = 3
    recovery_threshold: int = 2
    degraded_guard_band: float = 0.10
    conservative_inflation: float = 1.15
    max_actuation_attempts: int = 4
    actuation_deadline_ticks: int | None = None


@dataclass
class FaultEpisode:
    """One open or closed fault interval, for MTTR accounting.

    Attributes:
        kind: Fault class (matches the event kinds).
        target: Affected app/domain, or ``None``.
        start_s: When the fault was raised.
        end_s: When it recovered, or ``None`` while open.
    """

    kind: str
    target: str | None
    start_s: float
    end_s: float | None = None

    @property
    def open(self) -> bool:
        return self.end_s is None

    @property
    def duration_s(self) -> float | None:
        """Repair time, or ``None`` while the episode is open."""
        return None if self.end_s is None else self.end_s - self.start_s


def _counter_attr(field_name: str) -> property:
    """An int attribute backed by the registry counter ``resilience.<name>``.

    Reads return the counter value; ``stats.field += n`` round-trips through
    the counter's monotone ``inc``, so a decrease raises instead of silently
    corrupting the ledger.
    """
    key = f"resilience.{field_name}"

    def _get(self: "FaultStats") -> int:
        return int(self.registry.counter(key).value)

    def _set(self: "FaultStats", value: int) -> None:
        counter = self.registry.counter(key)
        counter.inc(value - counter.value)

    return property(_get, _set)


class FaultStats:
    """Resilience counters for one mediated run.

    The counters live in a :class:`~repro.observability.metrics.MetricsRegistry`
    (the mediator shares its run registry so resilience counts appear in the
    exported metrics JSON alongside everything else); the attribute API below
    is unchanged from the original plain-int ledger, and :meth:`state_dict`
    keeps its exact checkpoint shape.

    Attributes:
        breach_ticks: Ticks whose true wall power exceeded cap + tolerance.
        emergency_throttles: Times the emergency floor-throttle path fired.
        actuation_retries: Knob-write retries performed.
        actuation_escalations: Retry sequences that ended in suspension.
        degraded_ticks: Ticks spent in degraded telemetry mode.
        dropped_samples: Wall-power samples that never arrived.
        stale_samples: Samples that arrived but were not fresh.
        crashes: Unexpected application exits (forced E3).
        episodes: Fault episodes for MTTR (closed ones have ``end_s``).
    """

    COUNTER_FIELDS = (
        "breach_ticks",
        "emergency_throttles",
        "actuation_retries",
        "actuation_escalations",
        "degraded_ticks",
        "dropped_samples",
        "stale_samples",
        "crashes",
    )

    breach_ticks = _counter_attr("breach_ticks")
    emergency_throttles = _counter_attr("emergency_throttles")
    actuation_retries = _counter_attr("actuation_retries")
    actuation_escalations = _counter_attr("actuation_escalations")
    degraded_ticks = _counter_attr("degraded_ticks")
    dropped_samples = _counter_attr("dropped_samples")
    stale_samples = _counter_attr("stale_samples")
    crashes = _counter_attr("crashes")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.episodes: list[FaultEpisode] = []
        for name in self.COUNTER_FIELDS:
            self.registry.counter(f"resilience.{name}")  # materialize at zero

    def open_episode(self, kind: str, target: str | None, now_s: float) -> None:
        """Record a fault being raised (idempotent per open (kind, target))."""
        for ep in self.episodes:
            if ep.open and ep.kind == kind and ep.target == target:
                return
        self.episodes.append(FaultEpisode(kind=kind, target=target, start_s=now_s))

    def close_episode(self, kind: str, target: str | None, now_s: float) -> None:
        """Record recovery of the matching open episode (no-op when absent)."""
        for ep in self.episodes:
            if ep.open and ep.kind == kind and ep.target == target:
                ep.end_s = now_s
                return

    def mttr_s(self) -> float | None:
        """Mean time to repair over closed episodes (``None`` when none)."""
        closed = [ep.duration_s for ep in self.episodes if not ep.open]
        if not closed:
            return None
        return sum(closed) / len(closed)

    def state_dict(self) -> dict:
        """Snapshot the full ledger, episode order included."""
        return {
            **{name: getattr(self, name) for name in self.COUNTER_FIELDS},
            "episodes": [
                {
                    "kind": ep.kind,
                    "target": ep.target,
                    "start_s": ep.start_s,
                    "end_s": ep.end_s,
                }
                for ep in self.episodes
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Restores bypass the monotone ``inc`` path: a checkpoint may
        legitimately rewind a counter below its live value.
        """
        for name in self.COUNTER_FIELDS:
            self.registry.counter(f"resilience.{name}").reset(int(state[name]))
        self.episodes = [
            FaultEpisode(
                kind=ep["kind"],
                target=ep["target"],
                start_s=float(ep["start_s"]),
                end_s=None if ep["end_s"] is None else float(ep["end_s"]),
            )
            for ep in state["episodes"]
        ]


class TelemetryWatchdog:
    """Freshness tracker for the mediator's wall-power sensor.

    Feed one sample classification per tick with :meth:`observe`; read the
    current trust state from :attr:`degraded`. Transitions are reported so
    the mediator can journal F/R events exactly once.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self._config = config
        self._consecutive_bad = 0
        self._consecutive_good = 0
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """Whether the wall-power feed is currently untrusted."""
        return self._degraded

    def state_dict(self) -> dict:
        """Snapshot the hysteresis counters and trust state."""
        return {
            "consecutive_bad": self._consecutive_bad,
            "consecutive_good": self._consecutive_good,
            "degraded": self._degraded,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self._consecutive_bad = int(state["consecutive_bad"])
        self._consecutive_good = int(state["consecutive_good"])
        self._degraded = bool(state["degraded"])

    def observe(self, fresh: bool) -> str | None:
        """Classify one tick's sample.

        Args:
            fresh: Whether the sample reflects the current tick.

        Returns:
            ``"degraded"`` on the healthy->degraded transition,
            ``"recovered"`` on the way back, else ``None``.
        """
        if fresh:
            self._consecutive_good += 1
            self._consecutive_bad = 0
            if self._degraded and self._consecutive_good >= self._config.recovery_threshold:
                self._degraded = False
                return "recovered"
            return None
        self._consecutive_bad += 1
        self._consecutive_good = 0
        if not self._degraded and self._consecutive_bad >= self._config.stale_threshold:
            self._degraded = True
            return "degraded"
        return None


@dataclass
class _RetryState:
    desired: KnobSetting
    attempts: int
    next_retry_tick: int
    first_tick: int = 0


class ActuationRetrier:
    """Exponential-backoff retry of failed knob writes, with escalation.

    The knob controller verifies every write by readback and parks failures
    in its registry; the mediator calls :meth:`service` once per tick. Each
    failed write is retried after 1, 2, 4, ... ticks; after
    ``max_actuation_attempts`` total attempts the app is suspended -
    signals bypass the faulted RAPL path, so suspension always sticks and
    the cap stays defensible.
    """

    def __init__(self, knobs: KnobController, config: ResilienceConfig) -> None:
        self._knobs = knobs
        self._config = config
        # Jitter stays off here: a single server's retrier has nothing to
        # decorrelate from, and the golden traces pin the 1, 2, 4, ... ticks.
        self._policy = RetryPolicy(
            base_ticks=1,
            max_attempts=config.max_actuation_attempts,
            jitter_ticks=0,
            deadline_ticks=config.actuation_deadline_ticks,
        )
        self._pending: dict[str, _RetryState] = {}
        self._tick = 0

    @property
    def pending(self) -> dict[str, KnobSetting]:
        """Writes still being retried, by app."""
        return {app: st.desired for app, st in self._pending.items()}

    def state_dict(self) -> dict:
        """Snapshot the backoff schedule (tick counter included, since the
        ``next_retry_tick`` deadlines are absolute)."""
        return {
            "tick": self._tick,
            "pending": {
                app: {
                    "desired": st.desired.to_json(),
                    "attempts": st.attempts,
                    "next_retry_tick": st.next_retry_tick,
                    "first_tick": st.first_tick,
                }
                for app, st in self._pending.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self._tick = int(state["tick"])
        self._pending = {
            app: _RetryState(
                desired=KnobSetting.from_json(st["desired"]),
                attempts=int(st["attempts"]),
                next_retry_tick=int(st["next_retry_tick"]),
                first_tick=int(st.get("first_tick", 0)),
            )
            for app, st in state["pending"].items()
        }

    def service(self, stats: FaultStats) -> tuple[list[str], list[str]]:
        """Run one tick of the retry loop.

        Returns:
            ``(verified, escalated)``: apps whose desired knob verified on a
            retry *this tick* (the caller may want to re-adopt the plan so
            they resume), and apps suspended after exhausting retries.
            Writes that cleared out-of-band (a later write verified, or the
            app departed) are dropped from the pending set silently - the
            caller tracks those through the failed-writes registry itself.
        """
        self._tick += 1
        failed_now = self._knobs.failed_writes()

        # Adopt newly failed writes (first retry next tick: backoff 2^0).
        for app, desired in failed_now.items():
            state = self._pending.get(app)
            if state is None or state.desired != desired:
                self._pending[app] = _RetryState(
                    desired=desired,
                    attempts=1,
                    next_retry_tick=self._tick + 1,
                    first_tick=self._tick,
                )

        verified: list[str] = []
        escalated: list[str] = []
        for app in list(self._pending):
            state = self._pending[app]
            if app not in failed_now:
                # Cleared out-of-band: stop tracking.
                del self._pending[app]
                continue
            if self._tick < state.next_retry_tick:
                continue
            stats.actuation_retries += 1
            if self._knobs.set_knob(app, state.desired):
                verified.append(app)
                del self._pending[app]
                continue
            state.attempts += 1
            elapsed = self._tick - state.first_tick
            try:
                self._policy.require(
                    state.attempts, elapsed, what=f"knob write for {app}"
                )
            except RetryExhaustedError:
                # Give up on RAPL: signals always work.
                self._knobs.suspend(app)
                self._knobs.clear_failed_write(app)
                stats.actuation_escalations += 1
                stats.registry.counter("retry.exhausted").inc()
                escalated.append(app)
                del self._pending[app]
            else:
                state.next_retry_tick = self._tick + self._policy.backoff_ticks(
                    state.attempts, elapsed_ticks=elapsed
                )
        return verified, escalated

    def forget(self, app: str) -> None:
        """Stop retrying for ``app`` (on departure)."""
        self._pending.pop(app, None)
