"""Coordinator: executing an allocation in space and/or time (R3 + R4).

The :class:`~repro.core.allocator.PowerAllocator` decides *how much* power
each application gets; the Coordinator decides *when* each application draws
it so the server's instantaneous wall power never exceeds the cap:

* **SPACE** (R3a) - every application received a runnable budget: all run
  simultaneously at their allocated knobs. Preferred because private-cache
  state stays warm.
* **TIME** (R3b) - the budget cannot host everyone at once: applications
  rotate through exclusive slots; whoever is ON may use (up to) the whole
  dynamic budget at its slot knob; the others are suspended (and pay the
  private-cache refill penalty on resume).
* **ESD** (R4) - with energy storage, all applications share consolidated
  OFF (package deep sleep, battery banks the cap headroom) and ON (all run,
  battery covers the overshoot) phases per Eq. (5), amortizing ``P_cm``.
* **IDLE** - the cap cannot host even chip-maintenance power and no ESD is
  available: everything is suspended and the package sleeps.

The Coordinator is deliberately mechanical: it executes an
:class:`AllocationPlan` produced by a policy, tick by tick, and owns nothing
about *why* the plan looks the way it does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.core.allocator import Allocation
from repro.esd.controller import DutyCycle, EsdController, Phase
from repro.observability.trace import NULL_TRACE_BUS, TraceBus
from repro.server.config import KnobSetting
from repro.server.server import SimulatedServer


class CoordinationMode(enum.Enum):
    """How the plan multiplexes power (see module docstring)."""

    SPACE = "space"
    TIME = "time"
    ESD = "esd"
    IDLE = "idle"


@dataclass(frozen=True)
class TimeSlot:
    """One slot of a TIME-mode rotation.

    Attributes:
        apps: Applications executing during this slot (empty = idle slot).
        duration_s: Slot length.
        knobs: Knob settings in force during the slot, per app.
    """

    apps: tuple[str, ...]
    duration_s: float
    knobs: dict[str, KnobSetting] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("slot duration must be positive")
        missing = set(self.apps) - set(self.knobs)
        if missing:
            raise ConfigurationError(f"slot lacks knobs for {sorted(missing)}")


@dataclass(frozen=True)
class AllocationPlan:
    """A policy's complete decision for one allocation epoch.

    Attributes:
        mode: The coordination mode.
        p_cap_w: The server cap the plan was built for.
        allocation: The power apportioning behind the plan (kept for
            reporting - Fig. 8b's splits come from here).
        knobs: Per-app knobs for SPACE mode and for the ESD ON phase.
        slots: The TIME-mode rotation (cyclic); empty otherwise.
        duty_cycle: The Eq. (5) schedule for ESD mode; ``None`` otherwise.
    """

    mode: CoordinationMode
    p_cap_w: float
    allocation: Allocation | None = None
    knobs: dict[str, KnobSetting] = field(default_factory=dict)
    slots: tuple[TimeSlot, ...] = ()
    duty_cycle: DutyCycle | None = None

    def __post_init__(self) -> None:
        if self.mode is CoordinationMode.TIME and not self.slots:
            raise ConfigurationError("TIME mode requires at least one slot")
        if self.mode is CoordinationMode.ESD and self.duty_cycle is None:
            raise ConfigurationError("ESD mode requires a duty cycle")

    def to_dict(self) -> dict:
        """JSON-safe form, used by checkpoints."""
        return {
            "mode": self.mode.value,
            "p_cap_w": self.p_cap_w,
            "allocation": None if self.allocation is None else self.allocation.to_dict(),
            "knobs": {name: knob.to_json() for name, knob in self.knobs.items()},
            "slots": [
                {
                    "apps": list(slot.apps),
                    "duration_s": slot.duration_s,
                    "knobs": {n: k.to_json() for n, k in slot.knobs.items()},
                }
                for slot in self.slots
            ],
            "duty_cycle": None
            if self.duty_cycle is None
            else {
                "off_s": self.duty_cycle.off_s,
                "on_s": self.duty_cycle.on_s,
                "charge_w": self.duty_cycle.charge_w,
                "discharge_w": self.duty_cycle.discharge_w,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationPlan":
        """Inverse of :meth:`to_dict`."""
        allocation = data["allocation"]
        cycle = data["duty_cycle"]
        return cls(
            mode=CoordinationMode(data["mode"]),
            p_cap_w=float(data["p_cap_w"]),
            allocation=None if allocation is None else Allocation.from_dict(allocation),
            knobs={
                name: KnobSetting.from_json(raw)
                for name, raw in data["knobs"].items()
            },
            slots=tuple(
                TimeSlot(
                    apps=tuple(slot["apps"]),
                    duration_s=float(slot["duration_s"]),
                    knobs={
                        n: KnobSetting.from_json(k) for n, k in slot["knobs"].items()
                    },
                )
                for slot in data["slots"]
            ),
            duty_cycle=None
            if cycle is None
            else DutyCycle(
                off_s=float(cycle["off_s"]),
                on_s=float(cycle["on_s"]),
                charge_w=float(cycle["charge_w"]),
                discharge_w=float(cycle["discharge_w"]),
            ),
        )


@dataclass(frozen=True)
class CoordinatorAction:
    """What the engine should be told for this tick.

    Attributes:
        esd_charge_w / esd_discharge_w: Battery flows already applied to the
            battery; forwarded into the power equation.
        deep_sleep: Whether the package should be in PC6 this tick.
    """

    esd_charge_w: float = 0.0
    esd_discharge_w: float = 0.0
    deep_sleep: bool = False


class Coordinator:
    """Executes :class:`AllocationPlan` objects against a server.

    Args:
        server: The server whose knobs/suspension the coordinator drives.
        esd_controller: Present only when the active plan uses the battery.
    """

    def __init__(self, server: SimulatedServer) -> None:
        self._server = server
        self._plan: AllocationPlan | None = None
        self._esd: EsdController | None = None
        self._slot_index = 0
        self._slot_elapsed_s = 0.0
        self._esd_on = False
        #: Trace sink for actuation/suspension events; the mediator re-points
        #: this when a bus is attached. Not serialized.
        self.trace_bus: TraceBus = NULL_TRACE_BUS

    @property
    def plan(self) -> AllocationPlan | None:
        return self._plan

    @property
    def esd_controller(self) -> EsdController | None:
        return self._esd

    def adopt(self, plan: AllocationPlan, *, esd_controller: EsdController | None = None) -> None:
        """Switch to a new plan and actuate its initial state.

        Raises:
            ConfigurationError: for an ESD plan without a controller.
        """
        if plan.mode is CoordinationMode.ESD and esd_controller is None:
            raise ConfigurationError("an ESD plan needs an EsdController")
        self._plan = plan
        self._esd = esd_controller
        self._slot_index = 0
        self._slot_elapsed_s = 0.0
        self._esd_on = False
        if plan.mode is CoordinationMode.SPACE:
            self._actuate_space(plan)
        elif plan.mode is CoordinationMode.TIME:
            self._actuate_slot(plan.slots[0])
        elif plan.mode is CoordinationMode.ESD:
            self._suspend_all()
        else:  # IDLE
            self._suspend_all()

    def step(self, dt_s: float) -> CoordinatorAction:
        """Advance the plan by one tick; returns the engine instructions.

        Raises:
            SimulationError: when no plan has been adopted.
        """
        if self._plan is None:
            raise SimulationError("coordinator has no plan; call adopt() first")
        mode = self._plan.mode
        if mode is CoordinationMode.SPACE:
            return CoordinatorAction()
        if mode is CoordinationMode.TIME:
            self._advance_rotation(dt_s)
            return CoordinatorAction()
        if mode is CoordinationMode.ESD:
            return self._step_esd(dt_s)
        # IDLE: stay suspended; deep-sleep to fit under a sub-P_cm cap.
        return CoordinatorAction(deep_sleep=True)

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot the adopted plan and execution cursor.

        The ESD controller is snapshotted by the mediator alongside its
        battery; only its presence is recorded here.
        """
        return {
            "plan": None if self._plan is None else self._plan.to_dict(),
            "has_esd": self._esd is not None,
            "slot_index": self._slot_index,
            "slot_elapsed_s": self._slot_elapsed_s,
            "esd_on": self._esd_on,
        }

    def load_state_dict(
        self, state: dict, *, esd_controller: EsdController | None
    ) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        The plan is installed *without* :meth:`adopt`: adoption actuates
        knobs and suspends applications, but the knob controller's own
        snapshot already holds the exact actuation state - re-actuating
        would fire fault hooks and reset the rotation cursor.

        Args:
            state: The snapshot.
            esd_controller: The restored controller when the snapshot had
                one; its phase machine is restored separately.
        """
        plan = state["plan"]
        self._plan = None if plan is None else AllocationPlan.from_dict(plan)
        self._esd = esd_controller if state["has_esd"] else None
        self._slot_index = int(state["slot_index"])
        self._slot_elapsed_s = float(state["slot_elapsed_s"])
        self._esd_on = bool(state["esd_on"])

    # ------------------------------------------------------------- emergency

    def emergency_throttle(self, cap_w: float) -> tuple[list[str], list[str]]:
        """Force the server under ``cap_w`` within one tick (breach response).

        Every running application is dropped to the floor knob; the floors
        themselves are budget-checked against the cap's dynamic headroom
        (under a stringent cap even two floored apps can exceed it, so the
        ones that do not fit are suspended - cheapest floors kept first to
        preserve the most progress). A floor write that fails verification
        (the breach may *be* an actuation fault) escalates straight to
        suspension: ``SIGSTOP`` bypasses the RAPL path, so the power comes
        down regardless of actuator health.

        The adopted plan is left in place - the mediator re-plans once the
        breach clears; this method only guarantees the next tick's wall
        power is defensible.

        Returns:
            ``(floored, suspended)`` application name lists.
        """
        cfg = self._server.config
        floor = cfg.min_knob
        budget_w = cfg.dynamic_budget_w(cap_w)
        running = [
            name
            for name in self._managed_apps()
            if not self._server.knobs.is_suspended(name)
        ]
        costed = sorted(
            (
                (
                    self._server.power_model.app_power_w(
                        self._server.handle_of(name).profile, floor
                    ),
                    name,
                )
                for name in running
            ),
        )
        floored: list[str] = []
        suspended: list[str] = []
        spent_w = 0.0
        for cost_w, name in costed:
            if spent_w + cost_w <= budget_w + 1e-9 and self._server.knobs.set_knob(
                name, floor
            ):
                spent_w += cost_w
                floored.append(name)
            else:
                self._server.knobs.clear_failed_write(name)
                self._suspend(name)
                suspended.append(name)
        self.trace_bus.emit(
            "emergency-throttle",
            {"cap_w": cap_w, "floored": floored, "suspended": suspended},
        )
        return floored, suspended

    # ------------------------------------------------------------ internals

    def _managed_apps(self) -> list[str]:
        """Admitted, not-yet-completed applications."""
        return [
            name
            for name in self._server.applications()
            if not self._server.handle_of(name).completed
        ]

    def _suspend(self, name: str) -> None:
        """Suspend, tracing only the running -> suspended transition."""
        if not self._server.knobs.is_suspended(name):
            self.trace_bus.emit("suspend", {"app": name})
        self._server.suspend(name)

    def _resume(self, name: str) -> None:
        """Resume, tracing only the suspended -> running transition."""
        if self._server.knobs.is_suspended(name):
            self.trace_bus.emit("resume", {"app": name})
        self._server.resume(name)

    def _actuate_space(self, plan: AllocationPlan) -> None:
        for name in self._managed_apps():
            knob = plan.knobs.get(name)
            if knob is None:
                self._suspend(name)
            else:
                budget = None
                if plan.allocation is not None and name in plan.allocation.apps:
                    budget = plan.allocation.apps[name].power_w
                self._actuate_verified(name, knob, budget)

    def _actuate_slot(self, slot: TimeSlot) -> None:
        running = set(slot.apps)
        budget = self._server.config.dynamic_budget_w(
            self._plan.p_cap_w if self._plan is not None else 0.0
        )
        for name in self._managed_apps():
            if name in running:
                self._actuate_verified(name, slot.knobs[name], budget)
            else:
                self._suspend(name)

    def _actuate_verified(
        self, name: str, knob: KnobSetting, budget_w: float | None
    ) -> bool:
        """Write a knob and resume the app only when the result is affordable.

        A verified write always resumes. When the write fails verification
        (actuation fault), the app is resumed only if the setting it *reads
        back at* draws no more than its budget (or than the planned knob,
        when no explicit budget applies) - otherwise it stays suspended and
        the retry machinery re-drives the write. This is what prevents a
        stuck-hot actuator from dragging the wall over the cap every time a
        plan is adopted.
        """
        verified = self._server.knobs.set_knob(name, knob)
        if verified:
            self.trace_bus.emit(
                "knob-actuation",
                {"app": name, "knob": knob.to_json(), "verified": True, "resumed": True},
            )
            self._resume(name)
            return True
        profile = self._server.handle_of(name).profile
        observed_cost = self._server.power_model.app_power_w(
            profile, self._server.knobs.readback(name)
        )
        limit = (
            budget_w
            if budget_w is not None
            else self._server.power_model.app_power_w(profile, knob)
        )
        resumed = observed_cost <= limit + 1e-9
        self.trace_bus.emit(
            "knob-actuation",
            {
                "app": name,
                "knob": knob.to_json(),
                "readback": self._server.knobs.readback(name).to_json(),
                "verified": False,
                "resumed": resumed,
            },
        )
        if resumed:
            self._resume(name)
        else:
            self._suspend(name)
        return False

    def _suspend_all(self) -> None:
        for name in self._managed_apps():
            self._suspend(name)

    def _advance_rotation(self, dt_s: float) -> None:
        assert self._plan is not None
        slots = self._plan.slots
        self._slot_elapsed_s += dt_s
        advanced = False
        # A long tick may skip whole slots; loop until inside the current one.
        while self._slot_elapsed_s >= slots[self._slot_index].duration_s - 1e-12:
            self._slot_elapsed_s -= slots[self._slot_index].duration_s
            self._slot_index = (self._slot_index + 1) % len(slots)
            advanced = True
        if advanced:
            self._actuate_slot(slots[self._slot_index])

    def _esd_required_w(self, dt_s: float) -> float:
        """The *measured* overshoot an ON tick would incur: true served
        power of the plan's ON set over the cap."""
        assert self._plan is not None
        running = {}
        for name in self._managed_apps():
            knob = self._plan.knobs.get(name)
            if knob is not None:
                running[name] = (self._server.handle_of(name).profile, knob)
        served = self._server.power_model.server_breakdown(running).served_w
        return max(0.0, served - self._plan.p_cap_w)

    def _step_esd(self, dt_s: float) -> CoordinatorAction:
        assert self._plan is not None and self._esd is not None
        phase = self._esd.begin_tick(dt_s)
        required_w = self._esd_required_w(dt_s)
        if phase is Phase.ON and self._esd.can_boost(dt_s, required_w=required_w):
            if not self._esd_on:
                for name in self._managed_apps():
                    knob = self._plan.knobs.get(name)
                    if knob is not None:
                        # The boost budget was sized from the planned knobs,
                        # so only a verified-or-no-hotter setting may run.
                        self._actuate_verified(name, knob, None)
                self._esd_on = True
            discharge_w = self._esd.boost(dt_s, required_w=required_w)
            return CoordinatorAction(esd_discharge_w=discharge_w)
        # OFF phase, or a battery exhausted mid-ON: everyone sleeps and the
        # cap headroom banks into the battery.
        if phase is Phase.ON:
            self._esd.abort_on_phase()
        self._suspend_all()
        self._esd_on = False
        charge_w = self._esd.bank(dt_s)
        return CoordinatorAction(esd_charge_w=charge_w, deep_sleep=True)
