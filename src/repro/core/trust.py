"""Mediator-side defenses against strategic tenants.

The mediator's whole value proposition rests on two reports it normally takes
at face value: each application's *heartbeat rate* (claimed progress) and its
*attributed power draw*. An adversarial tenant can lie on either axis - see
:mod:`repro.adversary.plan` for the attack classes. The
:class:`TrustScorer` cross-checks the two reports against the physics the
mediator already carries (the power and performance models it uses to plan),
and drives a quarantine state machine the allocator consumes:

* **Overdraw check** - the attributed draw of an app must match the draw its
  in-force knob implies. Honest apps match to float precision (the engine
  computes power from the same model and knob); any excess beyond
  ``overdraw_margin_w`` is a parasitic thread. Because the check is
  structurally exact, each violation is a high-confidence *strike*.
* **Efficiency check** - the claimed heart rate must be achievable at the
  app's in-force knob. An inflating tenant reports more progress than its
  power supports; honest windowed rates can only exceed the knob's rate
  transiently after a knob/phase change, so the check observes a cooldown
  after any such change and feeds a *decaying anomaly score* rather than
  strikes.

State machine::

    TRUSTED --score>=suspect--> SUSPECT --score>=quarantine--> QUARANTINED
       ^                          |  ^                              |
       |   <--score<suspect/2-----+  |                       (timer expires)
       |                             |                              v
       +------(clean probation)---- PROBATION <---------------------+
                                      |
                                      +--any violation--> QUARANTINED

``strikes >= strike_limit`` quarantines from *any* live state - overdraw is
unambiguous. Quarantined apps are suspended (omitted from plans) and excluded
from allocation; SUSPECT/PROBATION apps keep running at reduced allocation
weight. While anyone is distrusted the planner also shaves a guard band off
the cap, covering the watts an undetected accomplice might still be burning.

Everything here is deterministic and draws no RNG: with an all-honest
population and zero violations the scorer is pure bookkeeping, which is what
keeps defense-enabled honest runs bit-identical to defense-free ones (the
golden-trace regression pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class TrustState(Enum):
    """Posture of one application in the quarantine state machine."""

    TRUSTED = "trusted"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


@dataclass(frozen=True)
class DefenseConfig:
    """Tuning of the TrustScorer and quarantine posture.

    Attributes:
        enabled: Master switch; disabled scorers observe nothing.
        efficiency_margin: Fractional slack on the efficiency check - a
            claimed rate up to ``(1 + margin)`` times the knob-supported
            rate passes. Covers windowing and measurement noise.
        overdraw_margin_w: Absolute slack on the overdraw check, in watts.
        score_decay: Per-tick multiplicative decay of the anomaly score.
        suspect_threshold: Score at which TRUSTED becomes SUSPECT.
        quarantine_threshold: Score at which SUSPECT becomes QUARANTINED.
        strike_limit: Overdraw strikes that quarantine outright.
        quarantine_ticks: Ticks an app sits suspended before probation.
        probation_ticks: Clean ticks required to regain full trust.
        suspect_weight: Allocation weight multiplier while SUSPECT.
        probation_weight: Allocation weight multiplier while on PROBATION.
        guard_band: Fractional cap reduction while any app is distrusted.
        cooldown_ticks: Efficiency-check holdoff after a knob, profile, or
            run-state change - long enough for the heartbeat window to flush
            (window_s / dt_s ticks), or stale beats read as violations.
    """

    enabled: bool = True
    efficiency_margin: float = 0.25
    overdraw_margin_w: float = 1.5
    score_decay: float = 0.9
    suspect_threshold: float = 2.0
    quarantine_threshold: float = 4.0
    strike_limit: int = 2
    quarantine_ticks: int = 120
    probation_ticks: int = 80
    suspect_weight: float = 0.5
    probation_weight: float = 0.5
    guard_band: float = 0.05
    cooldown_ticks: int = 25

    def __post_init__(self) -> None:
        if self.efficiency_margin <= 0:
            raise ConfigurationError("efficiency_margin must be positive")
        if self.overdraw_margin_w <= 0:
            raise ConfigurationError("overdraw_margin_w must be positive")
        if not 0.0 < self.score_decay < 1.0:
            raise ConfigurationError("score_decay must be in (0, 1)")
        if not 0.0 < self.suspect_threshold <= self.quarantine_threshold:
            raise ConfigurationError(
                "thresholds must satisfy 0 < suspect <= quarantine"
            )
        if self.strike_limit < 1:
            raise ConfigurationError("strike_limit must be at least 1")
        if self.quarantine_ticks < 1 or self.probation_ticks < 1:
            raise ConfigurationError("quarantine/probation ticks must be positive")
        for name in ("suspect_weight", "probation_weight"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        if not 0.0 <= self.guard_band < 1.0:
            raise ConfigurationError("guard_band must be in [0, 1)")
        if self.cooldown_ticks < 0:
            raise ConfigurationError("cooldown_ticks must be non-negative")


@dataclass
class TrustRecord:
    """Mutable per-application trust bookkeeping."""

    state: TrustState = TrustState.TRUSTED
    score: float = 0.0
    strikes: int = 0
    timer: int = 0  # quarantine countdown / probation clean-tick count
    cooldown: int = 0
    fingerprint: tuple | None = None  # (knob json, profile key, running)

    def to_dict(self) -> dict:
        return {
            "state": self.state.value,
            "score": self.score,
            "strikes": self.strikes,
            "timer": self.timer,
            "cooldown": self.cooldown,
            "fingerprint": None
            if self.fingerprint is None
            else list(self.fingerprint),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrustRecord":
        fingerprint = data["fingerprint"]
        return cls(
            state=TrustState(data["state"]),
            score=float(data["score"]),
            strikes=int(data["strikes"]),
            timer=int(data["timer"]),
            cooldown=int(data["cooldown"]),
            fingerprint=None if fingerprint is None else tuple(fingerprint),
        )


@dataclass(frozen=True)
class TrustTransition:
    """One state-machine edge, for traces and detection-latency metrics."""

    tick: int
    app: str
    from_state: TrustState
    to_state: TrustState
    score: float
    strikes: int


@dataclass(frozen=True)
class AppObservation:
    """One tick's evidence about one application, as the mediator sees it.

    Attributes:
        app: Application name.
        running: Whether the app executed this tick.
        claimed_rate: Its reported heartbeat rate (beats/s).
        attributed_w: Its attributed power draw this tick.
        expected_w: Model-implied draw at the in-force knob.
        supported_rate: Model-implied rate at the in-force knob.
        fingerprint: Hashable key of (knob, profile, run-state); a change
            restarts the efficiency-check cooldown.
        observable: Whether the heartbeat reading is trustworthy this tick
            (False during telemetry blackouts - frozen rates would read as
            violations against a moving knob).
    """

    app: str
    running: bool
    claimed_rate: float
    attributed_w: float
    expected_w: float
    supported_rate: float
    fingerprint: tuple
    observable: bool = True


class TrustScorer:
    """Cross-checks tenant reports against physics; drives quarantines.

    The scorer is pure bookkeeping: it never touches the server, draws no
    RNG, and emits no trace events itself. The mediator feeds it one
    :class:`AppObservation` per managed app per tick via :meth:`observe`
    and acts on the returned transitions (trace, metrics, re-allocation).
    """

    def __init__(self, config: DefenseConfig | None = None) -> None:
        self._config = config if config is not None else DefenseConfig()
        self._records: dict[str, TrustRecord] = {}
        self._transitions: list[TrustTransition] = []

    @property
    def config(self) -> DefenseConfig:
        return self._config

    @property
    def transitions(self) -> list[TrustTransition]:
        """Every state-machine edge so far (live list; treat as read-only)."""
        return self._transitions

    # ------------------------------------------------------------- queries

    def state_of(self, app: str) -> TrustState:
        record = self._records.get(app)
        return record.state if record is not None else TrustState.TRUSTED

    def score_of(self, app: str) -> float:
        record = self._records.get(app)
        return record.score if record is not None else 0.0

    def quarantined_apps(self) -> list[str]:
        """Apps currently suspended by the defense, sorted."""
        return sorted(
            app
            for app, record in self._records.items()
            if record.state is TrustState.QUARANTINED
        )

    def distrusted(self) -> bool:
        """Whether any app is currently off full trust (guard-band driver)."""
        return any(
            record.state is not TrustState.TRUSTED
            for record in self._records.values()
        )

    def weights(self) -> dict[str, float]:
        """Allocation weight multipliers for apps off full trust."""
        cfg = self._config
        weights: dict[str, float] = {}
        for app, record in self._records.items():
            if record.state is TrustState.SUSPECT:
                weights[app] = cfg.suspect_weight
            elif record.state is TrustState.PROBATION:
                weights[app] = cfg.probation_weight
        return weights

    def detection_latency(self, app: str, attack_start_tick: int) -> int | None:
        """Ticks from ``attack_start_tick`` to ``app``'s first quarantine."""
        for tr in self._transitions:
            if tr.app == app and tr.to_state is TrustState.QUARANTINED:
                return max(0, tr.tick - attack_start_tick)
        return None

    # ------------------------------------------------------------ lifecycle

    def forget(self, app: str) -> None:
        """Drop an app's record on departure."""
        self._records.pop(app, None)

    # ------------------------------------------------------------- stepping

    def observe(
        self, tick: int, observations: list[AppObservation]
    ) -> list[TrustTransition]:
        """Score one tick of evidence; return the transitions it caused."""
        if not self._config.enabled:
            return []
        emitted: list[TrustTransition] = []
        for obs in observations:
            transition = self._observe_one(tick, obs)
            if transition is not None:
                emitted.append(transition)
        return emitted

    def _observe_one(
        self, tick: int, obs: AppObservation
    ) -> TrustTransition | None:
        cfg = self._config
        record = self._records.get(obs.app)
        if record is None:
            record = TrustRecord(fingerprint=obs.fingerprint)
            self._records[obs.app] = record

        if record.state is TrustState.QUARANTINED:
            record.timer -= 1
            if record.timer <= 0:
                # Rehabilitation: a clean slate under tightened scrutiny.
                record.score = 0.0
                record.strikes = 0
                record.timer = cfg.probation_ticks
                record.cooldown = cfg.cooldown_ticks
                record.fingerprint = obs.fingerprint
                return self._move(tick, obs.app, record, TrustState.PROBATION)
            return None

        # Restart the efficiency-check cooldown whenever the app's operating
        # point changes - the heartbeat window still reflects the old one.
        if obs.fingerprint != record.fingerprint:
            record.fingerprint = obs.fingerprint
            record.cooldown = cfg.cooldown_ticks
        elif record.cooldown > 0:
            record.cooldown -= 1

        violation = 0.0
        if obs.running:
            if obs.attributed_w > obs.expected_w + cfg.overdraw_margin_w:
                record.strikes += 1
                violation += 1.0
            if (
                obs.observable
                and record.cooldown == 0
                and obs.claimed_rate
                > obs.supported_rate * (1.0 + cfg.efficiency_margin)
            ):
                violation += 1.0
        record.score = record.score * cfg.score_decay + violation

        if record.state is TrustState.PROBATION:
            if violation > 0.0 or record.score >= cfg.suspect_threshold:
                return self._quarantine(tick, obs.app, record)
            record.timer -= 1
            if record.timer <= 0:
                record.score = 0.0
                record.strikes = 0
                return self._move(tick, obs.app, record, TrustState.TRUSTED)
            return None

        if (
            record.strikes >= cfg.strike_limit
            or record.score >= cfg.quarantine_threshold
        ):
            return self._quarantine(tick, obs.app, record)
        if record.state is TrustState.TRUSTED:
            if record.score >= cfg.suspect_threshold:
                return self._move(tick, obs.app, record, TrustState.SUSPECT)
        elif record.state is TrustState.SUSPECT:
            if record.score < cfg.suspect_threshold / 2.0:
                return self._move(tick, obs.app, record, TrustState.TRUSTED)
        return None

    def _quarantine(
        self, tick: int, app: str, record: TrustRecord
    ) -> TrustTransition:
        record.timer = self._config.quarantine_ticks
        return self._move(tick, app, record, TrustState.QUARANTINED)

    def _move(
        self, tick: int, app: str, record: TrustRecord, to_state: TrustState
    ) -> TrustTransition:
        transition = TrustTransition(
            tick=tick,
            app=app,
            from_state=record.state,
            to_state=to_state,
            score=record.score,
            strikes=record.strikes,
        )
        record.state = to_state
        self._transitions.append(transition)
        return transition

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        return {
            "records": {
                app: record.to_dict() for app, record in self._records.items()
            },
            "transitions": [
                {
                    "tick": tr.tick,
                    "app": tr.app,
                    "from_state": tr.from_state.value,
                    "to_state": tr.to_state.value,
                    "score": tr.score,
                    "strikes": tr.strikes,
                }
                for tr in self._transitions
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._records = {
            app: TrustRecord.from_dict(data)
            for app, data in state["records"].items()
        }
        self._transitions = [
            TrustTransition(
                tick=int(tr["tick"]),
                app=tr["app"],
                from_state=TrustState(tr["from_state"]),
                to_state=TrustState(tr["to_state"]),
                score=float(tr["score"]),
                strikes=int(tr["strikes"]),
            )
            for tr in state["transitions"]
        ]
