"""Re-allocation/re-calibration events (Section III-C of the paper).

The system reacts to four event kinds:

* **E1** - the server's power cap changed (datacenter-level re-budgeting);
* **E2** - a new application arrived (triggers calibration + re-allocation);
* **E3** - an application departed (its budget is redistributed);
* **E4** - an application's behaviour changed (phase change / load shift;
  triggers re-calibration of its utility curves + re-allocation).

E1 and E2 arrive as explicit messages to the Accountant; E3 and E4 are
detected by its polling loop. All events are immutable records so the
mediator's timeline is audit-friendly.

The fault-injection subsystem (:mod:`repro.faults`) adds two more kinds
alongside E1-E4:

* **F** (:class:`FaultEvent`) - a substrate fault was injected or detected
  (dropped knob write, stale telemetry, battery outage, cap breach, ...);
* **R** (:class:`RecoveryEvent`) - a previously raised fault was cleared
  (actuation verified again, telemetry fresh again, battery back, ...).

Pairing an R to its F by ``(kind, target)`` yields the repair interval the
MTTR metric aggregates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class Event:
    """Base event: something at ``time_s`` requiring mediator action.

    Attributes:
        time_s: Simulation time the event was raised.
    """

    time_s: float


@dataclass(frozen=True)
class CapChangeEvent(Event):
    """E1: the server power cap changed.

    Attributes:
        new_cap_w: The cap in force from ``time_s`` onward.
    """

    new_cap_w: float


@dataclass(frozen=True)
class ArrivalEvent(Event):
    """E2: a new application was scheduled onto this server.

    Attributes:
        profile: The arriving application.
    """

    profile: WorkloadProfile


@dataclass(frozen=True)
class DepartureEvent(Event):
    """E3: an application finished (or was removed).

    Attributes:
        app: Name of the departed application.
        completed: ``True`` for natural completion, ``False`` for forced
            removal (cancellation, migration away).
    """

    app: str
    completed: bool


@dataclass(frozen=True)
class PhaseChangeEvent(Event):
    """E4: an application's power behaviour deviated from its allocation.

    Attributes:
        app: The application whose utilities need re-calibration.
        observed_power_w: The draw that tripped the detector.
        allocated_power_w: What the allocator had budgeted.
    """

    app: str
    observed_power_w: float
    allocated_power_w: float


@dataclass(frozen=True)
class FaultEvent(Event):
    """F: a substrate fault was injected or detected.

    Attributes:
        kind: Fault class, e.g. ``"rapl"``, ``"telemetry"``, ``"battery"``,
            ``"app"``, or the detector-raised ``"cap-breach"`` /
            ``"actuation"``.
        target: Affected application/domain name, or ``None`` for
            server-wide faults.
        detail: Free-form diagnosis (mode, magnitude, observed values).
    """

    kind: str
    target: str | None = None
    detail: str = ""


@dataclass(frozen=True)
class RecoveryEvent(Event):
    """R: a previously raised fault cleared.

    Attributes:
        kind: The fault class that recovered (matches the paired
            :class:`FaultEvent`).
        target: Affected application/domain name, or ``None``.
        detail: Free-form diagnosis (how recovery was confirmed).
    """

    kind: str
    target: str | None = None
    detail: str = ""


#: Every concrete event type, by class name - the tag used on the wire.
_EVENT_TYPES: dict[str, type[Event]] = {
    cls.__name__: cls
    for cls in (
        CapChangeEvent,
        ArrivalEvent,
        DepartureEvent,
        PhaseChangeEvent,
        FaultEvent,
        RecoveryEvent,
    )
}


def event_to_dict(event: Event) -> dict:
    """Serialize an event to a JSON-safe dict tagged with its class name."""
    data = dataclasses.asdict(event)
    data["type"] = type(event).__name__
    return data


def event_from_dict(data: dict) -> Event:
    """Inverse of :func:`event_to_dict`.

    Raises:
        ConfigurationError: for an unknown event type tag.
    """
    fields = dict(data)
    tag = fields.pop("type", None)
    cls = _EVENT_TYPES.get(tag)
    if cls is None:
        raise ConfigurationError(
            f"unknown event type {tag!r}; have {sorted(_EVENT_TYPES)}"
        )
    if cls is ArrivalEvent:
        fields["profile"] = WorkloadProfile.from_dict(fields["profile"])
    return cls(**fields)
